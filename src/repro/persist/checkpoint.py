"""Checkpoint files and checkpointers: pausable, resumable exploration.

A checkpoint captures everything a breadth-first search needs to
continue exactly where it left off: the unified
:class:`~repro.core.engine.SearchStats` counters, the pending frontier
(as canonical codec bytes), the visited set with its parent edges, and
any violations already collected (``stop_on_violation=False`` runs).
Because the serial engine checkpoints only at *state boundaries* (just
before a frontier pop) and the parallel driver only at *round
boundaries*, every checkpoint is a point the uninterrupted run also
passes through — so a resumed run re-executes the identical step
sequence from that point and finishes with the identical
:class:`~repro.core.engine.SearchResult`.  Checkpointing is
observation-only: it never changes which states are explored or in what
order.

The container format is one file, committed by atomic rename::

    b"STCKPT1\\n"
    u32 header length, JSON header (codec version, stats, store meta, ...)
    actions   n x (u32 length + utf-8 name)      interned action table
    edges     n x (u64 fp, u64 parent, u32 action id, u8 flags)
    roots     n x (u64 fp, u32 length + codec bytes)
    frontier  n x (u64 fp, u32 depth, u32 length + codec bytes)

Serial runs write ``checkpoint/serial.ckpt``.  With a
:class:`~repro.persist.diskstore.DiskStore` the edge/root sections stay
empty — the store is already on disk — and the header instead pins the
store's byte offsets and segment list, making checkpoints O(frontier)
instead of O(visited).  Parallel runs write one ``worker-N-G.ckpt`` per
shard (each worker dumps its own store and frontier; ``G`` is the
checkpoint generation, so a new checkpoint never overwrites the files
the committed manifest references) plus a master ``parallel.json``
manifest that names the exact per-shard files of its generation along
with the round number, aggregated stats, and pending violations; the
master manifest's rename is the commit point for the whole fleet, and
superseded generations are deleted only after it.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import re
import struct
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.engine import (
    CompactStore,
    FingerprintOnlyStore,
    SearchStats,
    StateStore,
)
from ..core.state import CODEC_VERSION, Rec, decode, encode
from ..core.trace import PendingTrace, Trace, from_jsonable, to_jsonable
from ..core.violation import Violation
from .diskstore import DiskStore
from .rundir import RunDir, RunDirError, atomic_write_json, read_json

__all__ = [
    "ResumeState",
    "CheckpointData",
    "build_checkpoint_bytes",
    "parse_checkpoint",
    "write_checkpoint",
    "read_checkpoint",
    "SerialCheckpointer",
    "load_serial_resume",
    "ParallelCheckpointer",
    "ParallelResume",
    "load_parallel_resume",
    "write_worker_checkpoint",
    "load_worker_checkpoint",
    "worker_checkpoint_bytes",
    "load_worker_checkpoint_bytes",
]

_MAGIC = b"STCKPT1\n"
_U32 = struct.Struct(">I")
_EDGE = struct.Struct(">QQIB")  # fp, parent (0 when absent), action id, flags
_BLOB = struct.Struct(">QI")  # fp, payload length
_FRONTIER = struct.Struct(">QII")  # fp, depth, payload length

_HAS_PARENT = 0x01
_ROOT_ACTION = "<init>"

SERIAL_CHECKPOINT = "serial.ckpt"
PARALLEL_CHECKPOINT = "parallel.json"

_WORKER_FILE = re.compile(r"^worker-\d+-(\d+)\.ckpt$")


def _worker_generation(path: pathlib.Path) -> Optional[int]:
    """The generation number of a ``worker-N-G.ckpt`` file name."""
    match = _WORKER_FILE.match(path.name)
    return int(match.group(1)) if match else None


@dataclasses.dataclass
class ResumeState:
    """What the serial engine needs to continue a checkpointed run."""

    stats: SearchStats
    frontier: List[Tuple[Rec, Any, int]]
    violations: List[Violation] = dataclasses.field(default_factory=list)
    #: metrics-registry snapshot taken at the checkpoint (None when the
    #: checkpointed run had no metrics); the engine restores it so
    #: cumulative counters match an uninterrupted run exactly.
    metrics: Optional[Dict[str, Any]] = None


class CheckpointData:
    """A parsed checkpoint file."""

    def __init__(
        self,
        header: Dict[str, Any],
        actions: List[str],
        edges: List[Tuple[int, Optional[int], int]],
        roots: List[Tuple[int, bytes]],
        frontier: List[Tuple[int, int, bytes]],
    ):
        self.header = header
        self.actions = actions
        self.edges = edges
        self.roots = roots
        self.frontier = frontier

    def stats(self) -> SearchStats:
        return SearchStats(**self.header.get("stats", {}))

    def violations(self) -> List[Violation]:
        return [_violation_from_dict(raw) for raw in self.header.get("violations", ())]

    def frontier_items(self) -> List[Tuple[Rec, int, int]]:
        return [(decode(enc), fp, depth) for fp, depth, enc in self.frontier]

    def restore_into(self, store: StateStore) -> StateStore:
        """Replay the dumped roots and edges into ``store``."""
        for fp, enc in self.roots:
            store.record_init(fp, decode(enc))
        root_fps = {fp for fp, _ in self.roots}
        for fp, parent, aid in self.edges:
            if parent is None and fp in root_fps:
                continue  # roots were recorded above
            store.record(fp, parent, self.actions[aid])
        return store


def _violation_to_dict(violation: Violation) -> Dict[str, Any]:
    trace = violation.trace
    return {
        "invariant": violation.invariant,
        "kind": violation.kind,
        "detail": violation.detail,
        # A traceless (fast-mode) run only knows the violation depth;
        # the pending marker survives checkpoint/resume so bounded
        # re-search can still resolve it after a restart.
        "trace": (
            {"pending_depth": trace.depth} if trace.pending else trace.to_dict()
        ),
    }


def _violation_from_dict(raw: Dict[str, Any]) -> Violation:
    raw_trace = raw["trace"]
    if "pending_depth" in raw_trace:
        trace: Trace = PendingTrace(raw_trace["pending_depth"])
    else:
        trace = Trace.from_dict(raw_trace)
    return Violation(
        raw["invariant"],
        trace,
        kind=raw.get("kind", "state"),
        detail=raw.get("detail", ""),
    )


def build_checkpoint_bytes(
    *,
    stats: Optional[SearchStats] = None,
    store: Optional[StateStore] = None,
    store_meta: Optional[Dict[str, Any]] = None,
    frontier: Iterable[Tuple[Rec, Any, int]] = (),
    violations: Sequence[Violation] = (),
    extra: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Serialize one checkpoint to its container bytes.

    Pass ``store`` to dump an in-memory store's edges and roots inline
    (via the generic ``edges()``/``roots()`` seam — works for any
    :class:`~repro.core.engine.StateStore`), or ``store_meta`` to record
    a :class:`DiskStore`'s offsets instead of its contents.  The result
    is exactly what :func:`write_checkpoint` commits to disk; socket
    shard workers ship it over the wire instead, so the master can write
    the generation-addressed files without a shared filesystem.
    """
    action_ids: Dict[str, int] = {}
    actions: List[str] = []
    edge_records = bytearray()
    root_records = bytearray()
    n_edges = n_roots = 0
    if store is not None:
        for fp, state in store.roots():
            enc = encode(state)
            root_records += _BLOB.pack(fp, len(enc)) + enc
            n_roots += 1
        for fp, parent, action in store.edges():
            aid = action_ids.get(action)
            if aid is None:
                aid = action_ids[action] = len(actions)
                actions.append(action)
            flags = _HAS_PARENT if parent is not None else 0
            edge_records += _EDGE.pack(fp, parent or 0, aid, flags)
            n_edges += 1

    frontier_records = bytearray()
    n_frontier = 0
    for state, fp, depth in frontier:
        enc = encode(state)
        frontier_records += _FRONTIER.pack(fp, depth, len(enc)) + enc
        n_frontier += 1

    if store_meta is None:
        # Traceless stores dump pseudo-edges (fingerprints only); tag the
        # header so resume rebuilds a FingerprintOnlyStore, not a full one.
        if store is not None and getattr(store, "traceless", False):
            store_meta = {"kind": "fponly"}
        else:
            store_meta = {"kind": "inline"}
    header = {
        "codec_version": CODEC_VERSION,
        "stats": dataclasses.asdict(stats) if stats is not None else {},
        "store": store_meta,
        "violations": [_violation_to_dict(v) for v in violations],
        "counts": {
            "actions": len(actions),
            "edges": n_edges,
            "roots": n_roots,
            "frontier": n_frontier,
        },
    }
    if extra:
        header.update(extra)
    header_bytes = json.dumps(header).encode("utf-8")

    out = bytearray()
    out += _MAGIC
    out += _U32.pack(len(header_bytes))
    out += header_bytes
    for action in actions:
        data = action.encode("utf-8")
        out += _U32.pack(len(data))
        out += data
    out += edge_records
    out += root_records
    out += frontier_records
    return bytes(out)


def write_checkpoint(
    path: Union[str, os.PathLike],
    *,
    stats: Optional[SearchStats] = None,
    store: Optional[StateStore] = None,
    store_meta: Optional[Dict[str, Any]] = None,
    frontier: Iterable[Tuple[Rec, Any, int]] = (),
    violations: Sequence[Violation] = (),
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Write one checkpoint file atomically (tmp + fsync + rename)."""
    data = build_checkpoint_bytes(
        stats=stats,
        store=store,
        store_meta=store_meta,
        frontier=frontier,
        violations=violations,
        extra=extra,
    )
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)  # the commit point


def parse_checkpoint(data: bytes, source: str = "<bytes>") -> CheckpointData:
    """Parse checkpoint container bytes (inverse of :func:`build_checkpoint_bytes`)."""
    if not data.startswith(_MAGIC):
        raise RunDirError(f"{source} is not a checkpoint file")
    offset = len(_MAGIC)
    (header_len,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    codec = header.get("codec_version")
    if codec != CODEC_VERSION:
        raise RunDirError(
            f"checkpoint {source} was written with codec version {codec};"
            f" this build uses {CODEC_VERSION} and cannot load it"
        )
    counts = header["counts"]

    actions: List[str] = []
    for _ in range(counts["actions"]):
        (length,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        actions.append(data[offset : offset + length].decode("utf-8"))
        offset += length

    edges: List[Tuple[int, Optional[int], int]] = []
    for _ in range(counts["edges"]):
        fp, parent, aid, flags = _EDGE.unpack_from(data, offset)
        offset += _EDGE.size
        edges.append((fp, parent if flags & _HAS_PARENT else None, aid))

    roots: List[Tuple[int, bytes]] = []
    for _ in range(counts["roots"]):
        fp, length = _BLOB.unpack_from(data, offset)
        offset += _BLOB.size
        roots.append((fp, data[offset : offset + length]))
        offset += length

    frontier: List[Tuple[int, int, bytes]] = []
    for _ in range(counts["frontier"]):
        fp, depth, length = _FRONTIER.unpack_from(data, offset)
        offset += _FRONTIER.size
        frontier.append((fp, depth, data[offset : offset + length]))
        offset += length

    return CheckpointData(header, actions, edges, roots, frontier)


def read_checkpoint(path: Union[str, os.PathLike]) -> CheckpointData:
    with open(path, "rb") as handle:
        data = handle.read()
    return parse_checkpoint(data, source=str(path))


# ---------------------------------------------------------------------------
# serial checkpointing
# ---------------------------------------------------------------------------


class SerialCheckpointer:
    """The engine's checkpoint seam for serial BFS runs.

    The engine calls :meth:`maybe_checkpoint` at every state boundary
    (just before a frontier pop); the call is a couple of comparisons
    unless a cadence threshold — ``every_seconds`` of wall clock or
    ``every_states`` newly-recorded distinct states — has tripped, in
    which case the full checkpoint is written and committed by rename.
    ``on_checkpoint`` (if set) runs after each commit; tests use it to
    kill the run at a known-consistent point.
    """

    def __init__(
        self,
        run_dir: RunDir,
        every_seconds: Optional[float] = 60.0,
        every_states: Optional[int] = None,
        on_checkpoint: Optional[Callable[["SerialCheckpointer"], None]] = None,
    ):
        self.run_dir = run_dir
        self.path = run_dir.checkpoint_dir / SERIAL_CHECKPOINT
        self.every_seconds = every_seconds
        self.every_states = every_states
        self.on_checkpoint = on_checkpoint
        self.checkpoints_written = 0
        self._last_states = 0
        self._last_time = time.monotonic()

    def _due(self, stats: SearchStats) -> bool:
        if (
            self.every_states is not None
            and stats.distinct_states - self._last_states >= self.every_states
        ):
            return True
        return (
            self.every_seconds is not None
            and time.monotonic() - self._last_time >= self.every_seconds
        )

    def maybe_checkpoint(self, engine: Any, elapsed: float) -> None:
        if self._due(engine.stats):
            self.checkpoint(engine, elapsed)

    def checkpoint(self, engine: Any, elapsed: float) -> None:
        stats = engine.stats
        stats.elapsed = elapsed
        store = engine.store
        frontier = list(engine.strategy.frontier)
        violations = engine.checker.violations
        registry = getattr(engine, "metrics", None)
        if isinstance(store, DiskStore):
            meta, obsolete = store.checkpoint()
            # Snapshot after the store checkpoint so the spill it may
            # have triggered is part of the restored counters.
            extra = {"metrics": registry.snapshot()} if registry is not None else None
            write_checkpoint(
                self.path,
                stats=stats,
                store_meta=meta,
                frontier=frontier,
                violations=violations,
                extra=extra,
            )
            for stale in obsolete:  # safe only after the rename above
                if stale.exists():
                    stale.unlink()
        else:
            extra = {"metrics": registry.snapshot()} if registry is not None else None
            write_checkpoint(
                self.path,
                stats=stats,
                store=store,
                frontier=frontier,
                violations=violations,
                extra=extra,
            )
        self._last_states = stats.distinct_states
        self._last_time = time.monotonic()
        self.checkpoints_written += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(self)


def load_serial_resume(
    run_dir: RunDir,
    memory_budget: int = 1_000_000,
    max_segments: int = 8,
    metrics: Optional[Any] = None,
) -> Tuple[StateStore, ResumeState]:
    """Load a serial checkpoint: the restored store plus the resume state."""
    path = run_dir.checkpoint_dir / SERIAL_CHECKPOINT
    if not path.exists():
        raise RunDirError(
            f"nothing to resume in {run_dir.path}: no checkpoint was written"
            " (the run stopped before its first checkpoint)"
        )
    data = read_checkpoint(path)
    store_meta = data.header["store"]
    if store_meta.get("kind") == "disk":
        store: StateStore = DiskStore.resume(
            run_dir.store_dir, store_meta, memory_budget, max_segments,
            metrics=metrics,
        )
    elif store_meta.get("kind") == "fponly":
        store = data.restore_into(FingerprintOnlyStore())
    else:
        store = data.restore_into(CompactStore())
    resume = ResumeState(
        stats=data.stats(),
        frontier=data.frontier_items(),
        violations=data.violations(),
        metrics=data.header.get("metrics"),
    )
    return store, resume


# ---------------------------------------------------------------------------
# parallel checkpointing
# ---------------------------------------------------------------------------


def _desc_to_json(desc: tuple) -> list:
    kind, invariant, depth, fp, action, args, branch, enc = desc
    return [
        kind,
        invariant,
        depth,
        fp,
        action,
        to_jsonable(tuple(args)),
        branch,
        enc.hex() if enc is not None else None,
    ]


def _desc_from_json(raw: list) -> tuple:
    kind, invariant, depth, fp, action, args, branch, enc = raw
    return (
        kind,
        invariant,
        depth,
        fp,
        action,
        from_jsonable(args),
        branch,
        bytes.fromhex(enc) if enc is not None else None,
    )


@dataclasses.dataclass
class ParallelResume:
    """What the parallel master needs to continue a checkpointed run."""

    stats: SearchStats
    depth: int
    frontier_sizes: Dict[int, int]
    violations: List[tuple]
    worker_files: List[pathlib.Path]
    workers: int
    #: metrics-registry snapshot from the manifest (None when the
    #: checkpointed run had no metrics).
    metrics: Optional[Dict[str, Any]] = None
    #: membership events (worker deaths + shard reassignments) recorded
    #: up to this checkpoint, carried so a resumed run keeps the full
    #: fleet history in its next manifests.
    reassignments: List[Dict[str, Any]] = dataclasses.field(default_factory=list)


class ParallelCheckpointer:
    """Round-boundary checkpointing for the sharded parallel BFS.

    The master (between BFS levels) tells every worker to write its
    per-shard checkpoint file, then commits the fleet-wide snapshot by
    atomically writing the master manifest.  Worker files are
    *generation-addressed* (``worker-N-G.ckpt``): each fleet-wide
    checkpoint writes a fresh set of file names, the manifest records
    exactly the names of its own generation, and superseded generations
    are deleted only after the manifest rename commits.  A crash at any
    point — even after some new-generation worker files are on disk but
    before the master commit — therefore leaves the previous manifest
    pointing at its own complete, untouched set of worker files, so
    resume always sees a matched set from a single round.
    """

    def __init__(
        self,
        run_dir: RunDir,
        every_seconds: Optional[float] = 60.0,
        every_states: Optional[int] = None,
        on_checkpoint: Optional[Callable[["ParallelCheckpointer"], None]] = None,
    ):
        self.run_dir = run_dir
        self.master_path = run_dir.checkpoint_dir / PARALLEL_CHECKPOINT
        self.every_seconds = every_seconds
        self.every_states = every_states
        self.on_checkpoint = on_checkpoint
        self.checkpoints_written = 0
        self._last_states = 0
        self._last_time = time.monotonic()
        # Start past every generation already on disk (committed or
        # orphaned by a crash) so this session never overwrites a file
        # the committed manifest may still reference.
        self._generation = 1 + max(
            (
                gen
                for gen in map(_worker_generation, run_dir.checkpoint_dir.glob("worker-*.ckpt"))
                if gen is not None
            ),
            default=-1,
        )

    def worker_path(self, wid: int) -> pathlib.Path:
        return self.run_dir.checkpoint_dir / f"worker-{wid}-{self._generation}.ckpt"

    def has_commit(self) -> bool:
        """Whether a committed fleet-wide checkpoint exists to roll back to."""
        return self.master_path.exists()

    def due(self, stats: SearchStats) -> bool:
        if (
            self.every_states is not None
            and stats.distinct_states - self._last_states >= self.every_states
        ):
            return True
        return (
            self.every_seconds is not None
            and time.monotonic() - self._last_time >= self.every_seconds
        )

    def commit(
        self,
        *,
        workers: int,
        depth: int,
        stats: SearchStats,
        frontier_sizes: Dict[int, int],
        violations: Sequence[tuple],
        metrics: Optional[Dict[str, Any]] = None,
        reassignments: Sequence[Dict[str, Any]] = (),
    ) -> None:
        """Publish the master manifest: the fleet-wide commit point."""
        manifest = {
            "codec_version": CODEC_VERSION,
            "workers": workers,
            "depth": depth,
            "stats": dataclasses.asdict(stats),
            "frontier_sizes": {str(wid): size for wid, size in frontier_sizes.items()},
            "violations": [_desc_to_json(desc) for desc in violations],
            "files": [self.worker_path(wid).name for wid in range(workers)],
        }
        if metrics is not None:
            manifest["metrics"] = metrics
        if reassignments:
            manifest["reassignments"] = list(reassignments)
        atomic_write_json(self.master_path, manifest)
        # Only now — after the commit point — is it safe to drop worker
        # files from superseded (or crash-orphaned) generations.
        keep = set(manifest["files"])
        for stale in self.run_dir.checkpoint_dir.glob("worker-*.ckpt"):
            if stale.name not in keep:
                stale.unlink()
        self._generation += 1
        self._last_states = stats.distinct_states
        self._last_time = time.monotonic()
        self.checkpoints_written += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(self)


def load_parallel_resume(run_dir: RunDir) -> ParallelResume:
    path = run_dir.checkpoint_dir / PARALLEL_CHECKPOINT
    if not path.exists():
        raise RunDirError(
            f"nothing to resume in {run_dir.path}: no parallel checkpoint"
            " was written (the run stopped before its first checkpoint)"
        )
    manifest = read_json(path)
    codec = manifest.get("codec_version")
    if codec != CODEC_VERSION:
        raise RunDirError(
            f"checkpoint {path} was written with codec version {codec};"
            f" this build uses {CODEC_VERSION} and cannot load it"
        )
    return ParallelResume(
        stats=SearchStats(**manifest["stats"]),
        depth=manifest["depth"],
        frontier_sizes={int(wid): size for wid, size in manifest["frontier_sizes"].items()},
        violations=[_desc_from_json(raw) for raw in manifest["violations"]],
        worker_files=[run_dir.checkpoint_dir / name for name in manifest["files"]],
        workers=manifest["workers"],
        metrics=manifest.get("metrics"),
        reassignments=list(manifest.get("reassignments", ())),
    )


def write_worker_checkpoint(
    path: Union[str, os.PathLike],
    store: StateStore,
    frontier: Iterable[Tuple[Rec, Any, int]],
) -> None:
    """One shard worker's checkpoint: its store dump plus its frontier."""
    write_checkpoint(path, store=store, frontier=frontier)


def worker_checkpoint_bytes(
    store: StateStore, frontier: Iterable[Tuple[Rec, Any, int]]
) -> bytes:
    """A shard worker's checkpoint as container bytes (socket transport)."""
    return build_checkpoint_bytes(store=store, frontier=frontier)


def load_worker_checkpoint(
    path: Union[str, os.PathLike], store: StateStore
) -> List[Tuple[Rec, int, int]]:
    """Restore a shard store in place; returns the shard's frontier."""
    data = read_checkpoint(path)
    data.restore_into(store)
    return data.frontier_items()


def load_worker_checkpoint_bytes(
    data: bytes, store: StateStore
) -> List[Tuple[Rec, int, int]]:
    """Restore a shard store from checkpoint bytes; returns the frontier."""
    parsed = parse_checkpoint(data)
    parsed.restore_into(store)
    return parsed.frontier_items()
