"""Run directories: the durable home of one exploration run.

A run directory is the on-disk unit of durability for ``sandtable``:
one directory per run, holding a JSON **manifest** (what was checked,
under which configuration and codec version, and how it ended), the
**checkpoints** that make the run resumable, the **disk-backed state
store** (serial runs), and the **artifacts** a run leaves behind —
violation traces, conformance reports, bug reports::

    run/
      manifest.json          what + config + codec version + status/result
      checkpoint/            serial.ckpt, or parallel.json + worker-N-G.ckpt
      store/                 DiskStore segments and logs (serial runs)
      artifacts/             violation.json, reports, saved traces

Every file that must be consistent after a crash is written with
:func:`atomic_write_bytes`: the bytes go to a temporary sibling, are
fsynced, and are published with ``os.replace`` — a reader never sees a
torn file, and the rename is the commit point of every checkpoint.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, Optional, Union

from ..core.state import CODEC_VERSION

__all__ = [
    "RunDirError",
    "RunDir",
    "atomic_write_bytes",
    "atomic_write_json",
    "read_json",
]

#: Version of the run-directory layout itself (manifest schema, file
#: names, checkpoint container format).
FORMAT_VERSION = 1


class RunDirError(Exception):
    """A run directory is missing, incompatible, or inconsistent."""


def atomic_write_bytes(path: Union[str, os.PathLike], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename)."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_json(path: Union[str, os.PathLike], obj: Any) -> None:
    atomic_write_bytes(path, json.dumps(obj, indent=2).encode("utf-8"))


def read_json(path: Union[str, os.PathLike]) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class RunDir:
    """One run's directory: manifest, checkpoints, store, artifacts."""

    MANIFEST = "manifest.json"

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = pathlib.Path(path)

    # -- layout --------------------------------------------------------------

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.path / self.MANIFEST

    @property
    def checkpoint_dir(self) -> pathlib.Path:
        return self.path / "checkpoint"

    @property
    def store_dir(self) -> pathlib.Path:
        return self.path / "store"

    @property
    def artifacts_dir(self) -> pathlib.Path:
        return self.path / "artifacts"

    def artifact_path(self, name: str) -> pathlib.Path:
        return self.artifacts_dir / name

    # -- creation and opening ------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, os.PathLike],
        config: Optional[Dict[str, Any]] = None,
        **extra: Any,
    ) -> "RunDir":
        """Create a fresh run directory and write its manifest.

        Refuses to reuse a directory that already holds a manifest:
        starting over in an existing run directory would silently orphan
        its checkpoints and artifacts — resume it (``--resume``) or pick
        a new directory instead.
        """
        run = cls(path)
        if run.manifest_path.exists():
            raise RunDirError(
                f"run directory {run.path} already contains a run"
                " (pass --resume to continue it, or choose a new directory)"
            )
        for sub in (run.path, run.checkpoint_dir, run.store_dir, run.artifacts_dir):
            sub.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": FORMAT_VERSION,
            "codec_version": CODEC_VERSION,
            "created": time.time(),
            "status": "running",
            "config": dict(config or {}),
        }
        manifest.update(extra)
        run.write_manifest(manifest)
        return run

    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "RunDir":
        """Open an existing run directory, validating its manifest."""
        run = cls(path)
        if not run.manifest_path.exists():
            raise RunDirError(f"{run.path} is not a run directory (no manifest.json)")
        manifest = run.manifest()
        fmt = manifest.get("format_version")
        if fmt != FORMAT_VERSION:
            raise RunDirError(
                f"run directory {run.path} uses layout version {fmt};"
                f" this build reads version {FORMAT_VERSION}"
            )
        codec = manifest.get("codec_version")
        if codec != CODEC_VERSION:
            raise RunDirError(
                f"run directory {run.path} was written with state-codec"
                f" version {codec}, but this build uses codec version"
                f" {CODEC_VERSION}; its fingerprints and checkpoints cannot"
                " be loaded — re-run from scratch in a new directory"
            )
        return run

    # -- manifest ------------------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        return read_json(self.manifest_path)

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        atomic_write_json(self.manifest_path, manifest)

    def update_manifest(self, **fields: Any) -> Dict[str, Any]:
        manifest = self.manifest()
        manifest.update(fields)
        self.write_manifest(manifest)
        return manifest

    def check_config(self, config: Dict[str, Any], ignore: Any = ()) -> None:
        """Refuse to resume under a different configuration.

        Budget-style keys (``ignore``) may change between sessions — a
        resumed run may get a bigger state or time budget — but the
        spec-defining keys must match or the checkpointed fingerprints
        describe a different state space.
        """
        recorded = self.manifest().get("config", {})
        skip = set(ignore)
        for key in sorted(set(recorded) | set(config)):
            if key in skip:
                continue
            if recorded.get(key) != config.get(key):
                raise RunDirError(
                    f"cannot resume {self.path}: configuration key {key!r}"
                    f" was {recorded.get(key)!r} when the run started but is"
                    f" {config.get(key)!r} now"
                )

    def __repr__(self) -> str:
        return f"RunDir({str(self.path)!r})"
