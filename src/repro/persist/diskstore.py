"""A disk-backed :class:`~repro.core.engine.StateStore` (TLC-style).

TLC's scalability on large models rests on a fingerprint set that
spills to disk; this module is that layer for the SandTable kernel.
It is only possible because :func:`repro.core.state.fingerprint` is a
canonical 64-bit digest of the canonical state codec: fingerprints mean
the same thing in every process and every session, so a file of sorted
8-byte fingerprints written today is still a valid visited set tomorrow.

Layout (all inside one store directory):

``edges.log``
    Append-only parent-edge log: one fixed-width record
    ``(fp, parent_fp, action_id, flags)`` per :meth:`DiskStore.record`.
    The source of :meth:`edges` (the parallel merge seam) and of
    :meth:`chain` (counterexample reconstruction, which loads the log
    into an index only when a violation actually needs a trace).
``roots.log``
    Append-only ``(fp, codec bytes)`` log of initial states.
``actions.txt``
    The interned action-name table, one name per line; edge records
    store the line number.
``seg-N.fp``
    Immutable sorted arrays of 8-byte big-endian fingerprints — the
    spilled visited set.  Membership is one memory-set probe plus a
    binary search per segment (with a min/max pre-filter), and when the
    segment count passes ``max_segments`` a flush merge-compacts them
    into a single sorted segment (streaming, constant memory).

Recent fingerprints live in an in-memory set until it reaches
``memory_budget`` entries, then spill to a new segment — so resident
memory for the visited set is bounded by the budget regardless of how
many states the run touches.  :meth:`checkpoint` spills and fsyncs
everything and returns the exact byte offsets and segment list that make
the store reconstructible (:meth:`DiskStore.resume`); any bytes past the
checkpointed offsets (a torn tail from a crash) are truncated away on
resume.  Compaction never deletes segment files eagerly — replaced files
are reported as obsolete by the next :meth:`checkpoint` and deleted by
the checkpointer only after the new checkpoint has committed, so the
last committed checkpoint always references live files.
"""

from __future__ import annotations

import heapq
import mmap
import os
import pathlib
import struct
import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.engine import _INT_BYTES, StateStore, TracelessStoreError
from ..core.state import Rec, decode, encode

__all__ = ["DiskStore", "DiskStoreReader"]

_EDGE = struct.Struct(">QQIB")  # fp, parent fp (0 when absent), action id, flags
_ROOT = struct.Struct(">QI")  # fp, codec length (codec bytes follow)
_FP = struct.Struct(">Q")

_HAS_PARENT = 0x01
_ROOT_ACTION = "<init>"


class _Segment:
    """One immutable sorted array of 8-byte fingerprints, mmapped."""

    __slots__ = ("path", "count", "_mm", "lo", "hi")

    def __init__(self, path: pathlib.Path):
        self.path = path
        size = path.stat().st_size
        if size % 8:
            raise ValueError(f"segment {path} has a torn size {size}")
        self.count = size // 8
        handle = open(path, "rb")
        try:
            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        finally:
            handle.close()
        self.lo = _FP.unpack_from(self._mm, 0)[0]
        self.hi = _FP.unpack_from(self._mm, (self.count - 1) * 8)[0]

    def contains(self, fp: int) -> bool:
        if fp < self.lo or fp > self.hi:
            return False
        lo, hi = 0, self.count - 1
        mm = self._mm
        while lo <= hi:
            mid = (lo + hi) // 2
            probe = _FP.unpack_from(mm, mid * 8)[0]
            if probe == fp:
                return True
            if probe < fp:
                lo = mid + 1
            else:
                hi = mid - 1
        return False

    def iter_fps(self) -> Iterator[int]:
        mm = self._mm
        for index in range(self.count):
            yield _FP.unpack_from(mm, index * 8)[0]

    def close(self) -> None:
        self._mm.close()


class DiskStore(StateStore):
    """Append-only fingerprint/edge store with a bounded memory index."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        memory_budget: int = 1_000_000,
        max_segments: int = 8,
        traceless: bool = False,
        _resume_meta: Optional[Dict[str, Any]] = None,
        metrics: Optional[Any] = None,
    ):
        # Traceless (fast-mode) stores keep only the spilled fingerprint
        # set: record() skips the edge log entirely, so no trace can be
        # reconstructed — violations resolve via bounded re-search.
        self.traceless = bool(traceless)
        self.metrics = metrics
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.memory_budget = max(1, int(memory_budget))
        self.max_segments = max(2, int(max_segments))
        self._mem: set = set()
        self._segments: List[_Segment] = []
        self._obsolete: List[pathlib.Path] = []
        self._inits: Dict[int, Rec] = {}
        self._action_ids: Dict[str, int] = {}
        self._action_names: List[str] = []
        self._count = 0
        self._seg_seq = 0
        self._edge_index: Optional[Dict[int, Tuple[Optional[int], Optional[int]]]] = None

        if _resume_meta is None:
            # a fresh store: clear leftovers from any crashed prior run
            for leftover in self._store_files():
                leftover.unlink()
        else:
            self._attach(_resume_meta)

        self._edges_f = open(self._edges_path, "ab")
        self._roots_f = open(self._roots_path, "ab")
        self._actions_f = open(self._actions_path, "ab")

    # -- construction helpers ------------------------------------------------

    @property
    def _edges_path(self) -> pathlib.Path:
        return self.path / "edges.log"

    @property
    def _roots_path(self) -> pathlib.Path:
        return self.path / "roots.log"

    @property
    def _actions_path(self) -> pathlib.Path:
        return self.path / "actions.txt"

    def _store_files(self) -> List[pathlib.Path]:
        names = [self._edges_path, self._roots_path, self._actions_path]
        return [p for p in names if p.exists()] + sorted(self.path.glob("seg-*.fp"))

    @classmethod
    def resume(
        cls,
        path: Union[str, os.PathLike],
        meta: Dict[str, Any],
        memory_budget: int = 1_000_000,
        max_segments: int = 8,
        metrics: Optional[Any] = None,
    ) -> "DiskStore":
        """Reopen a store exactly as a committed checkpoint described it."""
        return cls(
            path,
            memory_budget,
            max_segments,
            traceless=bool(meta.get("traceless", False)),
            _resume_meta=meta,
            metrics=metrics,
        )

    def _attach(self, meta: Dict[str, Any]) -> None:
        # Truncate every log to its checkpointed length: anything past it
        # was written after the checkpoint committed (or torn by a crash)
        # and will be regenerated by the resumed exploration.
        for path, key in (
            (self._edges_path, "edges_len"),
            (self._roots_path, "roots_len"),
            (self._actions_path, "actions_len"),
        ):
            if not path.exists():
                path.touch()
            os.truncate(path, meta[key])
        with open(self._actions_path, "r", encoding="utf-8") as handle:
            self._action_names = handle.read().splitlines()
        self._action_ids = {name: i for i, name in enumerate(self._action_names)}
        referenced = set()
        for name, count in meta["segments"]:
            segment = _Segment(self.path / name)
            if segment.count != count:
                raise ValueError(
                    f"segment {name} holds {segment.count} fingerprints,"
                    f" checkpoint recorded {count}"
                )
            self._segments.append(segment)
            referenced.add(name)
            self._seg_seq = max(self._seg_seq, int(name.split("-")[1].split(".")[0]) + 1)
        for stray in sorted(self.path.glob("seg-*.fp")):
            if stray.name not in referenced:
                stray.unlink()  # written after the checkpoint; dead weight
        self._count = meta["count"]
        with open(self._roots_path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            fp, length = _ROOT.unpack_from(data, offset)
            offset += _ROOT.size
            self._inits[fp] = decode(data[offset : offset + length])
            offset += length

    # -- the StateStore contract ---------------------------------------------

    def seen(self, fp: Any) -> bool:
        if fp in self._mem:
            return True
        if self._segments:
            metrics = self.metrics
            if metrics is not None:
                metrics.counter("diskstore.segment_probes").inc()
            for segment in self._segments:
                if segment.contains(fp):
                    return True
        return False

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        if not isinstance(fp, int):
            raise TypeError(
                f"DiskStore requires int fingerprints, got {type(fp).__name__}"
                " (strong/bytes fingerprints are not supported on disk)"
            )
        if self.traceless:
            self._add(fp)
            return
        aid = self._action_ids.get(action)
        if aid is None:
            aid = self._intern(action)
        flags = _HAS_PARENT if parent_fp is not None else 0
        self._edges_f.write(_EDGE.pack(fp, parent_fp or 0, aid, flags))
        self._edge_index = None
        self._add(fp)

    def record_init(self, fp: Any, state: Rec) -> None:
        if self.traceless:
            self._add(fp)
            return
        enc = encode(state)
        self._roots_f.write(_ROOT.pack(fp, len(enc)) + enc)
        self._inits[fp] = state
        self._edge_index = None
        self._add(fp)

    def init_state(self, fp: Any) -> Rec:
        if self.traceless:
            raise TracelessStoreError(
                "a traceless DiskStore keeps no root states;"
                " use bounded re-search to reconstruct traces"
            )
        return self._inits[fp]

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        if self.traceless:
            raise TracelessStoreError(
                "a traceless DiskStore keeps no parent edges, so no trace"
                " can be reconstructed; use bounded re-search"
            )
        index = self._ensure_edge_index()
        chain: List[Tuple[Any, str]] = []
        cursor: Optional[int] = fp
        while cursor is not None:
            parent, aid = index[cursor]
            chain.append((cursor, _ROOT_ACTION if aid is None else self._action_names[aid]))
            cursor = parent
        chain.reverse()
        return chain

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        for fp in self._inits:
            yield fp, None, _ROOT_ACTION
        self._edges_f.flush()
        with open(self._edges_path, "rb") as handle:
            while True:
                record = handle.read(_EDGE.size)
                if len(record) < _EDGE.size:
                    break
                fp, parent, aid, flags = _EDGE.unpack(record)
                yield fp, parent if flags & _HAS_PARENT else None, self._action_names[aid]

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        yield from self._inits.items()

    def __len__(self) -> int:
        return self._count

    def estimated_bytes(self) -> Optional[int]:
        # Only the resident part counts: the memory index plus the root
        # states; spilled segments are mmapped files, paged by the OS.
        return (
            sys.getsizeof(self._mem)
            + len(self._mem) * _INT_BYTES
            + sys.getsizeof(self._inits)
        )

    # -- spill, compaction, durability ---------------------------------------

    def _intern(self, action: str) -> int:
        if "\n" in action:
            raise ValueError(f"action name {action!r} contains a newline")
        aid = self._action_ids[action] = len(self._action_names)
        self._action_names.append(action)
        self._actions_f.write(action.encode("utf-8") + b"\n")
        return aid

    def _add(self, fp: int) -> None:
        self._mem.add(fp)
        self._count += 1
        if len(self._mem) >= self.memory_budget:
            self._spill()

    def _new_segment_path(self) -> pathlib.Path:
        path = self.path / f"seg-{self._seg_seq}.fp"
        self._seg_seq += 1
        return path

    def _write_segment(self, fps: Iterator[int], path: pathlib.Path) -> _Segment:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            pack = _FP.pack
            for fp in fps:
                handle.write(pack(fp))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return _Segment(path)

    def _spill(self) -> None:
        if not self._mem:
            return
        segment = self._write_segment(iter(sorted(self._mem)), self._new_segment_path())
        self._segments.append(segment)
        self._mem.clear()
        if self.metrics is not None:
            self.metrics.counter("diskstore.spills").inc()
        if len(self._segments) > self.max_segments:
            self._compact()

    def _compact(self) -> None:
        """Merge every segment into one (streaming; constant memory)."""
        if self.metrics is not None:
            self.metrics.counter("diskstore.compactions").inc()
        merged = heapq.merge(*(segment.iter_fps() for segment in self._segments))
        segment = self._write_segment(merged, self._new_segment_path())
        for old in self._segments:
            old.close()
            self._obsolete.append(old.path)
        self._segments = [segment]

    def flush(self) -> None:
        self._edges_f.flush()
        self._roots_f.flush()
        self._actions_f.flush()

    def checkpoint(self) -> Tuple[Dict[str, Any], List[pathlib.Path]]:
        """Make the store fully reconstructible from disk.

        Spills the memory index, fsyncs every log, and returns
        ``(meta, obsolete)``: the exact offsets/segments a later
        :meth:`resume` needs, and the files made obsolete by compaction —
        to be deleted only *after* the enclosing checkpoint commits.
        """
        self._spill()
        self.flush()
        for handle in (self._edges_f, self._roots_f, self._actions_f):
            os.fsync(handle.fileno())
        meta = {
            "kind": "disk",
            "traceless": self.traceless,
            "edges_len": self._edges_f.tell(),
            "roots_len": self._roots_f.tell(),
            "actions_len": self._actions_f.tell(),
            "count": self._count,
            "segments": [[segment.path.name, segment.count] for segment in self._segments],
        }
        obsolete, self._obsolete = self._obsolete, []
        return meta, obsolete

    def close(self) -> None:
        # Deliberately does NOT delete self._obsolete: those compaction
        # inputs may still be referenced by the last committed checkpoint
        # (compaction after the checkpoint, no newer commit).  Resume
        # needs them; _attach unlinks whatever the checkpoint it loads
        # does not reference, so cleanup is deferred, not lost.
        self.flush()
        for handle in (self._edges_f, self._roots_f, self._actions_f):
            handle.close()
        for segment in self._segments:
            segment.close()
        self._obsolete = []

    # -- reconstruction -------------------------------------------------------

    def _ensure_edge_index(self) -> Dict[int, Tuple[Optional[int], Optional[int]]]:
        """The fp -> (parent, action id) map, loaded from the edge log.

        Built lazily because it is only needed when a violation's trace
        is reconstructed (once per run, at the end) — keeping it off the
        hot path is the whole point of a disk store.
        """
        if self._edge_index is not None:
            return self._edge_index
        index: Dict[int, Tuple[Optional[int], Optional[int]]] = {
            fp: (None, None) for fp in self._inits
        }
        self._edges_f.flush()
        with open(self._edges_path, "rb") as handle:
            data = handle.read()
        for offset in range(0, len(data) - _EDGE.size + 1, _EDGE.size):
            fp, parent, aid, flags = _EDGE.unpack_from(data, offset)
            index[fp] = (parent if flags & _HAS_PARENT else None, aid)
        self._edge_index = index
        return index


class DiskStoreReader(StateStore):
    """Read-only view of a finished run's store directory.

    The writable openings both mutate the directory: the constructor
    clears leftovers for a fresh run, and :meth:`DiskStore.resume`
    truncates the logs back to a committed checkpoint (discarding
    whatever a finished run appended after its last checkpoint) and
    unlinks unreferenced segments.  Post-hoc analysis — ``sandtable
    check-liveness`` materializing the explored graph from a run that
    already finished — instead wants the logs at their full on-disk
    extent, untouched.  This reader opens them exactly so and never
    writes; only the read half of the :class:`~repro.core.engine.StateStore`
    contract is available.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = pathlib.Path(path)
        roots_path = self.path / "roots.log"
        actions_path = self.path / "actions.txt"
        self._action_names: List[str] = (
            actions_path.read_text(encoding="utf-8").splitlines()
            if actions_path.exists()
            else []
        )
        self._inits: Dict[int, Rec] = {}
        if roots_path.exists():
            data = roots_path.read_bytes()
            offset = 0
            while offset + _ROOT.size <= len(data):
                fp, length = _ROOT.unpack_from(data, offset)
                offset += _ROOT.size
                self._inits[fp] = decode(data[offset : offset + length])
                offset += length

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        for fp in self._inits:
            yield fp, None, _ROOT_ACTION
        edges_path = self.path / "edges.log"
        if not edges_path.exists():
            return
        with open(edges_path, "rb") as handle:
            data = handle.read()
        # Ignore a torn trailing record (a crash mid-write); every full
        # record before it is a committed edge.
        for offset in range(0, len(data) - _EDGE.size + 1, _EDGE.size):
            fp, parent, aid, flags = _EDGE.unpack_from(data, offset)
            yield fp, parent if flags & _HAS_PARENT else None, self._action_names[aid]

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        yield from self._inits.items()

    def init_state(self, fp: Any) -> Rec:
        return self._inits[fp]

    def seen(self, fp: Any) -> bool:
        raise RuntimeError(
            "DiskStoreReader is a post-hoc edge/root reader, not a visited"
            " set; reopen the store with DiskStore.resume to explore"
        )

    record = record_init = seen  # all writes rejected the same way

    def __len__(self) -> int:
        return sum(1 for _ in self.edges())
