"""Durable runs: disk-backed state store, checkpoint/resume, artifacts.

The persistence layer beneath ``sandtable check --run-dir``:

* :mod:`~repro.persist.rundir` — the run-directory layout, its JSON
  manifest, and the atomic-rename write discipline every durable file
  uses;
* :mod:`~repro.persist.diskstore` — a :class:`~repro.core.engine.StateStore`
  whose fingerprint set spills to sorted segment files past a memory
  budget (TLC-style) and whose parent edges live in an append-only log;
* :mod:`~repro.persist.checkpoint` — crash-safe checkpoint files plus
  the serial and parallel checkpointers and resume loaders;
* :mod:`~repro.persist.artifacts` — replayable trace/violation JSON and
  report artifacts;
* :mod:`~repro.persist.runner` — :func:`run_check`, the durable-run
  orchestration (create/resume, checkpoint cadence, manifest outcome).

Layering rule: :mod:`repro.core` never imports this package at module
level (the engine sees only duck-typed ``store``/``checkpointer``
seams); everything here imports core freely.
"""

from .artifacts import (
    load_lasso,
    load_trace,
    load_violation,
    save_lasso,
    save_trace,
    save_violation,
    write_text_artifact,
)
from .checkpoint import (
    ParallelCheckpointer,
    ParallelResume,
    ResumeState,
    SerialCheckpointer,
    build_checkpoint_bytes,
    load_parallel_resume,
    load_serial_resume,
    parse_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .diskstore import DiskStore, DiskStoreReader
from .rundir import (
    FORMAT_VERSION,
    RunDir,
    RunDirError,
    atomic_write_bytes,
    atomic_write_json,
    read_json,
)
from .runner import BUDGET_KEYS, VIOLATION_ARTIFACT, run_check

__all__ = [
    "RunDir",
    "RunDirError",
    "FORMAT_VERSION",
    "atomic_write_bytes",
    "atomic_write_json",
    "read_json",
    "DiskStore",
    "DiskStoreReader",
    "write_checkpoint",
    "read_checkpoint",
    "build_checkpoint_bytes",
    "parse_checkpoint",
    "SerialCheckpointer",
    "ParallelCheckpointer",
    "ResumeState",
    "ParallelResume",
    "load_serial_resume",
    "load_parallel_resume",
    "save_trace",
    "load_trace",
    "save_violation",
    "load_violation",
    "save_lasso",
    "load_lasso",
    "write_text_artifact",
    "run_check",
    "BUDGET_KEYS",
    "VIOLATION_ARTIFACT",
]
