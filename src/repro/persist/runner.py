"""Durable check runs: run-directory orchestration for BFS exploration.

:func:`run_check` is the one entry point behind ``sandtable check
--run-dir`` and ``bfs_explore(..., run_dir=...)``.  It owns the life
cycle of a durable run:

* **fresh run** — create the run directory, record the configuration in
  the manifest, and explore with a disk-backed state store (serial) or
  checkpointed shard workers (parallel), checkpointing periodically;
* **resume** — reopen the directory, refuse incompatible codec/layout
  versions and changed non-budget configuration, reload the latest
  checkpoint, and continue.  Checkpoints are taken at state/round
  boundaries the uninterrupted run also passes through, so a resumed
  run finishes with the identical :class:`~repro.core.engine.SearchResult`
  (budget keys — ``max_states``, ``max_depth``, ``time_budget`` — may
  grow between sessions to extend a stopped run);
* **finish** — stamp the manifest with the outcome and save any
  violation as a replayable artifact (``artifacts/violation.json``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from typing import Any, Callable, Optional, Union

from ..core.engine import SearchResult
from ..core.explorer import BFSExplorer
from ..core.spec import Spec
from ..obs.report import METRICS_FILENAME
from ..obs.reporter import compose_progress
from ..obs.sink import MetricsSink
from .artifacts import save_violation
from .checkpoint import (
    ParallelCheckpointer,
    SerialCheckpointer,
    load_parallel_resume,
    load_serial_resume,
)
from .diskstore import DiskStore
from .rundir import RunDir

__all__ = ["run_check", "BUDGET_KEYS", "VIOLATION_ARTIFACT"]

#: Configuration keys allowed to change between a run and its resume:
#: growing a budget extends a stopped run over the same state space.
BUDGET_KEYS = ("max_states", "max_depth", "time_budget")

VIOLATION_ARTIFACT = "violation.json"


def _spec_label(spec: Spec) -> str:
    cls = type(spec)
    return f"{cls.__module__}.{cls.__qualname__}"


def run_check(
    spec: Spec,
    run_dir: Union[str, os.PathLike],
    *,
    workers: int = 1,
    resume: bool = False,
    checkpoint_every: Optional[float] = None,
    checkpoint_states: Optional[int] = None,
    symmetry: bool = False,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    time_budget: Optional[float] = None,
    stop_on_violation: bool = True,
    strong_fingerprints: bool = False,
    memory_budget: int = 1_000_000,
    progress: Optional[Callable[[Any], None]] = None,
    progress_interval: int = 50_000,
    on_checkpoint: Optional[Callable[[Any], None]] = None,
    spec_label: Optional[str] = None,
    metrics: Optional[Any] = None,
    compiled: bool = True,
    fast: bool = False,
    por: bool = False,
    research: bool = True,
    transport: Optional[Any] = None,
    manifest_extra: Optional[dict] = None,
) -> SearchResult:
    """Run (or resume) one durable BFS check in ``run_dir``.

    With ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) the
    run is instrumented end to end: snapshots ride in every checkpoint
    (so cumulative counters survive kill/resume exactly), and an
    append-only JSONL sink is kept at ``<run dir>/metrics.jsonl`` — a
    resumed run appends to the same file, marked by a fresh ``open``
    line.

    ``transport`` (a :class:`~repro.core.parallel.ForkTransport`-shaped
    object, e.g. :class:`repro.dist.transport.SocketTransport`) forces
    the parallel driver and selects how shard workers are reached; it is
    deliberately not part of the recorded config, since a fork run and a
    socket run over the same spec are byte-identical and a resume may
    freely switch between them.  ``manifest_extra`` merges extra fields
    into the run-dir manifest (the job service records its job metadata
    this way).
    """
    if strong_fingerprints:
        raise ValueError(
            "durable runs do not support strong_fingerprints: the disk"
            " store and checkpoint files hold 64-bit integer fingerprints"
            " only (drop run_dir to explore with strong fingerprints)"
        )
    if checkpoint_every is None and checkpoint_states is None:
        checkpoint_every = 60.0
    parallel = transport is not None or (
        workers > 1 and "fork" in multiprocessing.get_all_start_methods()
    )
    config = {
        "spec": spec_label or _spec_label(spec),
        "mode": "parallel" if parallel else "serial",
        "workers": workers if parallel else 1,
        "symmetry": bool(symmetry),
        "stop_on_violation": bool(stop_on_violation),
        "max_states": max_states,
        "max_depth": max_depth,
        "time_budget": time_budget,
        # Recorded so a resume cannot silently flip them: a traceless
        # store cannot continue a full run (or vice versa), and POR
        # changes the explored state space.
        "fast": bool(fast),
        "por": bool(por),
    }
    if resume:
        rd = RunDir.open(run_dir)
        rd.check_config(config, ignore=BUDGET_KEYS)
        rd.update_manifest(status="running", config=config, **(manifest_extra or {}))
    else:
        rd = RunDir.create(run_dir, config=config, **(manifest_extra or {}))

    sink: Optional[MetricsSink] = None
    if metrics is not None:
        sink = MetricsSink(
            rd.path / METRICS_FILENAME,
            metrics,
            meta={
                "spec": config["spec"],
                "mode": config["mode"],
                "workers": config["workers"],
                "resumed": bool(resume),
            },
        )
        progress = compose_progress(sink.on_progress, progress)

    # ``compiled`` is deliberately not part of the recorded config: a
    # compiled run is bit-identical to an interpreted one (same
    # fingerprints, same checkpoints), so a resume may freely flip it.
    explore = dict(
        symmetry=symmetry,
        max_states=max_states,
        max_depth=max_depth,
        time_budget=time_budget,
        stop_on_violation=stop_on_violation,
        progress=progress,
        progress_interval=progress_interval,
        metrics=metrics,
        compiled=compiled,
        fast=fast,
        por=por,
        research=research,
    )
    store: Optional[DiskStore] = None
    try:
        if parallel:
            presume = load_parallel_resume(rd) if resume else None
            checkpointer = ParallelCheckpointer(
                rd, checkpoint_every, checkpoint_states, on_checkpoint
            )
            from ..core.parallel import ParallelBFS  # heavy import, keep local

            bfs = ParallelBFS(
                spec,
                workers=workers,
                checkpointer=checkpointer,
                resume=presume,
                transport=transport,
                **explore,
            )
            result = bfs.run()
            # Surface elastic-membership events (worker deaths and shard
            # reassignments) where clients look: the run-dir manifest.
            if getattr(bfs, "membership", None):
                rd.update_manifest(reassignments=list(bfs.membership))
        else:
            if resume:
                loaded, resume_state = load_serial_resume(
                    rd, memory_budget, metrics=metrics
                )
                store = loaded  # type: ignore[assignment]
            else:
                store = DiskStore(
                    rd.store_dir, memory_budget, traceless=fast, metrics=metrics
                )
                resume_state = None
            checkpointer = SerialCheckpointer(
                rd, checkpoint_every, checkpoint_states, on_checkpoint
            )
            explorer = BFSExplorer(
                spec, store=store, checkpointer=checkpointer, **explore
            )
            result = explorer.run(resume=resume_state)
    except BaseException:
        # Leave the checkpoints intact; the manifest records that this
        # run needs --resume rather than looking merely stale.  The sink
        # keeps its last flushed line as the record — no final snapshot,
        # which could publish state past the last committed checkpoint.
        try:
            rd.update_manifest(status="interrupted")
        except Exception:
            pass
        if sink is not None:
            sink.abandon()
        raise
    finally:
        if store is not None and hasattr(store, "close"):
            store.close()

    if result.found_violation:
        status = "violation"
        save_violation(
            rd.artifact_path(VIOLATION_ARTIFACT),
            result.violation,
            spec=config["spec"],
        )
    elif result.exhausted:
        status = "complete"
    else:
        status = "stopped"
    rd.update_manifest(
        status=status,
        finished=time.time(),
        result={
            "stop_reason": str(result.stop_reason),
            "stats": dataclasses.asdict(result.stats),
            "violation": result.violation.invariant if result.found_violation else None,
        },
    )
    if sink is not None:
        sink.close(stats=result.stats, status=status)
    return result
