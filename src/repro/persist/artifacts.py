"""Replayable artifacts: saved traces, violations, and reports.

Artifacts are what a run leaves behind for *later* sessions: a violation
trace saved today replays against the implementation tomorrow (``sandtable
replay --trace``) with no re-exploration.  Trace and violation files are
JSON built on the lossless :meth:`repro.core.trace.Trace.to_dict` encoding
— every state carries its canonical codec bytes — and are stamped with
:data:`~repro.core.state.CODEC_VERSION` so a build with a different codec
refuses them with a clear error instead of silently mis-decoding.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Union

from ..core.state import CODEC_VERSION
from ..core.trace import Trace
from ..core.violation import Violation
from .rundir import RunDirError, atomic_write_bytes, atomic_write_json, read_json

__all__ = [
    "save_trace",
    "load_trace",
    "save_violation",
    "load_violation",
    "save_lasso",
    "load_lasso",
    "write_text_artifact",
]


def _check_codec(obj: Dict[str, Any], path: Any) -> None:
    codec = obj.get("codec_version")
    if codec is not None and codec != CODEC_VERSION:
        raise RunDirError(
            f"artifact {path} was written with state-codec version {codec};"
            f" this build uses codec version {CODEC_VERSION} and cannot"
            " decode its states"
        )


def save_trace(path: Union[str, os.PathLike], trace: Trace, **extra: Any) -> None:
    """Write a trace as a replayable JSON artifact (atomic)."""
    payload = {"codec_version": CODEC_VERSION, "trace": trace.to_dict()}
    payload.update(extra)
    atomic_write_json(path, payload)


def load_trace(path: Union[str, os.PathLike]) -> Trace:
    """Load a trace artifact written by :func:`save_trace`.

    Also accepts a bare ``Trace.to_dict`` JSON object, so traces dumped
    by hand (``json.dump(trace.to_dict(), ...)``) replay too.
    """
    data = read_json(path)
    _check_codec(data, path)
    return Trace.from_dict(data["trace"] if "trace" in data else data)


def save_violation(
    path: Union[str, os.PathLike], violation: Violation, **extra: Any
) -> None:
    """Write a violation (invariant + trace) as a replayable artifact."""
    payload = {
        "codec_version": CODEC_VERSION,
        "invariant": violation.invariant,
        "kind": violation.kind,
        "detail": violation.detail,
        "depth": violation.depth,
        "trace": violation.trace.to_dict(),
    }
    payload.update(extra)
    atomic_write_json(path, payload)


def load_violation(path: Union[str, os.PathLike]) -> Violation:
    """Load a violation artifact; bare trace files become an unnamed one."""
    data = read_json(path)
    _check_codec(data, path)
    if "invariant" not in data:
        trace = Trace.from_dict(data["trace"] if "trace" in data else data)
        return Violation("(saved trace)", trace)
    return Violation(
        data["invariant"],
        Trace.from_dict(data["trace"]),
        kind=data.get("kind", "state"),
        detail=data.get("detail", ""),
    )


def save_lasso(
    path: Union[str, os.PathLike],
    lasso: Any,
    property_name: str,
    **extra: Any,
) -> None:
    """Write a liveness lasso as a replayable artifact (atomic).

    The payload is a superset of the violation schema — ``invariant`` /
    ``kind`` / ``trace`` at the top level — so the same file replays
    through ``sandtable replay --trace`` (the prefix+cycle steps are
    genuine spec transitions) *and* round-trips back into a
    :class:`repro.temporal.LassoTrace` via :func:`load_lasso` (the
    ``lasso_version`` / ``cycle_start`` / ``stuttering`` fields ride
    alongside).
    """
    payload = {
        "codec_version": CODEC_VERSION,
        "invariant": property_name,
        "kind": "liveness",
        "detail": lasso.describe(),
        "depth": lasso.trace.depth,
        "trace": lasso.trace.to_dict(),
        "lasso_version": lasso.to_dict()["lasso_version"],
        "cycle_start": lasso.cycle_start,
        "stuttering": lasso.stuttering,
    }
    payload.update(extra)
    atomic_write_json(path, payload)


def load_lasso(path: Union[str, os.PathLike]):
    """Load a lasso artifact: ``(property_name, LassoTrace)``."""
    from ..temporal import LassoTrace  # temporal sits above persist

    data = read_json(path)
    _check_codec(data, path)
    if "lasso_version" not in data:
        raise RunDirError(
            f"artifact {path} is not a lasso artifact (no lasso_version);"
            " safety violations load with load_violation"
        )
    return data.get("invariant", ""), LassoTrace.from_dict(data)


def write_text_artifact(
    path: Union[str, os.PathLike], text: str, encoding: str = "utf-8"
) -> None:
    """Write a text artifact (Markdown report, summary) atomically."""
    atomic_write_bytes(path, text.encode(encoding))
