"""The ``sandtable`` command line: the paper's workflow from a shell.

Subcommands mirror Figure 1:

* ``bugs`` — list the Table 2 registry;
* ``check`` — specification-level model checking (BFS) for one system;
* ``simulate`` — random-walk exploration;
* ``conformance`` — iterative conformance checking of spec vs. impl;
* ``detect`` — run the registry-recorded detection for one bug;
* ``replay`` — detect a bug and confirm it at the implementation level;
* ``selftest`` — differential fuzzing of the checker itself
  (:mod:`repro.testkit`): random specs, a naive oracle, the full engine
  configuration matrix;
* ``coverage`` — the per-action coverage report of a finished run
  (from a durable run directory's ``metrics.jsonl`` or a ``--stats-out``
  file).

``check``, ``simulate`` and ``detect`` accept ``--stats``/``--stats-out``
to instrument the run (:mod:`repro.obs`): TLC-style live progress lines
on stderr, an end-of-run action-coverage report, and a JSONL metrics
sink.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bugs import BUGS, detect
from .core.compile import compile_disabled
from .core.state import set_delta_codec
from .conformance import BugReplayer, ConformanceChecker, mapping_for
from .core import bfs_explore, simulate
from .obs import (
    MetricsRegistry,
    MetricsSink,
    ProgressReporter,
    coverage_from_registry,
    coverage_from_sink,
    resolve_sink_path,
)
from .persist import RunDirError, load_violation, save_violation
from .specs.raft import (
    DaosRaftSpec,
    PySyncObjSpec,
    RaftConfig,
    RaftOSSpec,
    RedisRaftSpec,
    WRaftSpec,
    XraftKVSpec,
    XraftSpec,
)
from .specs.zab import ZabConfig, ZabSpec
from .systems import SYSTEMS

SPEC_CLASSES = {
    "pysyncobj": PySyncObjSpec,
    "wraft": WRaftSpec,
    "redisraft": RedisRaftSpec,
    "daosraft": DaosRaftSpec,
    "raftos": RaftOSSpec,
    "xraft": XraftSpec,
    "xraft-kv": XraftKVSpec,
    "zookeeper": ZabSpec,
}


def make_spec(system: str, nodes: int, bugs: Sequence[str], invariant: Optional[str]):
    node_names = tuple(f"n{i}" for i in range(1, nodes + 1))
    only = [invariant] if invariant else None
    if system == "zookeeper":
        return ZabSpec(ZabConfig(nodes=node_names), bugs=bugs, only_invariants=only)
    spec_cls = SPEC_CLASSES[system]
    return spec_cls(RaftConfig(nodes=node_names), bugs=bugs, only_invariants=only)


def _make_stats(args: argparse.Namespace):
    """``(registry, reporter)`` for ``--stats``/``--stats-out``, else Nones."""
    if not (getattr(args, "stats", False) or getattr(args, "stats_out", None)):
        return None, None
    registry = MetricsRegistry()
    return registry, ProgressReporter(registry=registry)


def _finish_stats(args: argparse.Namespace, registry, stats=None, spec=None) -> None:
    """Print the action-coverage report and write the ``--stats-out`` sink."""
    if registry is None:
        return
    print(coverage_from_registry(registry, spec).render())
    if getattr(args, "stats_out", None):
        sink = MetricsSink(args.stats_out, registry, meta={"command": args.command})
        sink.close(stats=stats)
        print(f"wrote metrics to {args.stats_out}")


def cmd_bugs(args: argparse.Namespace) -> int:
    print(f"{'bug':14s} {'system':10s} {'stage':12s} {'status':6s} consequence")
    for bug in BUGS.values():
        print(
            f"{bug.bug_id:14s} {bug.system:10s} {bug.stage:12s}"
            f" {bug.status:6s} {bug.consequence}"
        )
    return 0


def _compiled(args: argparse.Namespace) -> bool:
    """Resolve ``--no-compile``: also turns off the delta codec, so the
    escape hatch restores the interpreted pipeline end to end."""
    if getattr(args, "no_compile", False):
        set_delta_codec(False)
        return False
    return True


def _validate_reducers(args: argparse.Namespace) -> Optional[str]:
    """Reject flag combinations fast/POR cannot honor, before any work."""
    if getattr(args, "fast", False) and getattr(args, "out", None):
        return (
            "--fast is traceless (8-byte fingerprints, no parent edges):"
            " a violation's minimal counterexample is reconstructed by an"
            " automatic bounded re-search and printed, but --out artifacts"
            " require a full-store run — drop --out (and replay from the"
            " printed trace) or drop --fast"
        )
    if getattr(args, "por", False) and (
        getattr(args, "no_compile", False) or compile_disabled()
    ):
        return (
            "--por needs the compiled pipeline's ActionMeta read/write sets"
            " to prove actions independent; drop --no-compile and unset"
            " SANDTABLE_NO_COMPILE"
        )
    return None


def cmd_check(args: argparse.Namespace) -> int:
    error = _validate_reducers(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    spec = make_spec(args.system, args.nodes, args.bug, args.invariant)
    durable = {}
    if args.run_dir:
        durable = dict(
            run_dir=args.run_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            checkpoint_states=args.checkpoint_states,
        )
    elif args.resume:
        print("--resume requires --run-dir", file=sys.stderr)
        return 2
    registry, reporter = _make_stats(args)
    try:
        result = bfs_explore(
            spec,
            max_states=args.max_states,
            time_budget=args.time_budget,
            symmetry=args.symmetry,
            workers=args.workers,
            metrics=registry,
            progress=reporter,
            compiled=_compiled(args),
            fast=args.fast,
            por=args.por,
            **durable,
        )
    except RunDirError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"explored {result.describe()}")
    _finish_stats(args, registry, stats=result.stats, spec=spec)
    if result.found_violation:
        print(result.violation.describe())
        if args.out:
            save_violation(args.out, result.violation)
            print(f"saved violation trace to {args.out}")
        return 1
    print("no violation found")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    spec = make_spec(args.system, args.nodes, args.bug, args.invariant)
    registry, _ = _make_stats(args)
    result = simulate(
        spec,
        n_walks=args.walks,
        max_depth=args.depth,
        seed=args.seed,
        stop_on_violation=True,
        time_budget=args.time_budget,
        metrics=registry,
        compiled=_compiled(args),
    )
    print(
        f"{result.n_walks} walks, mean depth {result.mean_depth:.1f},"
        f" branch coverage {result.branch_coverage},"
        f" {result.mean_walk_time * 1000:.2f} ms/trace"
    )
    reasons = ", ".join(f"{k}: {v}" for k, v in sorted(result.stop_reasons.items()))
    print(f"{result.stats.describe()}, stop: {result.stop_reason} ({reasons})")
    _finish_stats(args, registry, stats=result.stats, spec=spec)
    violation = result.first_violation
    if violation is not None:
        print(violation.describe())
        return 1
    print("no violation found")
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    spec = make_spec(args.system, args.nodes, args.bug, None)
    checker = ConformanceChecker(
        spec,
        SYSTEMS[args.system],
        mapping_for(args.system, spec.nodes),
        impl_bugs=args.impl_bug if args.impl_bug is not None else None,
    )
    report = checker.run(
        quiet_period=args.quiet_period, max_traces=args.max_traces, seed=args.seed
    )
    print(f"checked {report.traces_checked} traces in {report.elapsed:.1f}s")
    if report.passed:
        print("conformance PASSED (no discrepancy within the quiet period)")
        return 0
    failure = report.failure
    print("conformance FAILED:")
    if failure.crash:
        print(f"  implementation crash: {failure.crash}")
    if failure.engine_error:
        print(f"  event not enabled: {failure.engine_error}")
    if failure.resource_leak:
        print(f"  resource leak: {failure.resource_leak}")
    for discrepancy in failure.discrepancies:
        print(f"  {discrepancy.describe()}")
    print(failure.trace.summary())
    return 1


def cmd_detect(args: argparse.Namespace) -> int:
    bug = BUGS[args.bug_id]
    registry, reporter = _make_stats(args)
    result = detect(
        bug,
        time_budget=args.time_budget,
        seed=args.seed,
        metrics=registry,
        progress=reporter,
        compiled=_compiled(args),
    )
    row = result.as_row()
    print(
        f"{row['bug']}: found={row['found']} depth={row['depth']}"
        f" time={row['time_s']}s states={row['states']} walks={row['walks']}"
        f" stop={row['stop']} states/s={row['states_per_s']}"
        f" (paper: {row['paper_time']}, depth {row['paper_depth']},"
        f" {row['paper_states']} states)"
    )
    _finish_stats(args, registry, stats=result.stats)
    if result.found and args.out:
        save_violation(args.out, result.violation, bug=bug.bug_id)
        print(f"saved violation trace to {args.out}")
    return 0 if result.found else 1


def cmd_selftest(args: argparse.Namespace) -> int:
    from .testkit import replay_artifact, run_differential

    if args.por and compile_disabled():
        print(
            "--por needs the compiled pipeline's ActionMeta read/write sets;"
            " unset SANDTABLE_NO_COMPILE",
            file=sys.stderr,
        )
        return 2
    if args.replay:
        original, fresh = replay_artifact(args.replay)
        print(f"replaying artifact: {original.describe()}")
        if fresh:
            for item in fresh:
                print(f"  still disagrees: {item.describe()}")
            return 1
        print("  no longer reproduces")
        return 0

    registry = MetricsRegistry() if args.stats_out else None
    reporter = ProgressReporter(enabled=not args.quiet)

    def progress(index: int, generated, n_bad: int) -> None:
        reporter.event(
            "spec",
            seed=generated.seed,
            nodes=generated.params.n_nodes,
            verdict="ok" if n_bad == 0 else f"{n_bad}-DISAGREEMENTS",
        )

    report = run_differential(
        args.specs,
        seed=args.seed,
        out_dir=args.out,
        parallel=not args.serial_only,
        progress=progress,
        metrics=registry,
        fast=args.fast,
        por=args.por,
    )
    print(report.describe())
    if registry is not None:
        MetricsSink(args.stats_out, registry, meta={"command": "selftest"}).close()
        print(f"wrote metrics to {args.stats_out}")
    return 0 if report.ok else 1


def cmd_coverage(args: argparse.Namespace) -> int:
    try:
        sink = resolve_sink_path(args.path)
        coverage = coverage_from_sink(sink)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(coverage.render())
    if args.strict and not coverage.complete:
        return 1
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    if args.trace:
        # Replay a saved counterexample: no re-exploration, just the
        # deterministic implementation-level confirmation.
        try:
            violation = load_violation(args.trace)
        except RunDirError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.bug_id:
            bug = BUGS[args.bug_id]
            spec = bug.make_spec()
            system = bug.system
        elif args.system:
            spec = make_spec(args.system, args.nodes, args.bug, None)
            system = args.system
        else:
            print("replay --trace needs a bug_id or --system", file=sys.stderr)
            return 2
        checker = ConformanceChecker(
            spec, SYSTEMS[system], mapping_for(system, spec.nodes)
        )
        confirmation = BugReplayer(checker).confirm(violation)
        print(confirmation.describe())
        if confirmation.confirmed:
            print(violation.trace.summary())
        return 0 if confirmation.confirmed else 1
    if not args.bug_id:
        print("replay needs a bug_id (or --trace FILE)", file=sys.stderr)
        return 2
    bug = BUGS[args.bug_id]
    result = detect(
        bug, time_budget=args.time_budget, seed=args.seed, compiled=_compiled(args)
    )
    if not result.found:
        print(f"{bug.bug_id}: not found at the specification level")
        return 1
    spec = bug.make_spec()
    checker = ConformanceChecker(
        spec, SYSTEMS[bug.system], mapping_for(bug.system, spec.nodes)
    )
    confirmation = BugReplayer(checker).confirm(result.violation)
    print(confirmation.describe())
    if confirmation.confirmed:
        print(result.violation.trace.summary())
    return 0 if confirmation.confirmed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sandtable",
        description="Scalable distributed system model checking with "
        "specification-level state exploration (SandTable reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("bugs", help="list the Table 2 bug registry").set_defaults(
        fn=cmd_bugs
    )

    def common(p):
        p.add_argument("--system", required=True, choices=sorted(SPEC_CLASSES))
        p.add_argument("--nodes", type=int, default=3)
        p.add_argument("--bug", action="append", default=[], help="seed a bug flag")
        p.add_argument("--invariant", help="check only this invariant")
        p.add_argument("--time-budget", type=float, default=60.0)
        p.add_argument("--seed", type=int, default=0)
        no_compile(p)

    def no_compile(p):
        p.add_argument(
            "--no-compile",
            action="store_true",
            help="run the interpreted pipeline (no compiled spec closures, "
            "no delta codec); same as SANDTABLE_NO_COMPILE=1",
        )

    def stats_args(p):
        p.add_argument(
            "--stats",
            action="store_true",
            help="live progress lines plus an end-of-run action-coverage report",
        )
        p.add_argument(
            "--stats-out",
            metavar="FILE",
            help="also append JSONL metrics snapshots to FILE (implies --stats)",
        )

    check = sub.add_parser("check", help="BFS model checking")
    common(check)
    check.add_argument("--max-states", type=int, default=1_000_000)
    check.add_argument("--symmetry", action="store_true")
    check.add_argument(
        "--fast",
        action="store_true",
        help="traceless fingerprint-only store (~16 bytes/state); a violation's"
        " counterexample is reconstructed by an automatic bounded re-search",
    )
    check.add_argument(
        "--por",
        action="store_true",
        help="partial-order reduction: statically prune actions proven"
        " independent by their declared read/write sets (needs the compiled"
        " pipeline)",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel BFS worker processes (fingerprint-sharded; 1 = serial)",
    )
    check.add_argument(
        "--run-dir",
        help="durable run directory: disk-backed store + crash-safe checkpoints",
    )
    check.add_argument(
        "--resume",
        action="store_true",
        help="continue the checkpointed run in --run-dir",
    )
    check.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="SECONDS",
        help="checkpoint cadence in seconds (default 60 with --run-dir)",
    )
    check.add_argument(
        "--checkpoint-states",
        type=int,
        default=None,
        metavar="N",
        help="also checkpoint every N newly recorded states",
    )
    check.add_argument(
        "--out", help="save the violation trace as a replayable JSON artifact"
    )
    stats_args(check)
    check.set_defaults(fn=cmd_check)

    sim = sub.add_parser("simulate", help="random-walk exploration")
    common(sim)
    sim.add_argument("--walks", type=int, default=10_000)
    sim.add_argument("--depth", type=int, default=40)
    stats_args(sim)
    sim.set_defaults(fn=cmd_simulate)

    conf = sub.add_parser("conformance", help="spec vs. implementation")
    common(conf)
    conf.add_argument(
        "--impl-bug",
        action="append",
        default=None,
        help="seed this bug only in the implementation",
    )
    conf.add_argument("--quiet-period", type=float, default=10.0)
    conf.add_argument("--max-traces", type=int, default=None)
    conf.set_defaults(fn=cmd_conformance)

    det = sub.add_parser("detect", help="run one registry bug detection")
    no_compile(det)
    det.add_argument("bug_id", choices=sorted(BUGS))
    det.add_argument("--time-budget", type=float, default=120.0)
    det.add_argument("--seed", type=int, default=0)
    det.add_argument(
        "--out", help="save the violation trace as a replayable JSON artifact"
    )
    stats_args(det)
    det.set_defaults(fn=cmd_detect)

    cov = sub.add_parser(
        "coverage",
        help="per-action coverage report from a run's metrics sink",
    )
    cov.add_argument(
        "path",
        help="a durable run directory (with metrics.jsonl) or a --stats-out file",
    )
    cov.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any action never fired",
    )
    cov.set_defaults(fn=cmd_coverage)

    rep = sub.add_parser("replay", help="detect and confirm at the impl level")
    no_compile(rep)
    rep.add_argument("bug_id", nargs="?", choices=sorted(BUGS))
    rep.add_argument(
        "--trace",
        help="replay this saved trace artifact instead of re-exploring",
    )
    rep.add_argument(
        "--system",
        choices=sorted(SPEC_CLASSES),
        help="spec for --trace replay when no bug_id is given",
    )
    rep.add_argument("--nodes", type=int, default=3)
    rep.add_argument("--bug", action="append", default=[], help="seed a bug flag")
    rep.add_argument("--time-budget", type=float, default=120.0)
    rep.add_argument("--seed", type=int, default=0)
    rep.set_defaults(fn=cmd_replay)

    selftest = sub.add_parser(
        "selftest",
        help="differentially fuzz the checker itself against a naive oracle",
    )
    selftest.add_argument("--specs", type=int, default=20, help="random specs to fuzz")
    selftest.add_argument("--seed", default="0", help="sweep seed (any string)")
    selftest.add_argument(
        "--out", help="write disagreement artifacts (replayable JSON) here"
    )
    selftest.add_argument(
        "--serial-only",
        action="store_true",
        help="skip the parallel-worker configurations",
    )
    selftest.add_argument(
        "--replay", metavar="ARTIFACT", help="re-run one saved disagreement artifact"
    )
    selftest.add_argument(
        "--fast",
        action="store_true",
        help="force the traceless fast store onto every compatible matrix cell",
    )
    selftest.add_argument(
        "--por",
        action="store_true",
        help="force partial-order reduction onto every compiled matrix cell",
    )
    selftest.add_argument("--quiet", action="store_true", help="summary line only")
    selftest.add_argument(
        "--stats-out",
        metavar="FILE",
        help="append sweep-wide JSONL metrics snapshots to FILE",
    )
    selftest.set_defaults(fn=cmd_selftest)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
