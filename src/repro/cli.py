"""The ``sandtable`` command line: the paper's workflow from a shell.

Subcommands mirror Figure 1:

* ``bugs`` — list the Table 2 registry;
* ``check`` — specification-level model checking (BFS) for one system;
  ``--temporal NAME`` additionally runs TLC-style liveness checking over
  the explored graph: lasso (prefix + fair cycle) detection against the
  named property (:mod:`repro.temporal`);
* ``check-liveness`` — post-hoc liveness checking of a finished durable
  run: reopen the run directory's persisted state graph and search it
  for fair lassos, no re-exploration;
* ``simulate`` — random-walk exploration;
* ``conformance`` — iterative conformance checking of spec vs. impl;
* ``detect`` — run the registry-recorded detection for one bug;
* ``replay`` — detect a bug and confirm it at the implementation level;
* ``validate-trace`` — check a runtime-emitted JSONL event log against
  the spec (:mod:`repro.tracecheck`): conforms, or diverges at event k
  with near-miss evidence;
* ``selftest`` — differential fuzzing of the checker itself
  (:mod:`repro.testkit`): random specs, a naive oracle, the full engine
  configuration matrix; ``--tracecheck`` instead grades the trace
  validator against logs with planted divergences, and ``--temporal``
  grades the lasso finder against a naive fair-cycle oracle on random
  specs;
* ``coverage`` — the per-action coverage report of a finished run
  (from a durable run directory's ``metrics.jsonl`` or a ``--stats-out``
  file).

``check``, ``simulate`` and ``detect`` accept ``--stats``/``--stats-out``
to instrument the run (:mod:`repro.obs`): TLC-style live progress lines
on stderr, an end-of-run action-coverage report, and a JSONL metrics
sink.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from .bugs import BUGS, detect
from .core.compile import compile_disabled
from .core.state import set_delta_codec
from .conformance import BugReplayer, ConformanceChecker, mapping_for
from .core import bfs_explore, simulate

# SPEC_CLASSES/make_spec moved to repro.dist.specref (spec references
# must resolve without importing the CLI); re-exported here unchanged.
from .dist.specref import SPEC_CLASSES, make_spec  # noqa: F401 - re-export
from .obs import (
    MetricsRegistry,
    MetricsSink,
    ProgressReporter,
    coverage_from_registry,
    coverage_from_sink,
    resolve_sink_path,
)
from .persist import RunDirError, load_violation, save_violation
from .systems import SYSTEMS
from .temporal import PROPERTY_NAMES


def _workers_value(text: str) -> int:
    """argparse type for ``--workers``: a positive integer, or exit 2."""
    try:
        value = int(str(text).strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer worker count, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {value} (1 means serial)"
        )
    return value


def _resolve_workers(args: argparse.Namespace) -> int:
    """``--workers``, else ``SANDTABLE_WORKERS``, else 1.

    Raises :class:`WorkersError` (→ exit 2) on a malformed environment
    value; a typo must not silently run serial.
    """
    if args.workers is not None:
        return args.workers
    env = os.environ.get("SANDTABLE_WORKERS", "").strip()
    if not env:
        return 1
    try:
        return _workers_value(env)
    except argparse.ArgumentTypeError as exc:
        raise WorkersError(f"SANDTABLE_WORKERS: {exc}") from None


class WorkersError(ValueError):
    """A malformed worker-count setting (flag validation handles the flag
    itself; this covers the ``SANDTABLE_WORKERS`` environment path)."""


def _make_stats(args: argparse.Namespace):
    """``(registry, reporter)`` for ``--stats``/``--stats-out``, else Nones."""
    if not (getattr(args, "stats", False) or getattr(args, "stats_out", None)):
        return None, None
    registry = MetricsRegistry()
    return registry, ProgressReporter(registry=registry)


def _finish_stats(args: argparse.Namespace, registry, stats=None, spec=None) -> None:
    """Print the action-coverage report and write the ``--stats-out`` sink."""
    if registry is None:
        return
    print(coverage_from_registry(registry, spec).render())
    snap = registry.snapshot()
    rounds = snap["counters"].get("parallel.rounds", 0)
    if rounds:
        batch_bytes = snap["counters"].get("parallel.batch_bytes", 0)
        wire_sent = snap["counters"].get("dist.wire.bytes_sent", 0)
        wire_received = snap["counters"].get("dist.wire.bytes_received", 0)
        wait = snap["histograms"].get("parallel.round_wait_ms")
        line = f"exchange: {rounds} rounds, {batch_bytes} batch bytes routed"
        if wire_sent or wire_received:
            line += f", wire {wire_sent}B out / {wire_received}B in"
        if wait and wait.get("count"):
            mean = wait["total"] / wait["count"]
            line += f", master wait mean {mean:.1f} ms max {wait['max']:.1f} ms"
        print(line)
    if getattr(args, "stats_out", None):
        sink = MetricsSink(args.stats_out, registry, meta={"command": args.command})
        sink.close(stats=stats)
        print(f"wrote metrics to {args.stats_out}")


def cmd_bugs(args: argparse.Namespace) -> int:
    print(f"{'bug':14s} {'system':10s} {'stage':12s} {'status':6s} consequence")
    for bug in BUGS.values():
        print(
            f"{bug.bug_id:14s} {bug.system:10s} {bug.stage:12s}"
            f" {bug.status:6s} {bug.consequence}"
        )
    return 0


def _compiled(args: argparse.Namespace) -> bool:
    """Resolve ``--no-compile``: also turns off the delta codec, so the
    escape hatch restores the interpreted pipeline end to end."""
    if getattr(args, "no_compile", False):
        set_delta_codec(False)
        return False
    return True


def _validate_reducers(args: argparse.Namespace) -> Optional[str]:
    """Reject flag combinations fast/POR cannot honor, before any work."""
    if getattr(args, "fast", False) and getattr(args, "out", None):
        return (
            "--fast is traceless (8-byte fingerprints, no parent edges):"
            " a violation's minimal counterexample is reconstructed by an"
            " automatic bounded re-search and printed, but --out artifacts"
            " require a full-store run — drop --out (and replay from the"
            " printed trace) or drop --fast"
        )
    if getattr(args, "por", False) and (
        getattr(args, "no_compile", False) or compile_disabled()
    ):
        return (
            "--por needs the compiled pipeline's ActionMeta read/write sets"
            " to prove actions independent; drop --no-compile and unset"
            " SANDTABLE_NO_COMPILE"
        )
    if getattr(args, "temporal", None):
        if getattr(args, "fast", False):
            return (
                "--temporal needs the explored state graph, but --fast keeps"
                " a fingerprint-only store with no parent edges: drop --fast"
                " before --temporal"
            )
        if getattr(args, "run_dir", None):
            return (
                "--temporal cannot run inline with --run-dir (the durable"
                " store is owned by the checkpointer); run the durable check"
                " first, then `sandtable check-liveness RUN_DIR` on the"
                " finished run directory"
            )
    return None


def cmd_check(args: argparse.Namespace) -> int:
    error = _validate_reducers(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        workers = _resolve_workers(args)
    except WorkersError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.temporal and (workers > 1 or args.worker):
        print(
            "--temporal runs on the serial explorer's in-memory graph; for"
            " parallel runs do a durable --run-dir check first, then"
            " `sandtable check-liveness RUN_DIR`",
            file=sys.stderr,
        )
        return 2
    transport = None
    if args.worker:
        # Remote socket workers: the spec travels as a reference, the
        # shard count defaults to one shard per address.
        from .dist.specref import system_ref
        from .dist.transport import SocketTransport, TransportError

        if args.workers is None:
            workers = len(args.worker)
        elif workers > len(args.worker):
            print(
                f"--workers {workers} needs at least {workers} --worker"
                f" addresses, got {len(args.worker)}",
                file=sys.stderr,
            )
            return 2
        try:
            transport = SocketTransport(
                args.worker,
                system_ref(args.system, args.nodes, args.bug, args.invariant),
            )
        except TransportError as exc:
            print(exc, file=sys.stderr)
            return 2
    spec = make_spec(args.system, args.nodes, args.bug, args.invariant)
    temporal_store = None
    temporal_props = []
    if args.temporal:
        from .core.engine import CompactStore
        from .temporal import resolve_property

        try:
            temporal_props = [
                resolve_property(spec, name) for name in dict.fromkeys(args.temporal)
            ]
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        # The graph needs the full budgeted census: keep exploring past
        # safety violations (they are still collected and reported).
        temporal_store = CompactStore()
    durable = {}
    if args.run_dir:
        durable = dict(
            run_dir=args.run_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            checkpoint_states=args.checkpoint_states,
        )
    elif args.resume:
        print("--resume requires --run-dir", file=sys.stderr)
        return 2
    registry, reporter = _make_stats(args)
    from .dist.transport import TransportError as _TransportError

    try:
        result = bfs_explore(
            spec,
            max_states=args.max_states,
            time_budget=args.time_budget,
            symmetry=args.symmetry,
            workers=workers,
            transport=transport,
            metrics=registry,
            progress=reporter,
            compiled=_compiled(args),
            fast=args.fast,
            por=args.por,
            **durable,
            **(
                {"store": temporal_store, "stop_on_violation": False}
                if temporal_store is not None
                else {}
            ),
        )
    except (RunDirError, _TransportError) as exc:
        # TransportError surfaces when transport.start() cannot reach a
        # worker agent — a usage error, not a crash.
        print(exc, file=sys.stderr)
        return 2
    print(f"explored {result.describe()}")
    temporal_violated = False
    if temporal_store is not None:
        from .persist import save_lasso
        from .temporal import check_graph, materialize_graph

        graph = materialize_graph(spec, temporal_store, symmetry=args.symmetry)
        out_taken = result.found_violation  # the safety trace wins --out
        for prop in temporal_props:
            tres = check_graph(graph, prop, metrics=registry)
            print(tres.describe())
            if tres.lasso is None:
                continue
            temporal_violated = True
            if args.out and not out_taken:
                save_lasso(args.out, tres.lasso, prop.name)
                print(f"saved lasso trace to {args.out}")
                out_taken = True
    _finish_stats(args, registry, stats=result.stats, spec=spec)
    if result.found_violation:
        print(result.violation.describe())
        if args.out:
            save_violation(args.out, result.violation)
            print(f"saved violation trace to {args.out}")
        return 1
    if temporal_violated:
        return 1
    print("no violation found")
    return 0


def cmd_check_liveness(args: argparse.Namespace) -> int:
    """Post-hoc lasso detection over a finished durable run's state graph."""
    from .core.engine import CompactStore, TracelessStoreError
    from .persist import DiskStoreReader, RunDir, load_parallel_resume, save_lasso
    from .persist.checkpoint import load_worker_checkpoint
    from .temporal import check_graph, materialize_graph, resolve_property

    try:
        rd = RunDir.open(args.run_dir)
    except RunDirError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = rd.manifest().get("config", {})
    if config.get("fast"):
        print(
            f"run {args.run_dir} used --fast (fingerprint-only store): no"
            " parent edges were persisted, so the explored graph cannot be"
            " materialized — rerun the check without --fast, then"
            " check-liveness",
            file=sys.stderr,
        )
        return 2
    symmetry = bool(config.get("symmetry", False))
    spec = make_spec(args.system, args.nodes, args.bug, None)
    label = f"{type(spec).__module__}.{type(spec).__qualname__}"
    recorded = config.get("spec")
    if recorded and recorded != label:
        print(
            f"warning: the run directory records spec {recorded}; rebuilding"
            f" {label} from the flags — fingerprints will only line up if"
            " these are the same specification",
            file=sys.stderr,
        )
    if config.get("mode") == "parallel":
        # Per-shard worker checkpoints; their edges/roots union into one
        # graph (materialize_graph accepts the store list directly).
        try:
            presume = load_parallel_resume(rd)
        except RunDirError as exc:
            print(exc, file=sys.stderr)
            return 2
        source = []
        for path in presume.worker_files:
            shard = CompactStore()
            load_worker_checkpoint(path, shard)
            source.append(shard)
    else:
        if not (rd.store_dir / "roots.log").exists():
            print(
                f"{args.run_dir} has no serial disk store (roots.log);"
                " only `sandtable check --run-dir` runs leave one behind",
                file=sys.stderr,
            )
            return 2
        source = DiskStoreReader(rd.store_dir)
    registry, _ = _make_stats(args)
    try:
        graph = materialize_graph(spec, source, symmetry=symmetry)
    except TracelessStoreError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(
        f"materialized {len(graph)} states from {args.run_dir}"
        f" ({len(graph.roots)} roots, {graph.boundary_edges} boundary edges)"
    )
    names = list(dict.fromkeys(args.temporal)) if args.temporal else list(PROPERTY_NAMES)
    violated = False
    for name in names:
        try:
            prop = resolve_property(spec, name)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        tres = check_graph(graph, prop, metrics=registry)
        print(tres.describe())
        if tres.lasso is not None:
            violated = True
            path = rd.artifact_path(f"lasso-{name}.json")
            save_lasso(path, tres.lasso, name, spec=label)
            print(f"saved lasso trace to {path}")
    _finish_stats(args, registry, spec=spec)
    return 1 if violated else 0


def cmd_simulate(args: argparse.Namespace) -> int:
    spec = make_spec(args.system, args.nodes, args.bug, args.invariant)
    registry, _ = _make_stats(args)
    result = simulate(
        spec,
        n_walks=args.walks,
        max_depth=args.depth,
        seed=args.seed,
        stop_on_violation=True,
        time_budget=args.time_budget,
        metrics=registry,
        compiled=_compiled(args),
    )
    print(
        f"{result.n_walks} walks, mean depth {result.mean_depth:.1f},"
        f" branch coverage {result.branch_coverage},"
        f" {result.mean_walk_time * 1000:.2f} ms/trace"
    )
    reasons = ", ".join(f"{k}: {v}" for k, v in sorted(result.stop_reasons.items()))
    print(f"{result.stats.describe()}, stop: {result.stop_reason} ({reasons})")
    _finish_stats(args, registry, stats=result.stats, spec=spec)
    violation = result.first_violation
    if violation is not None:
        print(violation.describe())
        return 1
    print("no violation found")
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    spec = make_spec(args.system, args.nodes, args.bug, None)
    emitter_factory = None
    if args.emit_log:
        from .tracecheck import system_emitter

        emitter_factory = lambda: system_emitter(  # noqa: E731
            args.system, spec.nodes, meta={"source": "conformance"}
        )
    checker = ConformanceChecker(
        spec,
        SYSTEMS[args.system],
        mapping_for(args.system, spec.nodes),
        impl_bugs=args.impl_bug if args.impl_bug is not None else None,
        emitter_factory=emitter_factory,
    )
    report = checker.run(
        quiet_period=args.quiet_period, max_traces=args.max_traces, seed=args.seed
    )
    if args.emit_log and checker.last_emitter is not None:
        # The last replay's log: on failure, the failing replay's —
        # exactly the execution worth validating against the spec.
        checker.last_emitter.write(args.emit_log)
        print(f"wrote event log to {args.emit_log}")
    print(f"checked {report.traces_checked} traces in {report.elapsed:.1f}s")
    if report.passed:
        print("conformance PASSED (no discrepancy within the quiet period)")
        return 0
    failure = report.failure
    print("conformance FAILED:")
    if failure.crash:
        print(f"  implementation crash: {failure.crash}")
    if failure.engine_error:
        print(f"  event not enabled: {failure.engine_error}")
    if failure.resource_leak:
        print(f"  resource leak: {failure.resource_leak}")
    for discrepancy in failure.discrepancies:
        print(f"  {discrepancy.describe()}")
    print(failure.trace.summary())
    return 1


def cmd_detect(args: argparse.Namespace) -> int:
    bug = BUGS[args.bug_id]
    registry, reporter = _make_stats(args)
    result = detect(
        bug,
        time_budget=args.time_budget,
        seed=args.seed,
        metrics=registry,
        progress=reporter,
        compiled=_compiled(args),
    )
    row = result.as_row()
    print(
        f"{row['bug']}: found={row['found']} depth={row['depth']}"
        f" time={row['time_s']}s states={row['states']} walks={row['walks']}"
        f" stop={row['stop']} states/s={row['states_per_s']}"
        f" (paper: {row['paper_time']}, depth {row['paper_depth']},"
        f" {row['paper_states']} states)"
    )
    _finish_stats(args, registry, stats=result.stats)
    if result.found and args.out:
        save_violation(args.out, result.violation, bug=bug.bug_id)
        print(f"saved violation trace to {args.out}")
    return 0 if result.found else 1


def cmd_validate_trace(args: argparse.Namespace) -> int:
    from .persist.rundir import RunDir
    from .tracecheck import (
        TraceLogError,
        read_log,
        validate_log,
        write_report_artifact,
    )

    try:
        log = read_log(args.log)
    except FileNotFoundError:
        print(f"no such log file: {args.log}", file=sys.stderr)
        return 2
    except TraceLogError as exc:
        print(f"bad event log: {exc}", file=sys.stderr)
        return 2
    system = args.system or log.header.spec
    if system not in SPEC_CLASSES:
        print(
            f"unknown system {system!r} (log header says {log.header.spec!r});"
            f" pass --system with one of: {', '.join(sorted(SPEC_CLASSES))}",
            file=sys.stderr,
        )
        return 2
    nodes = args.nodes or (len(log.header.nodes) or 3)
    spec = make_spec(system, nodes, args.bug, None)
    if log.header.nodes and tuple(log.header.nodes) != tuple(spec.nodes):
        print(
            f"log was emitted by nodes {list(log.header.nodes)} but the spec"
            f" models {list(spec.nodes)}; pass a matching --nodes",
            file=sys.stderr,
        )
        return 2
    registry, _ = _make_stats(args)
    report = validate_log(
        spec,
        log,
        stutter_depth=args.stutter,
        max_frontier=args.max_frontier,
        compiled=_compiled(args),
        metrics=registry,
    )
    print(report.describe())
    if args.run_dir:
        try:
            run = RunDir.create(
                args.run_dir,
                config={
                    "command": "validate-trace",
                    "system": system,
                    "nodes": nodes,
                    "log": str(args.log),
                },
            )
        except RunDirError as exc:
            print(exc, file=sys.stderr)
            return 2
        path = write_report_artifact(run, report)
        print(f"saved validation report to {path}")
    if args.out:
        from .persist.rundir import atomic_write_json

        atomic_write_json(args.out, report.to_dict())
        print(f"saved validation report to {args.out}")
    _finish_stats(args, registry, spec=spec)
    return 0 if report.conforms else 1


def cmd_selftest(args: argparse.Namespace) -> int:
    from .testkit import replay_artifact, run_differential

    if args.por and compile_disabled():
        print(
            "--por needs the compiled pipeline's ActionMeta read/write sets;"
            " unset SANDTABLE_NO_COMPILE",
            file=sys.stderr,
        )
        return 2
    if args.tracecheck:
        from .testkit import run_log_fuzz

        reporter = ProgressReporter(enabled=not args.quiet)
        report = run_log_fuzz(
            n_specs=args.specs,
            seed=str(args.seed),
            progress=lambda line: reporter.event("logfuzz", spec=line),
        )
        print(report.describe())
        return 0 if report.ok else 1
    if args.temporal:
        from .testkit import run_temporal_fuzz

        reporter = ProgressReporter(enabled=not args.quiet)
        report = run_temporal_fuzz(
            n_specs=args.specs,
            seed=str(args.seed),
            out_dir=args.out,
            serial_only=args.serial_only,
            progress=lambda line: reporter.event("temporal", spec=line),
        )
        print(report.describe())
        return 0 if report.ok else 1
    if args.replay:
        original, fresh = replay_artifact(args.replay)
        print(f"replaying artifact: {original.describe()}")
        if fresh:
            for item in fresh:
                print(f"  still disagrees: {item.describe()}")
            return 1
        print("  no longer reproduces")
        return 0

    registry = MetricsRegistry() if args.stats_out else None
    reporter = ProgressReporter(enabled=not args.quiet)

    def progress(index: int, generated, n_bad: int) -> None:
        reporter.event(
            "spec",
            seed=generated.seed,
            nodes=generated.params.n_nodes,
            verdict="ok" if n_bad == 0 else f"{n_bad}-DISAGREEMENTS",
        )

    report = run_differential(
        args.specs,
        seed=args.seed,
        out_dir=args.out,
        parallel=not args.serial_only,
        progress=progress,
        metrics=registry,
        fast=args.fast,
        por=args.por,
    )
    print(report.describe())
    if registry is not None:
        MetricsSink(args.stats_out, registry, meta={"command": "selftest"}).close()
        print(f"wrote metrics to {args.stats_out}")
    return 0 if report.ok else 1


def cmd_coverage(args: argparse.Namespace) -> int:
    try:
        sink = resolve_sink_path(args.path)
        coverage = coverage_from_sink(sink)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(coverage.render())
    if args.strict and not coverage.complete:
        return 1
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    if args.trace:
        # Replay a saved counterexample: no re-exploration, just the
        # deterministic implementation-level confirmation.
        try:
            violation = load_violation(args.trace)
        except RunDirError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.bug_id:
            bug = BUGS[args.bug_id]
            spec = bug.make_spec()
            system = bug.system
        elif args.system:
            spec = make_spec(args.system, args.nodes, args.bug, None)
            system = args.system
        else:
            print("replay --trace needs a bug_id or --system", file=sys.stderr)
            return 2
        checker = ConformanceChecker(
            spec, SYSTEMS[system], mapping_for(system, spec.nodes)
        )
        confirmation = BugReplayer(checker).confirm(violation)
        print(confirmation.describe())
        if confirmation.confirmed:
            print(violation.trace.summary())
        return 0 if confirmation.confirmed else 1
    if not args.bug_id:
        print("replay needs a bug_id (or --trace FILE)", file=sys.stderr)
        return 2
    bug = BUGS[args.bug_id]
    result = detect(
        bug, time_budget=args.time_budget, seed=args.seed, compiled=_compiled(args)
    )
    if not result.found:
        print(f"{bug.bug_id}: not found at the specification level")
        return 1
    spec = bug.make_spec()
    checker = ConformanceChecker(
        spec, SYSTEMS[bug.system], mapping_for(bug.system, spec.nodes)
    )
    confirmation = BugReplayer(checker).confirm(result.violation)
    print(confirmation.describe())
    if confirmation.confirmed:
        print(result.violation.trace.summary())
    return 0 if confirmation.confirmed else 1


def _parse_listen(text: str) -> tuple:
    """``HOST:PORT`` for ``--listen``; unlike worker addresses, port 0
    (ephemeral, kernel-assigned) is welcome here."""
    host, _, port_text = str(text).strip().rpartition(":")
    if not host:
        host, port_text = (port_text, "0") if not port_text.isdigit() else (
            "127.0.0.1",
            port_text,
        )
    try:
        port = int(port_text)
    except ValueError:
        raise WorkersError(f"bad --listen {text!r}: expected HOST:PORT") from None
    if not 0 <= port < 65536:
        raise WorkersError(f"bad --listen {text!r}: port out of range")
    return host, port


def cmd_worker(args: argparse.Namespace) -> int:
    from .dist.agent import WorkerAgent

    try:
        host, port = _parse_listen(args.listen)
    except WorkersError as exc:
        print(exc, file=sys.stderr)
        return 2
    log = (lambda msg: print(msg, file=sys.stderr)) if not args.quiet else None
    agent = WorkerAgent(
        host, port, max_sessions=1 if args.once else None, log=log
    )
    # The bound address on stdout first: scripts (and the CI smoke job)
    # read it to learn the ephemeral port.
    print(agent.address, flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        agent.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .dist.service import serve

    try:
        host, port = _parse_listen(args.listen)
    except WorkersError as exc:
        print(exc, file=sys.stderr)
        return 2
    log = (lambda msg: print(msg, file=sys.stderr)) if not args.quiet else None
    server = serve(host, port, args.data_dir, log=log)
    print(server.url, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .dist.client import ServiceClient, ServiceError
    from .dist.specref import SpecRefError, system_ref

    try:
        ref = system_ref(args.system, args.nodes, args.bug, args.invariant)
    except SpecRefError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = {"max_states": args.max_states, "time_budget": args.time_budget}
    if args.workers is not None:
        config["workers"] = args.workers
    if args.worker:
        config["worker_addrs"] = list(args.worker)
    for flag in ("symmetry", "fast", "por"):
        if getattr(args, flag):
            config[flag] = True
    client = ServiceClient(args.server)
    try:
        record = client.submit(ref, config)
        job_id = record["id"]
        print(f"submitted {job_id} to {client.base_url}")
        if not args.watch:
            return 0
        offset = 0
        while True:
            status = client.status(job_id)
            records, offset = client.metrics(job_id, offset)
            for item in records:
                stats = item.get("stats") or {}
                if "distinct_states" in stats:
                    print(
                        f"  [{item.get('event')}] {stats['distinct_states']}"
                        f" states, {stats.get('transitions', 0)} transitions,"
                        f" depth {stats.get('max_depth', 0)}",
                        flush=True,
                    )
            if not status.get("running") and status.get("status") != "starting":
                break
            time.sleep(args.poll)
        final = status.get("status")
        print(f"{job_id}: {final}")
        if final == "violation":
            trace = client.trace(job_id)
            print(
                f"  {trace.get('invariant')} violated at depth"
                f" {trace.get('depth')}"
            )
            return 1
        if final in ("complete", "stopped"):
            # complete = space exhausted; stopped = a budget hit first.
            return 0
        if status.get("error"):
            print(status["error"], file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(exc, file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sandtable",
        description="Scalable distributed system model checking with "
        "specification-level state exploration (SandTable reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("bugs", help="list the Table 2 bug registry").set_defaults(
        fn=cmd_bugs
    )

    def common(p):
        p.add_argument("--system", required=True, choices=sorted(SPEC_CLASSES))
        p.add_argument("--nodes", type=int, default=3)
        p.add_argument("--bug", action="append", default=[], help="seed a bug flag")
        p.add_argument("--invariant", help="check only this invariant")
        p.add_argument("--time-budget", type=float, default=60.0)
        p.add_argument("--seed", type=int, default=0)
        no_compile(p)

    def no_compile(p):
        p.add_argument(
            "--no-compile",
            action="store_true",
            help="run the interpreted pipeline (no compiled spec closures, "
            "no delta codec); same as SANDTABLE_NO_COMPILE=1",
        )

    def stats_args(p):
        p.add_argument(
            "--stats",
            action="store_true",
            help="live progress lines plus an end-of-run action-coverage report",
        )
        p.add_argument(
            "--stats-out",
            metavar="FILE",
            help="also append JSONL metrics snapshots to FILE (implies --stats)",
        )

    check = sub.add_parser("check", help="BFS model checking")
    common(check)
    check.add_argument("--max-states", type=int, default=1_000_000)
    check.add_argument("--symmetry", action="store_true")
    check.add_argument(
        "--fast",
        action="store_true",
        help="traceless fingerprint-only store (~16 bytes/state); a violation's"
        " counterexample is reconstructed by an automatic bounded re-search",
    )
    check.add_argument(
        "--por",
        action="store_true",
        help="partial-order reduction: statically prune actions proven"
        " independent by their declared read/write sets (needs the compiled"
        " pipeline)",
    )
    check.add_argument(
        "--workers",
        type=_workers_value,
        default=None,
        help="parallel BFS worker processes (fingerprint-sharded; 1 = serial;"
        " default: $SANDTABLE_WORKERS or 1)",
    )
    check.add_argument(
        "--worker",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="distribute shards to these sandtable worker agents over TCP"
        " (repeatable; extra addresses past --workers are warm spares)",
    )
    check.add_argument(
        "--run-dir",
        help="durable run directory: disk-backed store + crash-safe checkpoints",
    )
    check.add_argument(
        "--resume",
        action="store_true",
        help="continue the checkpointed run in --run-dir",
    )
    check.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="SECONDS",
        help="checkpoint cadence in seconds (default 60 with --run-dir)",
    )
    check.add_argument(
        "--checkpoint-states",
        type=int,
        default=None,
        metavar="N",
        help="also checkpoint every N newly recorded states",
    )
    check.add_argument(
        "--out", help="save the violation trace as a replayable JSON artifact"
    )
    check.add_argument(
        "--temporal",
        action="append",
        default=[],
        metavar="NAME",
        choices=PROPERTY_NAMES,
        help="also check this temporal property over the explored graph:"
        " lasso (prefix + fair cycle) detection under the spec's"
        f" weak-fairness declarations (repeatable; one of: "
        f"{', '.join(PROPERTY_NAMES)})",
    )
    stats_args(check)
    check.set_defaults(fn=cmd_check)

    liveness = sub.add_parser(
        "check-liveness",
        help="post-hoc lasso detection over a finished durable run's graph",
    )
    liveness.add_argument(
        "run_dir", help="a finished `sandtable check --run-dir` directory"
    )
    liveness.add_argument("--system", required=True, choices=sorted(SPEC_CLASSES))
    liveness.add_argument("--nodes", type=int, default=3)
    liveness.add_argument("--bug", action="append", default=[], help="seed a bug flag")
    liveness.add_argument(
        "--temporal",
        action="append",
        default=[],
        metavar="NAME",
        choices=PROPERTY_NAMES,
        help="property to check (repeatable; default: all of"
        f" {', '.join(PROPERTY_NAMES)})",
    )
    no_compile(liveness)
    stats_args(liveness)
    liveness.set_defaults(fn=cmd_check_liveness)

    sim = sub.add_parser("simulate", help="random-walk exploration")
    common(sim)
    sim.add_argument("--walks", type=int, default=10_000)
    sim.add_argument("--depth", type=int, default=40)
    stats_args(sim)
    sim.set_defaults(fn=cmd_simulate)

    conf = sub.add_parser("conformance", help="spec vs. implementation")
    common(conf)
    conf.add_argument(
        "--impl-bug",
        action="append",
        default=None,
        help="seed this bug only in the implementation",
    )
    conf.add_argument("--quiet-period", type=float, default=10.0)
    conf.add_argument("--max-traces", type=int, default=None)
    conf.add_argument(
        "--emit-log",
        metavar="FILE",
        help="dump the last replay's event log (JSONL) for validate-trace",
    )
    conf.set_defaults(fn=cmd_conformance)

    vt = sub.add_parser(
        "validate-trace",
        help="check a runtime-emitted event log against the spec",
    )
    vt.add_argument("log", help="JSONL event log (see repro.tracecheck.logfmt)")
    vt.add_argument(
        "--system",
        choices=sorted(SPEC_CLASSES),
        help="spec to validate against (default: the log header's)",
    )
    vt.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="cluster size (default: the log header's node count)",
    )
    vt.add_argument("--bug", action="append", default=[], help="seed a bug flag")
    vt.add_argument(
        "--stutter",
        type=int,
        default=0,
        metavar="N",
        help="allow up to N unobserved internal spec steps between events",
    )
    vt.add_argument(
        "--max-frontier",
        type=int,
        default=1024,
        metavar="N",
        help="breadth cap: candidate spec states kept per log event",
    )
    vt.add_argument(
        "--run-dir",
        help="create a durable run directory and save the validation report"
        " as artifacts/validation.json",
    )
    vt.add_argument("--out", help="save the validation report as JSON")
    no_compile(vt)
    stats_args(vt)
    vt.set_defaults(fn=cmd_validate_trace)

    det = sub.add_parser("detect", help="run one registry bug detection")
    no_compile(det)
    det.add_argument("bug_id", choices=sorted(BUGS))
    det.add_argument("--time-budget", type=float, default=120.0)
    det.add_argument("--seed", type=int, default=0)
    det.add_argument(
        "--out", help="save the violation trace as a replayable JSON artifact"
    )
    stats_args(det)
    det.set_defaults(fn=cmd_detect)

    cov = sub.add_parser(
        "coverage",
        help="per-action coverage report from a run's metrics sink",
    )
    cov.add_argument(
        "path",
        help="a durable run directory (with metrics.jsonl) or a --stats-out file",
    )
    cov.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any action never fired",
    )
    cov.set_defaults(fn=cmd_coverage)

    rep = sub.add_parser("replay", help="detect and confirm at the impl level")
    no_compile(rep)
    rep.add_argument("bug_id", nargs="?", choices=sorted(BUGS))
    rep.add_argument(
        "--trace",
        help="replay this saved trace artifact instead of re-exploring",
    )
    rep.add_argument(
        "--system",
        choices=sorted(SPEC_CLASSES),
        help="spec for --trace replay when no bug_id is given",
    )
    rep.add_argument("--nodes", type=int, default=3)
    rep.add_argument("--bug", action="append", default=[], help="seed a bug flag")
    rep.add_argument("--time-budget", type=float, default=120.0)
    rep.add_argument("--seed", type=int, default=0)
    rep.set_defaults(fn=cmd_replay)

    selftest = sub.add_parser(
        "selftest",
        help="differentially fuzz the checker itself against a naive oracle",
    )
    selftest.add_argument("--specs", type=int, default=20, help="random specs to fuzz")
    selftest.add_argument("--seed", default="0", help="sweep seed (any string)")
    selftest.add_argument(
        "--out", help="write disagreement artifacts (replayable JSON) here"
    )
    selftest.add_argument(
        "--serial-only",
        action="store_true",
        help="skip the parallel-worker configurations",
    )
    selftest.add_argument(
        "--replay", metavar="ARTIFACT", help="re-run one saved disagreement artifact"
    )
    selftest.add_argument(
        "--tracecheck",
        action="store_true",
        help="grade the trace validator instead: random-walk logs with"
        " planted divergences at oracle-known indices (repro.testkit.genlog)",
    )
    selftest.add_argument(
        "--temporal",
        action="store_true",
        help="grade the lasso finder instead: random specs whose fair-cycle"
        " verdicts, minimal prefixes, and lasso traces are cross-checked"
        " against a naive reference oracle (repro.testkit.gentemporal)",
    )
    selftest.add_argument(
        "--fast",
        action="store_true",
        help="force the traceless fast store onto every compatible matrix cell",
    )
    selftest.add_argument(
        "--por",
        action="store_true",
        help="force partial-order reduction onto every compiled matrix cell",
    )
    selftest.add_argument("--quiet", action="store_true", help="summary line only")
    selftest.add_argument(
        "--stats-out",
        metavar="FILE",
        help="append sweep-wide JSONL metrics snapshots to FILE",
    )
    selftest.set_defaults(fn=cmd_selftest)

    worker = sub.add_parser(
        "worker",
        help="serve BFS shards to remote masters over TCP (repro.dist)",
    )
    worker.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address; port 0 picks an ephemeral port"
        " (printed on stdout)",
    )
    worker.add_argument(
        "--once", action="store_true", help="serve one master session, then exit"
    )
    worker.add_argument("--quiet", action="store_true", help="no session log")
    worker.set_defaults(fn=cmd_worker)

    srv = sub.add_parser(
        "serve",
        help="multi-tenant checking service: POST jobs, GET progress/traces",
    )
    srv.add_argument(
        "--listen",
        default="127.0.0.1:8800",
        metavar="HOST:PORT",
        help="bind address (port 0 = ephemeral; URL printed on stdout)",
    )
    srv.add_argument(
        "--data-dir",
        default="sandtable-jobs",
        help="root for per-job durable run directories",
    )
    srv.add_argument("--quiet", action="store_true", help="no request log")
    srv.set_defaults(fn=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a check to a sandtable serve instance"
    )
    submit.add_argument("--server", required=True, help="service URL (host:port)")
    submit.add_argument("--system", required=True, choices=sorted(SPEC_CLASSES))
    submit.add_argument("--nodes", type=int, default=3)
    submit.add_argument("--bug", action="append", default=[], help="seed a bug flag")
    submit.add_argument("--invariant", help="check only this invariant")
    submit.add_argument("--max-states", type=int, default=1_000_000)
    submit.add_argument("--time-budget", type=float, default=60.0)
    submit.add_argument("--symmetry", action="store_true")
    submit.add_argument("--fast", action="store_true")
    submit.add_argument("--por", action="store_true")
    submit.add_argument(
        "--workers", type=_workers_value, default=None, help="parallel workers"
    )
    submit.add_argument(
        "--worker",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="run the job against these remote worker agents (repeatable)",
    )
    submit.add_argument(
        "--watch",
        action="store_true",
        help="poll progress until the job finishes; exit 1 on violation",
    )
    submit.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS", help="watch cadence"
    )
    submit.set_defaults(fn=cmd_submit)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
