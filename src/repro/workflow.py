"""The end-to-end SandTable workflow (Figure 1).

One call wires the four phases together for a target system:

1. **Conformance checking** (§3.2) — random-walk traces are replayed
   against the implementation until the quiet period passes; any
   discrepancy aborts the run with the triggering event sequence.
2. **Constraint selection** (§3.3, Algorithm 1) — candidate budget
   constraints are ranked by random-walk coverage metrics, and the top
   ones are kept for checking.
3. **Model checking** — BFS explores each selected constraint's space
   until a safety violation, exhaustion, or budget expiry.
4. **Bug confirmation** (§3.4) — each violation's trace is replayed
   deterministically at the implementation level; only confirmed
   violations are reported as bugs.

The result object carries everything a bug report needs, including the
Markdown rendering from :mod:`repro.conformance.report`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Mapping, Optional, Sequence

from .conformance import (
    BugConfirmation,
    BugReplayer,
    ConformanceChecker,
    ConformanceReport,
    mapping_for,
)
from .conformance.report import BugReport
from .core import bfs_explore, rank_constraints
from .core.engine import SearchResult
from .core.ranking import RankedConstraints
from .systems import SYSTEMS

__all__ = ["WorkflowResult", "CheckOutcome", "run_workflow"]


@dataclasses.dataclass
class CheckOutcome:
    """Model checking + confirmation for one selected constraint."""

    constraint: Mapping[str, Any]
    exploration: SearchResult
    confirmation: Optional[BugConfirmation] = None
    #: per-property :class:`repro.temporal.TemporalResult`, when the
    #: workflow was asked to check temporal properties
    temporal: List[Any] = dataclasses.field(default_factory=list)

    @property
    def found_bug(self) -> bool:
        return self.confirmation is not None and self.confirmation.confirmed

    @property
    def found_lasso(self) -> bool:
        return any(t.lasso is not None for t in self.temporal)


@dataclasses.dataclass
class WorkflowResult:
    """Everything one SandTable run produced."""

    system: str
    conformance: ConformanceReport
    ranking: Optional[RankedConstraints]
    checks: List[CheckOutcome]

    @property
    def passed_conformance(self) -> bool:
        return self.conformance.passed

    @property
    def confirmed_bugs(self) -> List[CheckOutcome]:
        return [c for c in self.checks if c.found_bug]

    def bug_reports(self, consequence: str = "", watch: Sequence[str] = ()) -> List[BugReport]:
        """Markdown-ready reports for every confirmed bug."""
        reports = []
        for outcome in self.confirmed_bugs:
            violation = outcome.confirmation.violation
            reports.append(
                BugReport(
                    title=f"{self.system}: {violation.invariant} violated",
                    system=self.system,
                    consequence=consequence or violation.invariant,
                    violation=violation,
                    confirmation=outcome.confirmation,
                    watch=watch,
                )
            )
        return reports

    def summary(self) -> str:
        lines = [
            f"SandTable workflow for {self.system}:",
            f"  conformance: {'PASSED' if self.passed_conformance else 'FAILED'}"
            f" ({self.conformance.traces_checked} traces)",
        ]
        if not self.passed_conformance:
            failure = self.conformance.failure
            reason = (
                failure.crash
                or failure.engine_error
                or failure.resource_leak
                or (failure.discrepancies and failure.discrepancies[0].describe())
            )
            lines.append(f"  discrepancy: {reason}")
            return "\n".join(lines)
        for outcome in self.checks:
            stats = outcome.exploration.stats
            verdict = "clean"
            if outcome.exploration.found_violation:
                verdict = outcome.exploration.violation.invariant
                if outcome.confirmation is not None:
                    verdict += (
                        " (CONFIRMED)" if outcome.confirmation.confirmed
                        else " (not reproduced)"
                    )
            lines.append(
                f"  {dict(outcome.constraint)}: {stats.describe()},"
                f" stop: {outcome.exploration.stop_reason}, {verdict}"
            )
            for tres in outcome.temporal:
                lines.append(f"    {tres.describe()}")
        return "\n".join(lines)


def run_workflow(
    system: str,
    spec_factory: Callable[[Mapping[str, Any]], Any],
    constraints: Sequence[Mapping[str, Any]],
    impl_bugs: Optional[Sequence[str]] = None,
    conformance_quiet: float = 3.0,
    conformance_traces: Optional[int] = 100,
    rank_walks: int = 30,
    top_constraints: int = 2,
    max_states: int = 200_000,
    time_budget: float = 60.0,
    seed: int = 0,
    workers: int = 1,
    run_dir: Optional[Any] = None,
    metrics: Optional[Any] = None,
    temporal: Sequence[str] = (),
) -> WorkflowResult:
    """Run the Figure 1 workflow for one target system.

    ``spec_factory(constraint)`` builds the spec for a candidate budget
    constraint; the first constraint is used for the conformance phase.
    ``temporal`` names properties from :mod:`repro.temporal` to check
    over each explored graph after the safety pass (serial runs only —
    the lasso search needs the in-memory state store); any lasso found
    is reported per check and saved as a replayable artifact in durable
    runs.
    With ``run_dir`` the workflow is durable: the conformance report,
    every violation trace (as a replayable artifact), the confirmed-bug
    Markdown reports, the summary, and a metrics sink
    (``artifacts/metrics.jsonl``) land in the run directory.  Durable
    workflows are instrumented by default; pass ``metrics`` to supply
    (and keep) your own :class:`~repro.obs.metrics.MetricsRegistry`.
    """
    factory = SYSTEMS[system]
    rd = None
    if run_dir is not None and metrics is None:
        from .obs import MetricsRegistry  # instrument durable runs by default

        metrics = MetricsRegistry()
    if run_dir is not None:
        from .persist import RunDir  # local import: persist imports core

        rd = RunDir.create(
            run_dir,
            config={
                "workflow": system,
                "seed": seed,
                "workers": workers,
                "max_states": max_states,
                "time_budget": time_budget,
            },
        )

    # -- phase 1: conformance checking -------------------------------------
    conformance_spec = spec_factory(constraints[0])
    checker = ConformanceChecker(
        conformance_spec,
        factory,
        mapping_for(system, conformance_spec.nodes),
        impl_bugs=impl_bugs,
    )
    conformance = checker.run(
        quiet_period=conformance_quiet, max_traces=conformance_traces, seed=seed
    )
    if not conformance.passed:
        result = WorkflowResult(system, conformance, None, [])
        _save_workflow_artifacts(rd, result, metrics)
        return result

    # -- phase 2: constraint selection (Algorithm 1) ------------------------
    ranked = rank_constraints(
        lambda _config, constraint: spec_factory(constraint),
        configs=[{}],
        constraints=constraints,
        n_walks=rank_walks,
        seed=seed,
    )[0]

    # -- phases 3 and 4: model checking + confirmation ----------------------
    if temporal and workers > 1:
        raise ValueError(
            "temporal checking in the workflow needs the serial explorer's"
            " in-memory state graph; run with workers=1"
        )
    checks: List[CheckOutcome] = []
    for score in ranked.top(top_constraints):
        spec = spec_factory(score.constraint)
        explore_extra: dict = {}
        temporal_store = None
        if temporal:
            from .core.engine import CompactStore  # local: keep import light

            # Keep exploring past safety violations: the lasso search
            # needs the full budgeted census, and the first violation is
            # still collected and confirmed below.
            temporal_store = CompactStore()
            explore_extra = {"store": temporal_store, "stop_on_violation": False}
        exploration = bfs_explore(
            spec,
            max_states=max_states,
            time_budget=time_budget,
            workers=workers,
            metrics=metrics,
            **explore_extra,
        )
        confirmation = None
        if exploration.found_violation:
            bug_checker = ConformanceChecker(
                spec, factory, mapping_for(system, spec.nodes), impl_bugs=impl_bugs
            )
            confirmation = BugReplayer(bug_checker, metrics=metrics).confirm(
                exploration.violation
            )
        temporal_results: List[Any] = []
        if temporal:
            from .temporal import check_graph, materialize_graph, resolve_property

            graph = materialize_graph(spec, temporal_store)
            temporal_results = [
                check_graph(graph, resolve_property(spec, name), metrics=metrics)
                for name in temporal
            ]
        checks.append(
            CheckOutcome(score.constraint, exploration, confirmation, temporal_results)
        )
    result = WorkflowResult(system, conformance, ranked, checks)
    _save_workflow_artifacts(rd, result, metrics)
    return result


def _save_workflow_artifacts(
    rd: Optional[Any], result: WorkflowResult, metrics: Optional[Any] = None
) -> None:
    """Write a workflow's durable leftovers into its run directory."""
    if rd is None:
        return
    from .persist import save_lasso, save_violation, write_text_artifact

    if metrics is not None:
        from .obs import MetricsSink

        MetricsSink(
            rd.artifact_path("metrics.jsonl"),
            metrics,
            meta={"workflow": result.system},
        ).close()

    write_text_artifact(rd.artifact_path("summary.md"), result.summary() + "\n")
    conformance = result.conformance
    if not result.passed_conformance and conformance.failure is not None:
        write_text_artifact(
            rd.artifact_path("conformance-failure.md"),
            "# Conformance failure\n\n"
            + "\n".join(d.describe() for d in conformance.failure.discrepancies)
            + "\n\n"
            + conformance.failure.trace.summary()
            + "\n",
        )
        rd.update_manifest(status="conformance-failed")
        return
    for index, outcome in enumerate(result.checks):
        if outcome.exploration.found_violation:
            save_violation(
                rd.artifact_path(f"check-{index}-violation.json"),
                outcome.exploration.violation,
                constraint=dict(outcome.constraint),
            )
        for tres in outcome.temporal:
            if tres.lasso is not None:
                save_lasso(
                    rd.artifact_path(f"check-{index}-lasso-{tres.property.name}.json"),
                    tres.lasso,
                    tres.property.name,
                    constraint=dict(outcome.constraint),
                )
    for index, report in enumerate(result.bug_reports()):
        write_text_artifact(
            rd.artifact_path(f"bug-report-{index}.md"), report.to_markdown()
        )
    rd.update_manifest(
        status="bugs-confirmed" if result.confirmed_bugs else "complete"
    )
