"""Specification trace → engine commands (§4.1).

Message-delivery and failure events convert automatically; client
requests and system-specific actions use per-system hooks (the paper has
users supply shell commands and timeout durations — here, the ``client_op``
and ``extra`` hooks).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core.state import Rec, thaw
from ..core.trace import Trace, TraceStep
from ..runtime import commands as C
from ..runtime.commands import Command

__all__ = ["TraceConverter", "ConversionError"]


class ConversionError(Exception):
    """A trace event has no engine-command equivalent."""


def _default_client_op(step: TraceStep) -> Any:
    if step.action == "ClientRead":
        return {"op": "get"}
    return {"op": "put", "value": step.args[1]}


class TraceConverter:
    """Converts spec trace events into deterministic-execution commands."""

    def __init__(
        self,
        network_kind: str = "tcp",
        client_op: Optional[Callable[[TraceStep], Any]] = None,
        extra: Optional[Dict[str, Callable[[TraceStep], Command]]] = None,
    ):
        self.network_kind = network_kind
        self.client_op = client_op or _default_client_op
        self.extra = dict(extra or {})

    def convert_step(self, step: TraceStep) -> Command:
        action = step.action
        if action in self.extra:
            return self.extra[action](step)
        if action == "ReceiveMessage":
            src, dst = step.args[0], step.args[1]
            if self.network_kind == "udp":
                return C.deliver(src, dst, payload=_payload(step.args[2]))
            return C.deliver(src, dst)
        if action == "ElectionTimeout":
            return C.timeout(step.args[0], "election")
        if action == "HeartbeatTimeout":
            return C.timeout(step.args[0], "heartbeat")
        if action in ("ClientRequest", "ClientRead"):
            return C.client(step.args[0], self.client_op(step))
        if action == "NodeCrash":
            return C.crash(step.args[0])
        if action == "NodeRestart":
            return C.restart(step.args[0])
        if action == "PartitionStart":
            return C.partition(tuple(step.args[0]))
        if action == "PartitionHeal":
            return C.heal()
        if action == "DropMessage":
            return C.drop(step.args[0], step.args[1], payload=_payload(step.args[2]))
        if action == "DuplicateMessage":
            return C.duplicate(step.args[0], step.args[1], payload=_payload(step.args[2]))
        if action == "CompactLog":
            return C.compact(step.args[0])
        raise ConversionError(f"no conversion for action {action!r}")

    def convert(self, trace: Trace) -> List[Command]:
        return [self.convert_step(step) for step in trace]


def _payload(message: Any) -> Any:
    if isinstance(message, Rec):
        return thaw(message)
    return message
