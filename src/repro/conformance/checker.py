"""Iterative conformance checking (§3.2).

The checker randomly explores the specification, replays each trace
against the implementation through the deterministic execution engine,
and compares the two states after every event.  A divergence — a
differing variable, a node crash the spec did not predict, or an event
the implementation cannot execute — is reported with the event sequence
that leads to it, for the developer to fix the specification (or file
the implementation bug) and rerun.

The stopping rule is the paper's: keep exploring until no discrepancy is
found for a configured period (they use 30 minutes; tests scale it down).
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Callable, List, Optional, Sequence

from ..core.engine import action_kinds
from ..core.simulation import random_walk
from ..core.spec import Spec
from ..core.trace import Trace
from ..runtime.engine import EngineError, ExecutionEngine
from ..runtime.latency import LatencyModel
from .converter import TraceConverter
from .mapping import ConformanceMapping, Discrepancy

__all__ = ["ReplayReport", "ConformanceReport", "ConformanceChecker"]


@dataclasses.dataclass
class ReplayReport:
    """Outcome of replaying one specification trace."""

    trace: Trace
    steps_executed: int
    discrepancies: List[Discrepancy]
    crash: Optional[str] = None  # description of an impl-level crash
    engine_error: Optional[str] = None
    resource_leak: Optional[str] = None
    impl_seconds: float = 0.0

    @property
    def conforms(self) -> bool:
        return (
            not self.discrepancies
            and self.crash is None
            and self.engine_error is None
            and self.resource_leak is None
        )


@dataclasses.dataclass
class ConformanceReport:
    """Outcome of an iterative conformance-checking session."""

    traces_checked: int
    elapsed: float
    failure: Optional[ReplayReport] = None

    @property
    def passed(self) -> bool:
        return self.failure is None


class ConformanceChecker:
    """Replays spec traces against the implementation and compares states."""

    def __init__(
        self,
        spec: Spec,
        factory: Callable,
        mapping: ConformanceMapping,
        impl_bugs: Optional[Sequence[str]] = None,
        converter: Optional[TraceConverter] = None,
        latency: Optional[LatencyModel] = None,
        compare_every_step: bool = True,
        resource_limits: Optional[dict] = None,
        emitter_factory: Optional[Callable] = None,
    ):
        self.spec = spec
        self.factory = factory
        self.mapping = mapping
        self.impl_bugs = tuple(impl_bugs if impl_bugs is not None else sorted(spec.bugs))
        self.converter = converter or TraceConverter(network_kind=spec.net.kind)
        self.latency = latency or LatencyModel()
        self.compare_every_step = compare_every_step
        # A correct implementation retains no handled messages; a leak
        # (WRaft#6) shows up as an ever-growing retained count.
        self.resource_limits = dict(resource_limits or {"retained_messages": 0})
        # Optional zero-arg factory building a trace-validation log
        # emitter (``repro.tracecheck.RuntimeLogEmitter``) per replay;
        # the most recent one is kept on ``last_emitter`` so callers can
        # dump the last replay's (e.g. the failing replay's) event log.
        self.emitter_factory = emitter_factory
        self.last_emitter = None

    def _new_engine(self) -> ExecutionEngine:
        emitter = None
        if self.emitter_factory is not None:
            emitter = self.last_emitter = self.emitter_factory()
        return ExecutionEngine(
            self.factory,
            self.spec.nodes,
            network_kind=self.spec.net.kind,
            bugs=self.impl_bugs,
            latency=self.latency,
            emitter=emitter,
        )

    # ------------------------------------------------------------------
    # replaying one trace
    # ------------------------------------------------------------------

    def replay(self, trace: Trace) -> ReplayReport:
        """Replay ``trace`` and compare states after each event."""
        engine = self._new_engine()
        executed = 0
        for index, step in enumerate(trace):
            command = self.converter.convert_step(step)
            try:
                result = engine.execute(command)
            except EngineError as exc:
                # The event was enabled in the spec but not in the
                # implementation — itself a conformance discrepancy.
                return ReplayReport(
                    trace,
                    executed,
                    [],
                    engine_error=f"step {index} ({step.label}): {exc}",
                    impl_seconds=engine.sim_seconds,
                )
            executed += 1
            if result.crashed:
                # Unless the spec also thinks the node just died, an
                # escaping exception is a by-product implementation bug.
                report = self._compare(step.state, engine, index, step.label)
                report_crash = str(result.crash)
                return ReplayReport(
                    trace,
                    executed,
                    report,
                    crash=report_crash,
                    impl_seconds=engine.sim_seconds,
                )
            if self.compare_every_step or index == len(trace) - 1:
                discrepancies = self._compare(step.state, engine, index, step.label)
                if discrepancies:
                    return ReplayReport(
                        trace, executed, discrepancies, impl_seconds=engine.sim_seconds
                    )
        leak = self._check_resources(engine)
        return ReplayReport(
            trace, executed, [], resource_leak=leak, impl_seconds=engine.sim_seconds
        )

    def _check_resources(self, engine: ExecutionEngine) -> Optional[str]:
        for node, stats in engine.resource_stats().items():
            for metric, value in stats.items():
                limit = self.resource_limits.get(metric)
                if limit is not None and value > limit:
                    return f"{node}: {metric}={value} exceeds limit {limit}"
        return None

    def _compare(
        self, spec_state, engine: ExecutionEngine, index: int, label: str
    ) -> List[Discrepancy]:
        impl_state = engine.frozen_cluster_state()
        found = self.mapping.discrepancies(spec_state, impl_state)
        for discrepancy in found:
            discrepancy.step_index = index
            discrepancy.step_label = label
        return found

    # ------------------------------------------------------------------
    # the iterative loop (§3.2)
    # ------------------------------------------------------------------

    def run(
        self,
        quiet_period: float = 5.0,
        max_traces: Optional[int] = None,
        max_depth: int = 30,
        seed: int = 0,
    ) -> ConformanceReport:
        """Random-walk the spec and replay until ``quiet_period`` seconds
        pass without a discrepancy (or ``max_traces`` is reached)."""
        rng = random.Random(seed)
        started = time.monotonic()
        checked = 0
        # Walk-invariant setup, hoisted out of the per-trace loop.
        inits = list(self.spec.init_states())
        kinds = action_kinds(self.spec)
        while True:
            if max_traces is not None and checked >= max_traces:
                break
            if time.monotonic() - started > quiet_period:
                break
            walk = random_walk(
                self.spec,
                rng,
                max_depth=max_depth,
                check_invariants=False,
                init_states=inits,
                event_kinds=kinds,
            )
            report = self.replay(walk.trace)
            checked += 1
            if not report.conforms:
                return ConformanceReport(
                    checked, time.monotonic() - started, failure=report
                )
        return ConformanceReport(checked, time.monotonic() - started)
