"""Bug report generation.

The paper stresses that having the bug trace at *both* levels is what
makes root-causing practical (§5.1): the specification trace gives the
abstract event interleaving, the implementation replay gives the
concrete states.  This module renders a confirmed bug into a Markdown
report: metadata, the violated property, the event timeline annotated
with per-step key-variable values, and the implementation verdict.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..core.state import Rec, thaw
from ..core.violation import Violation
from .replayer import BugConfirmation

__all__ = ["BugReport", "render_report"]


@dataclasses.dataclass
class BugReport:
    """Everything a filed bug carries."""

    title: str
    system: str
    consequence: str
    violation: Violation
    confirmation: Optional[BugConfirmation] = None
    watch: Sequence[str] = ()  # spec variables to annotate along the trace
    notes: str = ""

    def to_markdown(self) -> str:
        return render_report(self)


def _fmt_value(value) -> str:
    plain = thaw(value) if isinstance(value, (Rec, tuple, frozenset)) else value
    text = repr(plain)
    return text if len(text) <= 60 else text[:57] + "..."


def _changed_watch_values(
    watch: Sequence[str], previous: Optional[Rec], state: Rec
) -> List[str]:
    notes = []
    for variable in watch:
        if variable not in state:
            continue
        now = state[variable]
        before = previous[variable] if previous is not None and variable in previous else None
        if previous is None or before != now:
            notes.append(f"{variable}={_fmt_value(now)}")
    return notes


def render_report(report: BugReport) -> str:
    violation = report.violation
    lines = [
        f"# {report.title}",
        "",
        f"* **System:** {report.system}",
        f"* **Consequence:** {report.consequence}",
        f"* **Violated property:** `{violation.invariant}` ({violation.kind})",
        f"* **Trace depth:** {violation.depth} events",
    ]
    if report.confirmation is not None:
        verdict = (
            "confirmed by deterministic replay"
            if report.confirmation.confirmed
            else "NOT reproduced at the implementation level"
        )
        lines.append(f"* **Implementation:** {verdict}")
    if report.notes:
        lines += ["", report.notes.strip()]

    lines += ["", "## Event sequence", ""]
    previous: Optional[Rec] = None
    for index, step in enumerate(violation.trace, start=1):
        annotations = _changed_watch_values(report.watch, previous, step.state)
        suffix = f"  — {'; '.join(annotations)}" if annotations else ""
        lines.append(f"{index:3d}. `{step.label[:100]}`{suffix}")
        previous = step.state

    if report.confirmation is not None and not report.confirmation.confirmed:
        lines += ["", "## Replay divergence", ""]
        replay = report.confirmation.replay
        if replay.engine_error:
            lines.append(f"* {replay.engine_error}")
        if replay.crash:
            lines.append(f"* implementation crash: {replay.crash}")
        for discrepancy in replay.discrepancies:
            lines.append(f"* {discrepancy.describe()[:160]}")

    lines += [
        "",
        "## Final state",
        "",
        "```",
    ]
    final = violation.trace.final_state
    for key in sorted(final, key=str):
        if report.watch and key not in report.watch:
            continue
        lines.append(f"{key} = {_fmt_value(final[key])}")
    if not report.watch:
        lines.append("(pass watch= to include variables)")
    lines.append("```")
    return "\n".join(lines) + "\n"
