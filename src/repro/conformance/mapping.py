"""Spec-variable ↔ implementation-state mapping (§3.2, §A.4).

After every replayed event the conformance checker compares the
specification state with the implementation state.  The mapping defines
*what* is compared:

* per-node protocol variables (role, terms, logs, indices, ...) against
  each alive node's ``extract_state()``;
* liveness (``alive``) against the hosts' process status;
* network variables against the proxy snapshot (message counts and
  contents, partition status) — "the network and node environment is
  managed by SandTable and can be compared directly".

Model-internal bookkeeping (event counters, oracle history variables)
has no implementation counterpart and is skipped.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.state import Rec, freeze, thaw

__all__ = ["Discrepancy", "ConformanceMapping", "mapping_for"]

#: spec variables with no implementation counterpart
DEFAULT_SKIP = frozenset({"eventCounter", "ackedWrites", "readCount", "txnCounter"})


@dataclasses.dataclass
class Discrepancy:
    """One detected divergence between the two levels."""

    variable: str
    node: Optional[str]
    spec_value: Any
    impl_value: Any
    step_index: int = -1
    step_label: str = ""

    def describe(self) -> str:
        where = f"{self.variable}[{self.node}]" if self.node else self.variable
        prefix = (
            f"after step {self.step_index} ({self.step_label}): "
            if self.step_index >= 0
            else ""
        )
        return (
            f"{prefix}{where} diverged:"
            f" spec={_render(self.spec_value)} impl={_render(self.impl_value)}"
        )


def _render(value: Any) -> str:
    try:
        return repr(thaw(value))
    except TypeError:
        return repr(value)


class ConformanceMapping:
    """What to compare for one target system."""

    def __init__(
        self,
        nodes: Sequence[str],
        per_node_vars: Sequence[str],
        skip: Sequence[str] = (),
        compare_network: bool = True,
    ):
        self.nodes = tuple(nodes)
        self.per_node_vars = tuple(per_node_vars)
        self.skip = DEFAULT_SKIP | frozenset(skip)
        self.compare_network = compare_network

    def discrepancies(self, spec_state: Rec, impl_state: Rec) -> List[Discrepancy]:
        """All divergences between a spec state and an engine snapshot."""
        found: List[Discrepancy] = []

        for node in self.nodes:
            spec_alive = spec_state["alive"][node]
            impl_alive = impl_state["alive"][node]
            if spec_alive != impl_alive:
                found.append(Discrepancy("alive", node, spec_alive, impl_alive))

        impl_nodes = impl_state["nodes"]
        for node in self.nodes:
            if not spec_state["alive"][node] or node not in impl_nodes:
                continue  # a crashed node exposes no state
            impl_node = impl_nodes[node]
            for var in self.per_node_vars:
                if var in self.skip:
                    continue
                spec_value = spec_state[var][node]
                impl_value = impl_node.get(var, _MISSING)
                if impl_value is _MISSING:
                    found.append(Discrepancy(var, node, spec_value, "<missing>"))
                elif freeze_eq(spec_value, impl_value):
                    continue
                else:
                    found.append(Discrepancy(var, node, spec_value, impl_value))

        if self.compare_network:
            for var in ("netMsgs", "netDisconnected"):
                if not freeze_eq(spec_state[var], impl_state[var]):
                    found.append(
                        Discrepancy(var, None, spec_state[var], impl_state[var])
                    )
        return found


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()


def freeze_eq(spec_value: Any, impl_value: Any) -> bool:
    """Structural equality after freezing the implementation value."""
    try:
        return spec_value == freeze(impl_value)
    except TypeError:
        return False


#: the per-node variables each system exposes for comparison
RAFT_BASE_VARS: Tuple[str, ...] = (
    "role",
    "currentTerm",
    "votedFor",
    "log",
    "commitIndex",
    "nextIndex",
    "matchIndex",
    "votesGranted",
)

SYSTEM_VARS: Dict[str, Tuple[str, ...]] = {
    "pysyncobj": RAFT_BASE_VARS,
    "wraft": RAFT_BASE_VARS + ("snapshotIndex", "snapshotTerm"),
    "redisraft": RAFT_BASE_VARS + ("snapshotIndex", "snapshotTerm", "preVotes"),
    "daosraft": RAFT_BASE_VARS + ("snapshotIndex", "snapshotTerm", "preVotes"),
    "raftos": RAFT_BASE_VARS,
    "xraft": RAFT_BASE_VARS + ("preVotes",),
    "xraft-kv": RAFT_BASE_VARS + ("appliedValue",),
    "zookeeper": (
        "zbRole",
        "phase",
        "logicalClock",
        "currentVote",
        "recvVotes",
        "acceptedEpoch",
        "currentEpoch",
        "history",
        "lastCommitted",
        "leaderOf",
        "followerInfos",
        "epochAcks",
        "syncAcks",
        "txnAcks",
    ),
}


def mapping_for(system: str, nodes: Sequence[str]) -> ConformanceMapping:
    """The standard mapping for one of the eight integrated systems."""
    return ConformanceMapping(nodes, SYSTEM_VARS[system])
