"""Conformance checking and deterministic bug replay (§3.2, §3.4)."""

from .checker import ConformanceChecker, ConformanceReport, ReplayReport
from .converter import ConversionError, TraceConverter
from .mapping import ConformanceMapping, Discrepancy, mapping_for
from .replayer import BugConfirmation, BugReplayer, FixValidation
from .report import BugReport, render_report

__all__ = [
    "BugConfirmation",
    "BugReplayer",
    "ConformanceChecker",
    "ConformanceMapping",
    "ConformanceReport",
    "BugReport",
    "ConversionError",
    "Discrepancy",
    "FixValidation",
    "ReplayReport",
    "TraceConverter",
    "mapping_for",
    "render_report",
]
