"""Deterministic bug replay and fix validation (§3.4).

A safety violation found at the specification level is only reported as a
bug after the triggering event sequence replays at the implementation
level without discrepancies: the implementation then provably reaches the
same (violating) state, so the bug is real — this is how SandTable avoids
false alarms.

After the developer fixes the bug (in both levels), :func:`validate_fix`
re-runs conformance checking (no regression between the levels) and model
checking (the violation is gone) — the paper's fix-validation loop.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Optional

from ..core.explorer import BFSResult, bfs_explore
from ..obs.metrics import TIME_BOUNDS
from ..core.violation import Violation
from .checker import ConformanceChecker, ConformanceReport, ReplayReport

__all__ = ["BugConfirmation", "FixValidation", "BugReplayer"]


@dataclasses.dataclass
class BugConfirmation:
    """The §3.4 verdict for one specification-level violation."""

    violation: Violation
    replay: ReplayReport
    confirmed: bool

    def describe(self) -> str:
        verdict = "CONFIRMED" if self.confirmed else "NOT REPRODUCED"
        lines = [
            f"{verdict}: {self.violation.invariant} at depth {self.violation.depth}",
        ]
        if not self.confirmed:
            if self.replay.engine_error:
                lines.append(f"  replay stopped: {self.replay.engine_error}")
            for discrepancy in self.replay.discrepancies:
                lines.append(f"  {discrepancy.describe()}")
        return "\n".join(lines)


@dataclasses.dataclass
class FixValidation:
    """Fix validation: conformance plus re-model-checking."""

    conformance: ConformanceReport
    model_checking: BFSResult

    @property
    def passed(self) -> bool:
        return self.conformance.passed and not self.model_checking.found_violation


class BugReplayer:
    """Confirms spec-level violations at the implementation level."""

    def __init__(self, checker: ConformanceChecker, metrics: Optional[Any] = None):
        self.checker = checker
        self.metrics = metrics

    def confirm(self, violation: Violation) -> BugConfirmation:
        """Replay the violation's trace; the bug is confirmed when the
        implementation tracks the specification through the entire
        bug-triggering sequence (so it reaches the violating state too).

        An implementation crash along the way still confirms *a* bug —
        the crash itself — but not the safety violation being checked,
        so it is reported as not reproduced for this violation.
        """
        metrics = self.metrics
        started = time.monotonic() if metrics is not None else 0.0
        replay = self.checker.replay(violation.trace)
        if metrics is not None:
            elapsed = time.monotonic() - started
            metrics.counter("replay.traces").inc()
            metrics.counter("replay.steps").inc(replay.steps_executed)
            metrics.histogram("replay.trace_seconds", TIME_BOUNDS).observe(elapsed)
            if replay.steps_executed:
                metrics.histogram("replay.step_seconds", TIME_BOUNDS).observe(
                    elapsed / replay.steps_executed
                )
        return BugConfirmation(violation, replay, confirmed=replay.conforms)

    def validate_fix(
        self,
        fixed_checker: ConformanceChecker,
        quiet_period: float = 2.0,
        max_traces: Optional[int] = 50,
        max_states: Optional[int] = 50_000,
        time_budget: Optional[float] = 30.0,
        symmetry: bool = False,
    ) -> FixValidation:
        """Validate a fix: the fixed spec and implementation still conform,
        and model checking no longer finds the violation."""
        conformance = fixed_checker.run(
            quiet_period=quiet_period, max_traces=max_traces
        )
        model_checking = bfs_explore(
            fixed_checker.spec,
            max_states=max_states,
            time_budget=time_budget,
            symmetry=symmetry,
        )
        return FixValidation(conformance, model_checking)
