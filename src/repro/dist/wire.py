"""The socket wire format: length-prefixed frames of codec-bytes + JSON.

Every exchange between the parallel master and a ``sandtable worker``
agent is one *frame*::

    u32 payload length (big-endian)  |  payload

and every payload is one *message*::

    u32 blob count | (u32 length + raw bytes)*  |  UTF-8 JSON body

The blob table carries the canonical state-codec bytes (and checkpoint
containers) raw — the exact bytes the fork transport moves through its
pipes, never re-encoded — while the JSON body carries the message
structure, referencing blobs as ``{"$b": index}``.  Mappings with
non-string keys (per-owner batch dicts keyed by worker id) survive as
``{"$d": [[key, value], ...]}`` pairs.  Anything malformed — a frame
over :data:`MAX_FRAME`, a truncated blob table, a dangling blob index,
trailing garbage — raises :class:`WireError`; framing fails loudly and
never decodes garbage.

The first message on every connection is the versioned handshake
(:func:`make_handshake`): protocol version, codec version, the spec
reference plus its :func:`~repro.dist.specref.spec_fingerprint`, the
shard assignment, and the flags that change exploration semantics
(symmetry, fast, POR, ...).  Agents refuse mismatches before any state
moves (:func:`check_handshake`).

Blocking helpers (:func:`read_frame`/:func:`write_frame`) serve the
agent's strict request/reply loop; the master's non-blocking,
``select``-driven side feeds raw socket reads through a
:class:`FrameBuffer` instead — deliberately *not* ``sock.makefile`` plus
``select``, whose hidden buffering can strand a complete frame
invisibly.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional

from ..core.state import CODEC_VERSION
from .specref import spec_fingerprint

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "WireError",
    "ConnectionClosed",
    "FrameBuffer",
    "encode_frame",
    "read_frame",
    "write_frame",
    "encode_message",
    "decode_message",
    "make_handshake",
    "check_handshake",
]

#: Bumped on any incompatible change to the frame or message layout.
PROTOCOL_VERSION = 1

#: Hard bound on one frame's payload: large enough for any realistic
#: absorb batch or checkpoint container, small enough that a corrupt
#: length prefix fails immediately instead of waiting on gigabytes.
MAX_FRAME = 1 << 28  # 256 MiB

_U32 = struct.Struct(">I")


class WireError(RuntimeError):
    """Malformed frame or message: refuse loudly, never decode garbage."""


class ConnectionClosed(WireError):
    """The peer closed the connection at a frame boundary."""


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _U32.pack(len(payload)) + payload


class FrameBuffer:
    """Incremental frame reassembly over raw ``recv`` chunks."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pop(self) -> Optional[bytes]:
        """The next complete frame payload, or ``None`` if more is needed."""
        if len(self._buf) < _U32.size:
            return None
        (length,) = _U32.unpack_from(self._buf, 0)
        if length > MAX_FRAME:
            raise WireError(
                f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME});"
                " stream corrupt or not a sandtable peer"
            )
        end = _U32.size + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[_U32.size : end])
        del self._buf[:end]
        return payload

    @property
    def pending(self) -> int:
        """Buffered bytes not yet forming a complete frame."""
        return len(self._buf)


def read_frame(handle: Any) -> bytes:
    """Blocking read of one frame from a file-like ``handle``."""
    prefix = handle.read(_U32.size)
    if not prefix:
        raise ConnectionClosed("connection closed")
    if len(prefix) < _U32.size:
        raise WireError(
            f"torn frame: connection closed inside the length prefix"
            f" ({len(prefix)}/{_U32.size} bytes)"
        )
    (length,) = _U32.unpack(prefix)
    if length > MAX_FRAME:
        raise WireError(
            f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME});"
            " stream corrupt or not a sandtable peer"
        )
    payload = handle.read(length)
    if len(payload) < length:
        raise WireError(
            f"torn frame: connection closed mid-payload"
            f" ({len(payload)}/{length} bytes)"
        )
    return payload


def write_frame(handle: Any, payload: bytes) -> None:
    handle.write(encode_frame(payload))


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------


def _strip(value: Any, blobs: List[bytes]) -> Any:
    if isinstance(value, (bytes, bytearray, memoryview)):
        blobs.append(bytes(value))
        return {"$b": len(blobs) - 1}
    if isinstance(value, (list, tuple)):
        return [_strip(item, blobs) for item in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) and not k.startswith("$") for k in value):
            return {k: _strip(v, blobs) for k, v in value.items()}
        # Non-string (or tag-colliding) keys: per-owner batch dicts are
        # keyed by int worker id, which JSON objects cannot carry.
        return {
            "$d": [[_strip(k, blobs), _strip(v, blobs)] for k, v in value.items()]
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise WireError(f"cannot encode {type(value).__name__!r} on the wire")


def _restore(value: Any, blobs: List[bytes]) -> Any:
    if isinstance(value, list):
        return [_restore(item, blobs) for item in value]
    if isinstance(value, dict):
        if set(value) == {"$b"}:
            index = value["$b"]
            if not isinstance(index, int) or not 0 <= index < len(blobs):
                raise WireError(f"dangling blob index {index!r}")
            return blobs[index]
        if set(value) == {"$d"}:
            return {
                _restore(k, blobs): _restore(v, blobs) for k, v in value["$d"]
            }
        return {k: _restore(v, blobs) for k, v in value.items()}
    return value


def encode_message(msg: tuple) -> bytes:
    """Serialize one protocol message tuple to a frame payload."""
    blobs: List[bytes] = []
    body = _strip(list(msg), blobs)
    try:
        body_bytes = json.dumps(body, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"unencodable message {msg[0]!r}: {exc}") from exc
    out = bytearray()
    out += _U32.pack(len(blobs))
    for blob in blobs:
        out += _U32.pack(len(blob))
        out += blob
    out += body_bytes
    return bytes(out)


def decode_message(payload: bytes) -> tuple:
    """Parse a frame payload back into a protocol message tuple.

    The top level comes back as a tuple; nested tuples come back as
    lists (the protocol only ever unpacks or indexes them, never keys on
    identity), and blob references come back as the exact original
    bytes.
    """
    offset = 0
    if len(payload) < _U32.size:
        raise WireError("truncated message: missing blob count")
    (n_blobs,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    blobs: List[bytes] = []
    for index in range(n_blobs):
        if len(payload) - offset < _U32.size:
            raise WireError(f"truncated message: missing blob {index} header")
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if len(payload) - offset < length:
            raise WireError(
                f"truncated message: blob {index} needs {length} bytes,"
                f" {len(payload) - offset} remain"
            )
        blobs.append(payload[offset : offset + length])
        offset += length
    try:
        body = json.loads(payload[offset:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed message body: {exc}") from exc
    if not isinstance(body, list) or not body or not isinstance(body[0], str):
        raise WireError("malformed message body: expected [op, ...]")
    return tuple(_restore(body, blobs))


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------


def make_handshake(
    spec_ref: Dict[str, Any],
    *,
    wid: int,
    workers: int,
    symmetry: bool = False,
    stop_on_violation: bool = True,
    metrics_on: bool = False,
    compiled: bool = True,
    fast: bool = False,
    por: bool = False,
) -> Dict[str, Any]:
    """The versioned hello header the master opens every session with."""
    return {
        "proto": PROTOCOL_VERSION,
        "codec_version": CODEC_VERSION,
        "spec_ref": spec_ref,
        "spec_fingerprint": spec_fingerprint(spec_ref),
        "wid": int(wid),
        "workers": int(workers),
        "symmetry": bool(symmetry),
        "stop_on_violation": bool(stop_on_violation),
        "metrics_on": bool(metrics_on),
        "compiled": bool(compiled),
        "fast": bool(fast),
        "por": bool(por),
    }


def check_handshake(header: Dict[str, Any]) -> Optional[str]:
    """A refusal reason for an incompatible hello, or ``None`` if fine.

    The spec fingerprint itself is re-derived and compared by the agent
    *after* resolving the reference, so the comparison covers the
    resolver's view, not just the header's claim.
    """
    if not isinstance(header, dict):
        return "malformed handshake header"
    proto = header.get("proto")
    if proto != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: peer speaks {proto!r},"
            f" this worker speaks {PROTOCOL_VERSION}"
        )
    codec = header.get("codec_version")
    if codec != CODEC_VERSION:
        return (
            f"codec version mismatch: peer encodes states with"
            f" {codec!r}, this worker with {CODEC_VERSION} — fingerprints"
            " would not be comparable"
        )
    wid = header.get("wid")
    workers = header.get("workers")
    if not isinstance(wid, int) or not isinstance(workers, int):
        return "malformed handshake header: wid/workers"
    if not 0 <= wid < workers:
        return f"shard assignment out of range: wid {wid} of {workers}"
    if "spec_ref" not in header or "spec_fingerprint" not in header:
        return "malformed handshake header: missing spec reference"
    return None
