"""Distributed checking: socket worker transport + multi-tenant job service.

``repro.dist`` takes the sharded parallel BFS of
:mod:`repro.core.parallel` past one host and past one user:

* :mod:`~repro.dist.specref` — portable *spec references*: small JSON
  descriptions (a named system spec, or a testkit seed) that both ends
  of a connection resolve to the identical spec, fingerprinted so a
  mismatch is refused at handshake time;
* :mod:`~repro.dist.wire` — the length-prefixed frame format, the
  message codec (op byte + codec-bytes blob table + JSON), and the
  versioned handshake;
* :mod:`~repro.dist.transport` — :class:`SocketTransport`, a
  :class:`~repro.core.parallel.ForkTransport`-shaped transport that
  drives ``sandtable worker`` agents over TCP;
* :mod:`~repro.dist.agent` — :class:`WorkerAgent`, the TCP shard-worker
  server behind ``sandtable worker --listen``;
* :mod:`~repro.dist.service` — the stdlib-HTTP multi-tenant job server
  behind ``sandtable serve``: POST a spec+config job, it runs in a
  durable run dir, GET endpoints stream progress and serve artifacts;
* :mod:`~repro.dist.client` — a small urllib client for the service.

Layering: this package imports core/persist/obs freely; nothing in
those layers imports it back (the master sees a socket transport only
as a duck-typed ``transport`` argument).
"""

from .agent import WorkerAgent
from .client import ServiceClient, ServiceError
from .service import JobManager, JobServer, serve
from .specref import (
    SPEC_CLASSES,
    SpecRefError,
    make_spec,
    resolve_spec,
    spec_fingerprint,
    system_ref,
    testkit_ref,
)
from .transport import SocketTransport, TransportError, parse_address
from .wire import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameBuffer,
    WireError,
    check_handshake,
    decode_message,
    encode_frame,
    encode_message,
    make_handshake,
    read_frame,
    write_frame,
)

__all__ = [
    "ConnectionClosed",
    "FrameBuffer",
    "JobManager",
    "JobServer",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "SPEC_CLASSES",
    "ServiceClient",
    "ServiceError",
    "SocketTransport",
    "SpecRefError",
    "TransportError",
    "WireError",
    "WorkerAgent",
    "check_handshake",
    "decode_message",
    "encode_frame",
    "encode_message",
    "make_handshake",
    "make_spec",
    "parse_address",
    "read_frame",
    "resolve_spec",
    "serve",
    "spec_fingerprint",
    "system_ref",
    "testkit_ref",
    "write_frame",
]
