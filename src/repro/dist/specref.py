"""Spec references: portable JSON descriptions both ends resolve alike.

A distributed check cannot ship a live spec object over the wire (specs
close over Python callables), and it must not silently run two subtly
different specs on two hosts — the owner-computes sharding is only sound
when every process fingerprints the *same* transition system.  A *spec
reference* solves both: a small JSON value that any ``repro`` build can
resolve to the identical spec, plus a fingerprint over the reference and
the codec version that the handshake compares before any state moves.

Two kinds exist:

* ``{"kind": "system", "system": ..., "nodes": ..., "bugs": [...],
  "invariant": ...}`` — one of the Table 2 system specs, the same
  parameters ``sandtable check`` takes;
* ``{"kind": "testkit", "seed": ..., "params": {...}, "invariants":
  ...}`` — a generated differential-testkit spec, fully deterministic
  from its seed and :class:`~repro.testkit.genspec.GenParams`.

``SPEC_CLASSES``/:func:`make_spec` live here (the CLI re-exports them)
so resolving a reference never imports the CLI.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence

from ..core.spec import Spec
from ..core.state import CODEC_VERSION
from ..specs.raft import (
    DaosRaftSpec,
    PySyncObjSpec,
    RaftConfig,
    RaftOSSpec,
    RedisRaftSpec,
    WRaftSpec,
    XraftKVSpec,
    XraftSpec,
)
from ..specs.zab import ZabConfig, ZabSpec

__all__ = [
    "SPEC_CLASSES",
    "SpecRefError",
    "make_spec",
    "system_ref",
    "testkit_ref",
    "resolve_spec",
    "spec_fingerprint",
]

SPEC_CLASSES = {
    "pysyncobj": PySyncObjSpec,
    "wraft": WRaftSpec,
    "redisraft": RedisRaftSpec,
    "daosraft": DaosRaftSpec,
    "raftos": RaftOSSpec,
    "xraft": XraftSpec,
    "xraft-kv": XraftKVSpec,
    "zookeeper": ZabSpec,
}


class SpecRefError(ValueError):
    """A spec reference that cannot be resolved by this build."""


def make_spec(
    system: str, nodes: int, bugs: Sequence[str], invariant: Optional[str]
) -> Spec:
    """Instantiate one of the named system specs (``sandtable check``)."""
    node_names = tuple(f"n{i}" for i in range(1, nodes + 1))
    only = [invariant] if invariant else None
    if system == "zookeeper":
        return ZabSpec(ZabConfig(nodes=node_names), bugs=bugs, only_invariants=only)
    spec_cls = SPEC_CLASSES[system]
    return spec_cls(RaftConfig(nodes=node_names), bugs=bugs, only_invariants=only)


def system_ref(
    system: str,
    nodes: int = 3,
    bugs: Sequence[str] = (),
    invariant: Optional[str] = None,
) -> Dict[str, Any]:
    """Reference one of the Table 2 system specs."""
    if system not in SPEC_CLASSES:
        raise SpecRefError(
            f"unknown system {system!r}; known: {', '.join(sorted(SPEC_CLASSES))}"
        )
    return {
        "kind": "system",
        "system": system,
        "nodes": int(nodes),
        "bugs": list(bugs),
        "invariant": invariant,
    }


def testkit_ref(seed: Any, params: Any, invariants: bool = True) -> Dict[str, Any]:
    """Reference a generated testkit spec by its ``(seed, params)``."""
    return {
        "kind": "testkit",
        "seed": seed,
        "params": params.to_dict() if hasattr(params, "to_dict") else dict(params),
        "invariants": bool(invariants),
    }


def resolve_spec(ref: Dict[str, Any]) -> Spec:
    """Instantiate the spec a reference describes."""
    kind = ref.get("kind")
    if kind == "system":
        system = ref.get("system")
        if system not in SPEC_CLASSES:
            raise SpecRefError(
                f"unknown system {system!r}; known:"
                f" {', '.join(sorted(SPEC_CLASSES))}"
            )
        return make_spec(
            system,
            int(ref.get("nodes", 3)),
            list(ref.get("bugs", ())),
            ref.get("invariant"),
        )
    if kind == "testkit":
        # Local import: the testkit imports dist for its distributed
        # matrix cells, so this edge must stay lazy.
        from ..testkit.genspec import GenParams, generate_spec

        generated = generate_spec(ref["seed"], GenParams.from_dict(ref["params"]))
        return generated.spec(invariants=bool(ref.get("invariants", True)))
    raise SpecRefError(f"unknown spec reference kind {kind!r}")


def spec_fingerprint(ref: Dict[str, Any]) -> str:
    """A stable digest of a reference *and* the codec version.

    Two builds that disagree on either would shard states differently or
    exchange incompatible bytes; the handshake refuses the connection
    when the fingerprints differ.
    """
    payload = json.dumps(
        {"codec": CODEC_VERSION, "ref": ref}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()
