"""ServiceClient: a thin urllib client for the ``sandtable serve`` API.

Used by ``sandtable submit`` and the tests; nothing here a plain
``curl`` could not do, which is the point — the service speaks ordinary
HTTP + JSON and this module just keeps the URL spelling in one place.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service refused a request or cannot be reached.

    ``status`` is the HTTP status code, or ``None`` when the connection
    itself failed.
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to one job service at ``base_url`` (e.g. ``http://host:8080``)."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        if "://" not in self.base_url:
            self.base_url = "http://" + self.base_url
        self.timeout = timeout

    # -- raw HTTP ------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[bytes, Dict[str, str]]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read(), dict(response.headers)
        except HTTPError as exc:
            detail = ""
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                detail = payload.get("error", "")
            except Exception:
                pass
            raise ServiceError(
                f"{method} {path}: HTTP {exc.code}" + (f": {detail}" if detail else ""),
                status=exc.code,
            ) from exc
        except (URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from exc

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        raw, _ = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # -- API -----------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._json("GET", "/healthz").get("ok"))
        except ServiceError:
            return False

    def submit(
        self, spec_ref: Dict[str, Any], config: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """POST a job; returns the job record (``["id"]`` is the handle)."""
        body: Dict[str, Any] = {"spec": spec_ref}
        if config:
            body["config"] = config
        return self._json("POST", "/jobs", body)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def metrics(self, job_id: str, offset: int = 0) -> Tuple[List[dict], int]:
        """Complete ``metrics.jsonl`` records past ``offset``.

        Returns ``(records, next_offset)``; poll with the returned
        offset to tail the run's progress stream.
        """
        raw, headers = self._request("GET", f"/jobs/{job_id}/metrics?offset={offset}")
        records = [json.loads(line) for line in raw.splitlines() if line.strip()]
        next_offset = int(headers.get("X-Next-Offset", offset))
        return records, next_offset

    def trace(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}/trace")

    def coverage(self, job_id: str) -> str:
        raw, _ = self._request("GET", f"/jobs/{job_id}/coverage")
        return raw.decode("utf-8")
