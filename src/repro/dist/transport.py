"""SocketTransport: drive remote ``sandtable worker`` agents over TCP.

Speaks the exact master↔worker protocol of
:mod:`repro.core.parallel` — the same ops, the same reply tuples — so
:class:`~repro.core.parallel.ParallelBFS` cannot tell it from the fork
transport.  Three ops are translated because the agents share no
filesystem or clock with the master:

* ``("checkpoint", path)`` — the path stays master-side; the worker is
  asked for its checkpoint *bytes* and the master writes the
  generation-addressed file itself (atomic rename), which is what keeps
  resume and shard reassignment working with remote workers;
* ``("restore", path)`` — the master reads the file and ships the bytes;
* ``("expand", deadline)`` — the absolute ``time.monotonic`` deadline is
  meaningless on another host, so the *remaining seconds* travel and the
  agent re-anchors them locally.

A lost connection (EOF, send failure, torn frame) raises
:class:`~repro.core.parallel.WorkerDied`; the master's elastic-membership
recovery then calls :meth:`SocketTransport.replace`, which connects the
dead worker's shard to the next unassigned spare address.  Pass more
addresses than ``workers`` to have warm spares standing by.
"""

from __future__ import annotations

import pathlib
import select
import socket
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.parallel import WorkerDied
from ..obs.metrics import WIRE_BYTES_RECEIVED, WIRE_BYTES_SENT
from .wire import (
    ConnectionClosed,
    FrameBuffer,
    WireError,
    decode_message,
    encode_frame,
    encode_message,
    make_handshake,
)

__all__ = ["SocketTransport", "TransportError", "parse_address"]

_RECV_CHUNK = 1 << 16


class TransportError(RuntimeError):
    """Transport setup failure (bad address, refused handshake, ...)."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"port"``) → ``(host, port)``."""
    text = str(address).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port_text = "127.0.0.1", text
    try:
        port = int(port_text)
    except ValueError:
        raise TransportError(
            f"bad worker address {address!r}: expected HOST:PORT"
        ) from None
    if not 0 < port < 65536:
        raise TransportError(f"bad worker address {address!r}: port out of range")
    return host, port


class _Conn:
    """One live agent connection and its frame-reassembly state."""

    __slots__ = ("sock", "buffer", "addr_index")

    def __init__(self, sock: socket.socket, addr_index: int):
        self.sock = sock
        self.buffer = FrameBuffer()
        self.addr_index = addr_index


class SocketTransport:
    """A :class:`~repro.core.parallel.ForkTransport`-shaped TCP transport.

    ``addresses`` lists the agents to use, ``HOST:PORT`` each; the first
    ``workers`` become the shards, the rest stay unassigned spares for
    :meth:`replace`.  ``spec_ref`` (see :mod:`repro.dist.specref`) names
    the spec both sides must resolve identically — it rides in the
    handshake together with the codec version and its fingerprint, and
    agents refuse mismatches.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        spec_ref: Dict[str, Any],
        *,
        connect_timeout: float = 10.0,
        metrics: Optional[Any] = None,
    ):
        if not addresses:
            raise TransportError("socket transport needs at least one worker address")
        self.addresses = [parse_address(a) for a in addresses]
        self.spec_ref = spec_ref
        self.connect_timeout = connect_timeout
        self.metrics = metrics
        self.n = 0
        self._config: Dict[str, Any] = {}
        self._conns: Dict[int, _Conn] = {}
        self._assigned: Dict[int, int] = {}  # wid -> address index (sticky)
        self._pending_ckpt: Dict[int, str] = {}
        self._inbox: Deque[Tuple[int, tuple]] = deque()

    # -- lifecycle -----------------------------------------------------------

    def start(self, config: Dict[str, Any]) -> None:
        self._config = dict(config)
        self.n = int(config["workers"])
        if self.metrics is None:
            self.metrics = config.get("metrics")
        if len(self.addresses) < self.n:
            raise TransportError(
                f"{self.n} workers requested but only"
                f" {len(self.addresses)} worker addresses given"
            )
        for wid in range(self.n):
            self._connect(wid, wid)

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.sock.sendall(encode_frame(encode_message(("stop",))))
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._conns.clear()
        self._inbox.clear()

    # -- exchange ------------------------------------------------------------

    def send(self, wid: int, msg: tuple) -> None:
        conn = self._conns.get(wid)
        if conn is None:
            raise WorkerDied(wid, "connection already lost")
        op = msg[0]
        if op == "checkpoint":
            # Remember where the master wants the file; ask the agent
            # for bytes only.
            self._pending_ckpt[wid] = str(msg[1])
            msg = ("checkpoint",)
        elif op == "restore":
            source = msg[1] if len(msg) > 1 else None
            if source is not None and not isinstance(source, (bytes, bytearray)):
                source = pathlib.Path(source).read_bytes()
            msg = ("restore", source)
        elif op == "expand":
            deadline = msg[1]
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            msg = ("expand", remaining)
        frame = encode_frame(encode_message(msg))
        try:
            conn.sock.sendall(frame)
        except OSError as exc:
            self._drop(wid)
            raise WorkerDied(wid, f"send failed: {exc}") from exc
        self._count(WIRE_BYTES_SENT, len(frame))

    def recv(self, timeout: float = 1.0) -> Optional[tuple]:
        """One worker reply, ``None`` on timeout; raises on lost workers."""
        deadline = time.monotonic() + timeout
        while True:
            if self._inbox:
                wid, msg = self._inbox.popleft()
                return self._translate(wid, msg)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            by_sock = {conn.sock: wid for wid, conn in self._conns.items()}
            if not by_sock:
                raise WorkerDied(-1, "all worker connections lost")
            readable, _, _ = select.select(list(by_sock), [], [], remaining)
            if not readable:
                return None
            # Deterministic service order under simultaneous readiness.
            for sock in sorted(readable, key=lambda s: by_sock[s]):
                wid = by_sock[sock]
                try:
                    data = sock.recv(_RECV_CHUNK)
                except OSError as exc:
                    self._drop(wid)
                    raise WorkerDied(wid, f"recv failed: {exc}") from exc
                if not data:
                    torn = self._conns[wid].buffer.pending
                    self._drop(wid)
                    reason = "connection closed"
                    if torn:
                        reason += f" mid-frame ({torn} bytes buffered)"
                    raise WorkerDied(wid, reason)
                self._count(WIRE_BYTES_RECEIVED, len(data))
                buffer = self._conns[wid].buffer
                try:
                    buffer.feed(data)
                    while True:
                        payload = buffer.pop()
                        if payload is None:
                            break
                        self._inbox.append((wid, decode_message(payload)))
                except WireError as exc:
                    self._drop(wid)
                    raise WorkerDied(wid, f"wire error: {exc}") from exc

    def replace(self, wid: int) -> bool:
        """Connect shard ``wid`` to the next unassigned spare agent."""
        self._drop(wid)
        used = set(self._assigned.values())
        for index in range(len(self.addresses)):
            if index in used:
                continue
            try:
                self._connect(wid, index)
                return True
            except (OSError, TransportError, WireError):
                # A spare that is down or refuses stays burned (recorded
                # in _assigned by _connect only on success), so just try
                # the next one.
                continue
        return False

    # -- internals -----------------------------------------------------------

    def _connect(self, wid: int, addr_index: int) -> None:
        host, port = self.addresses[addr_index]
        config = self._config
        try:
            sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot reach worker {wid} at {host}:{port}: {exc}"
            ) from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = make_handshake(
                self.spec_ref,
                wid=wid,
                workers=self.n,
                symmetry=config.get("symmetry", False),
                stop_on_violation=config.get("stop_on_violation", True),
                metrics_on=config.get("metrics_on", False),
                compiled=config.get("compiled", True),
                fast=config.get("fast", False),
                por=config.get("por", False),
            )
            frame = encode_frame(encode_message(("hello", hello)))
            sock.sendall(frame)
            self._count(WIRE_BYTES_SENT, len(frame))
            reply = self._read_one_blocking(sock)
            if reply[0] == "refuse":
                raise TransportError(
                    f"worker {wid} at {host}:{port} refused the handshake:"
                    f" {reply[1]}"
                )
            if reply[0] != "ready" or reply[1] != wid:
                raise TransportError(
                    f"worker {wid} at {host}:{port} answered {reply[0]!r}"
                    " instead of ready"
                )
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)
        self._conns[wid] = _Conn(sock, addr_index)
        self._assigned[wid] = addr_index

    def _read_one_blocking(self, sock: socket.socket) -> tuple:
        """One message during the handshake, before select-driven mode."""
        buffer = FrameBuffer()
        sock.settimeout(self.connect_timeout)
        while True:
            payload = buffer.pop()
            if payload is not None:
                return decode_message(payload)
            try:
                data = sock.recv(_RECV_CHUNK)
            except socket.timeout as exc:
                raise TransportError("handshake timed out") from exc
            if not data:
                raise ConnectionClosed("connection closed during handshake")
            self._count(WIRE_BYTES_RECEIVED, len(data))
            buffer.feed(data)

    def _translate(self, wid: int, msg: tuple) -> tuple:
        op = msg[0]
        if op == "checkpointed" and len(msg) > 2:
            # The agent shipped checkpoint bytes; commit them to the
            # generation-addressed path the master chose.
            path = self._pending_ckpt.pop(msg[1], None)
            if path is not None:
                from ..persist.rundir import atomic_write_bytes

                atomic_write_bytes(pathlib.Path(path), msg[2])
            return ("checkpointed", msg[1])
        if op == "error":
            raise RuntimeError(f"parallel BFS worker {msg[1]} failed:\n{msg[2]}")
        return msg

    def _drop(self, wid: int) -> None:
        conn = self._conns.pop(wid, None)
        if conn is not None:
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - already gone
                pass
        # Stale queued replies from this worker would confuse the next
        # assignment of the same wid; recovery re-pings anyway, but drop
        # them eagerly.
        if self._inbox:
            self._inbox = deque(item for item in self._inbox if item[0] != wid)

    def _count(self, name: str, amount: int) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)
