"""WorkerAgent: the TCP shard-worker server behind ``sandtable worker``.

One agent owns one listening socket and serves *sessions* sequentially:
a master connects, sends the versioned handshake, and — if the agent can
resolve the spec reference to the identical spec (fingerprint-checked) —
gets a fresh :class:`~repro.core.parallel.ShardWorker` for the assigned
shard, driven by a strict request/reply loop until ``stop`` or
disconnect.  When the session ends the agent loops back to ``accept``,
so one long-running agent serves any number of rounds, runs, and masters
over its lifetime — and a just-started agent can adopt a dead worker's
shard mid-run (the master re-handshakes with the same ``wid`` and
restores the shard from its last committed checkpoint).

The agent holds no durable state: checkpoints leave as container bytes
in the ``checkpointed`` reply and the master writes the
generation-addressed files, so elastic membership needs no shared
filesystem.

``die_after_ops`` is fault injection for the kill-and-resume tests: the
agent drops the connection without a goodbye after that many post-
handshake ops, exactly like a crashed worker host.
"""

from __future__ import annotations

import os
import socket
import time
import traceback
from typing import Any, Optional

from ..core.parallel import ShardWorker
from .specref import resolve_spec, spec_fingerprint
from .wire import (
    ConnectionClosed,
    WireError,
    check_handshake,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)

__all__ = ["WorkerAgent"]


class WorkerAgent:
    """Serve shard-worker sessions on ``host:port`` (port 0 = ephemeral).

    ``max_sessions`` bounds how many sessions to serve before returning
    (``None`` = forever, ``1`` = one master then exit — ``--once``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: Optional[int] = None,
        die_after_ops: Optional[int] = None,
        log: Any = None,
    ):
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.max_sessions = max_sessions
        self.die_after_ops = die_after_ops
        self._log = log
        self._shutdown = False
        self.sessions_served = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    def serve_forever(self) -> None:
        """Accept and serve sessions until shutdown or ``max_sessions``."""
        try:
            while not self._shutdown:
                try:
                    conn, peer = self._listener.accept()
                except OSError:
                    break  # listener closed by shutdown()
                self._say(f"session from {peer[0]}:{peer[1]}")
                try:
                    self._serve_session(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - already gone
                        pass
                self.sessions_served += 1
                if (
                    self.max_sessions is not None
                    and self.sessions_served >= self.max_sessions
                ):
                    break
        finally:
            self.close()

    def shutdown(self) -> None:
        """Stop accepting; unblocks a pending ``accept`` from any thread."""
        self._shutdown = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        self.shutdown()

    # -- one session ---------------------------------------------------------

    def _serve_session(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = conn.makefile("rb")
        writer = conn.makefile("wb")

        def reply(msg: tuple) -> None:
            write_frame(writer, encode_message(msg))
            writer.flush()

        try:
            worker = self._handshake(reader, reply)
            if worker is None:
                return
            ops = 0
            while True:
                try:
                    msg = decode_message(read_frame(reader))
                except (ConnectionClosed, WireError):
                    return  # master went away; next master gets a fresh session
                op = msg[0]
                if op == "stop":
                    return
                if op == "expand":
                    # The wire carries *remaining* seconds (clocks are not
                    # comparable across hosts); re-anchor locally.
                    remaining = msg[1]
                    deadline = (
                        None if remaining is None else time.monotonic() + remaining
                    )
                    msg = ("expand", deadline)
                ops += 1
                if self.die_after_ops is not None and ops > self.die_after_ops:
                    # Fault injection: vanish mid-run without a goodbye.
                    self._say(f"fault injection: dying after {ops - 1} ops")
                    self.shutdown()
                    return
                try:
                    reply(worker.handle(tuple(msg)))
                except (BrokenPipeError, ConnectionResetError):
                    return
                except WireError:
                    raise
                except Exception:
                    try:
                        reply(("error", worker.wid, traceback.format_exc()))
                    except OSError:  # pragma: no cover - peer also gone
                        pass
                    return
        except (ConnectionClosed, WireError, OSError):
            return

    def _handshake(self, reader: Any, reply: Any) -> Optional[ShardWorker]:
        msg = decode_message(read_frame(reader))
        if msg[0] != "hello":
            reply(("refuse", f"expected hello, got {msg[0]!r}"))
            return None
        header = msg[1]
        reason = check_handshake(header)
        if reason is not None:
            self._say(f"refusing session: {reason}")
            reply(("refuse", reason))
            return None
        spec_ref = header["spec_ref"]
        try:
            spec = resolve_spec(spec_ref)
        except Exception as exc:  # refuse politely instead of dying
            reason = f"cannot resolve spec reference: {exc}"
            self._say(f"refusing session: {reason}")
            reply(("refuse", reason))
            return None
        expected = spec_fingerprint(spec_ref)
        if header.get("spec_fingerprint") != expected:
            reason = (
                f"spec fingerprint mismatch: peer claims"
                f" {header.get('spec_fingerprint')!r}, this worker derives"
                f" {expected!r}"
            )
            self._say(f"refusing session: {reason}")
            reply(("refuse", reason))
            return None
        worker = ShardWorker(
            spec,
            int(header["wid"]),
            int(header["workers"]),
            symmetry=bool(header.get("symmetry", False)),
            stop_on_violation=bool(header.get("stop_on_violation", True)),
            metrics_on=bool(header.get("metrics_on", False)),
            compiled=bool(header.get("compiled", True)),
            fast=bool(header.get("fast", False)),
            por=bool(header.get("por", False)),
        )
        reply(
            (
                "ready",
                worker.wid,
                {"agent": "sandtable-worker", "pid": os.getpid()},
            )
        )
        return worker
