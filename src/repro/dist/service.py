"""The multi-tenant job service behind ``sandtable serve``.

"Checks as jobs": a thin HTTP front end (stdlib
:class:`http.server.ThreadingHTTPServer` — no new dependencies) over the
durable-run machinery that already exists in :mod:`repro.persist`.  Each
job is one :func:`~repro.persist.runner.run_check` in its own
job-addressed run directory under the service's data dir, executed on a
daemon thread; everything a client can ask for — status, live progress,
the final trace — is served *from the run directory*, so the service
itself holds no state a restart would lose.

Endpoints (JSON unless noted):

* ``POST /jobs`` — ``{"spec": <spec ref>, "config": {...}}`` → ``202``
  with the job record.  Config keys are allowlisted
  (:data:`CONFIG_KEYS`); ``workers`` + ``worker_addrs`` select a
  distributed socket run.
* ``GET /jobs`` — all jobs, newest first.
* ``GET /jobs/<id>`` — one job: run-dir manifest (status, config,
  result) plus service bookkeeping.
* ``GET /jobs/<id>/metrics?offset=N`` — the run's ``metrics.jsonl``
  from byte offset ``N``, complete lines only (``application/x-ndjson``);
  the ``X-Next-Offset`` header says where to poll next.  This is the
  live progress stream.
* ``GET /jobs/<id>/trace`` — the finished violation artifact.
* ``GET /jobs/<id>/coverage`` — the per-action coverage report (text).
* ``GET /healthz`` — liveness probe.
"""

from __future__ import annotations

import json
import pathlib
import re
import secrets
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs.metrics import MetricsRegistry
from ..obs.report import METRICS_FILENAME, coverage_from_sink
from ..persist.rundir import RunDir, RunDirError, read_json
from ..persist.runner import VIOLATION_ARTIFACT, run_check
from .specref import SpecRefError, resolve_spec

__all__ = ["CONFIG_KEYS", "JobManager", "JobServer", "serve"]

#: Job-config keys a client may set; everything else is refused so a
#: request cannot smuggle arbitrary kwargs into ``run_check``.
CONFIG_KEYS = frozenset(
    {
        "workers",
        "symmetry",
        "max_states",
        "max_depth",
        "time_budget",
        "stop_on_violation",
        "fast",
        "por",
        "compiled",
        "checkpoint_every",
        "checkpoint_states",
        "memory_budget",
        "worker_addrs",
    }
)

_JOB_ID = re.compile(r"^job-\d{4}-[0-9a-f]+$")


class JobError(ValueError):
    """A client error: bad spec reference, bad config, unknown job."""


class JobManager:
    """Owns the jobs: directories, worker threads, and status lookups.

    One instance per service; all mutable state is the ``_jobs`` table
    (id → bookkeeping dict) behind one lock, everything else lives in
    the job's run directory.
    """

    def __init__(self, data_dir: Any):
        self.data_dir = pathlib.Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Dict[str, Any]] = {}
        self._counter = 0
        # Adopt jobs from a previous service life: their run dirs are
        # self-describing, so status survives a restart.
        for path in sorted(self.data_dir.iterdir()) if self.data_dir.exists() else []:
            if path.is_dir() and _JOB_ID.match(path.name):
                self._jobs[path.name] = {"id": path.name, "adopted": True}
                self._counter += 1

    # -- submission ----------------------------------------------------------

    def submit(self, spec_ref: Any, config: Optional[Dict[str, Any]] = None) -> str:
        """Validate, allocate a job id + run dir, and start the run thread."""
        if not isinstance(spec_ref, dict):
            raise JobError("spec must be a spec-reference object")
        try:
            spec = resolve_spec(spec_ref)
        except SpecRefError as exc:
            raise JobError(str(exc)) from exc
        config = dict(config or {})
        unknown = sorted(set(config) - CONFIG_KEYS)
        if unknown:
            raise JobError(
                f"unknown config keys: {', '.join(unknown)};"
                f" allowed: {', '.join(sorted(CONFIG_KEYS))}"
            )
        worker_addrs = config.pop("worker_addrs", None)
        transport = None
        if worker_addrs:
            from .transport import SocketTransport

            transport = SocketTransport(list(worker_addrs), spec_ref)
            config.setdefault("workers", len(worker_addrs))
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:04d}-{secrets.token_hex(4)}"
            record = {"id": job_id, "spec": spec_ref, "adopted": False}
            self._jobs[job_id] = record
        run_dir = self.data_dir / job_id
        thread = threading.Thread(
            target=self._run,
            args=(job_id, spec, spec_ref, run_dir, config, transport),
            name=f"sandtable-{job_id}",
            daemon=True,
        )
        record["thread"] = thread
        thread.start()
        return job_id

    def _run(
        self,
        job_id: str,
        spec: Any,
        spec_ref: Dict[str, Any],
        run_dir: pathlib.Path,
        config: Dict[str, Any],
        transport: Any,
    ) -> None:
        try:
            run_check(
                spec,
                run_dir,
                metrics=MetricsRegistry(),
                transport=transport,
                manifest_extra={"job": {"id": job_id, "spec_ref": spec_ref}},
                **config,
            )
        except Exception:
            # The manifest already says "interrupted"; keep the traceback
            # for GET /jobs/<id> since there is no console to read it on.
            with self._lock:
                record = self._jobs.get(job_id)
                if record is not None:
                    record["error"] = traceback.format_exc()

    # -- lookups -------------------------------------------------------------

    def job_dir(self, job_id: str) -> pathlib.Path:
        with self._lock:
            known = job_id in self._jobs
        if not known:
            raise JobError(f"unknown job {job_id!r}")
        return self.data_dir / job_id

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job record: run-dir manifest + service bookkeeping."""
        path = self.job_dir(job_id)
        out: Dict[str, Any] = {"id": job_id}
        manifest_path = path / RunDir.MANIFEST
        if manifest_path.exists():
            out["manifest"] = read_json(manifest_path)
            out["status"] = out["manifest"].get("status", "unknown")
        else:
            # The thread has not created the run dir yet.
            out["status"] = "starting"
        with self._lock:
            record = self._jobs.get(job_id, {})
            thread = record.get("thread")
            out["running"] = bool(thread is not None and thread.is_alive())
            if "error" in record:
                out["status"] = "error"
                out["error"] = record["error"]
        return out

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            ids = sorted(self._jobs, reverse=True)
        return [self.status(job_id) for job_id in ids]

    def metrics_chunk(self, job_id: str, offset: int) -> Tuple[bytes, int]:
        """``metrics.jsonl`` bytes from ``offset``, complete lines only.

        Returns ``(chunk, next_offset)``; polling with the returned
        offset streams the file as the run appends to it, never serving
        a torn tail line.
        """
        path = self.job_dir(job_id) / METRICS_FILENAME
        if not path.exists():
            return b"", offset
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
        end = chunk.rfind(b"\n")
        if end < 0:
            return b"", offset
        return chunk[: end + 1], offset + end + 1

    def trace(self, job_id: str) -> Dict[str, Any]:
        path = self.job_dir(job_id) / "artifacts" / VIOLATION_ARTIFACT
        if not path.exists():
            raise JobError(
                f"job {job_id} has no violation artifact (status:"
                f" {self.status(job_id).get('status')})"
            )
        return read_json(path)

    def coverage(self, job_id: str) -> str:
        path = self.job_dir(job_id) / METRICS_FILENAME
        if not path.exists():
            raise JobError(f"job {job_id} has no metrics yet")
        return coverage_from_sink(path).render()

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Join the job's worker thread (tests and graceful shutdown)."""
        with self._lock:
            thread = self._jobs.get(job_id, {}).get("thread")
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the :class:`JobManager` on ``server.manager``."""

    server_version = "sandtable"
    protocol_version = "HTTP/1.1"

    # -- helpers -------------------------------------------------------------

    def _send(self, code: int, body: bytes, content_type: str, **headers: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, obj: Any, **headers: str) -> None:
        body = (json.dumps(obj, indent=2) + "\n").encode("utf-8")
        self._send(code, body, "application/json", **headers)

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def log_message(self, fmt: str, *args: Any) -> None:
        log = getattr(self.server, "log", None)
        if log is not None:
            log(f"{self.address_string()} {fmt % args}")

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        manager: JobManager = self.server.manager  # type: ignore[attr-defined]
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._json(200, {"ok": True})
            elif parts == ["jobs"]:
                self._json(200, {"jobs": manager.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._json(200, manager.status(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "metrics":
                query = parse_qs(url.query)
                try:
                    offset = int(query.get("offset", ["0"])[0])
                except ValueError:
                    self._error(400, "offset must be an integer")
                    return
                manager.job_dir(parts[1])  # raises on unknown job
                chunk, next_offset = manager.metrics_chunk(parts[1], max(0, offset))
                self._send(
                    200,
                    chunk,
                    "application/x-ndjson",
                    X_Next_Offset=str(next_offset),
                )
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                self._json(200, manager.trace(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "coverage":
                body = manager.coverage(parts[1]).encode("utf-8")
                self._send(200, body + b"\n", "text/plain; charset=utf-8")
            else:
                self._error(404, f"no such endpoint: GET {url.path}")
        except JobError as exc:
            self._error(404, str(exc))
        except (RunDirError, OSError) as exc:
            self._error(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        manager: JobManager = self.server.manager  # type: ignore[attr-defined]
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["jobs"]:
            self._error(404, f"no such endpoint: POST {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            request = json.loads(raw.decode("utf-8"))
            if not isinstance(request, dict) or "spec" not in request:
                raise JobError('body must be {"spec": <spec ref>, "config": {...}}')
            job_id = manager.submit(request["spec"], request.get("config"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"bad JSON body: {exc}")
            return
        except JobError as exc:
            self._error(400, str(exc))
            return
        self._json(202, manager.status(job_id), Location=f"/jobs/{job_id}")


class JobServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to a :class:`JobManager`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        data_dir: Any,
        log: Any = None,
    ):
        super().__init__(address, _Handler)
        self.manager = JobManager(data_dir)
        self.log = log

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(host: str, port: int, data_dir: Any, log: Any = None) -> JobServer:
    """Bind a :class:`JobServer` (port 0 = ephemeral); caller runs it."""
    return JobServer((host, port), data_dir, log=log)
