"""The registry of all 23 paper bugs (Table 2).

Every bug carries the metadata reported in the paper — discovery stage,
new/old status, consequence, and (for verification-stage bugs) the
time/depth/state figures — together with what this reproduction needs to
re-find it: the seeding flag, the violated safety property, the system
configuration and budget constraint (the paper picks these with
Algorithm 1; here they are recorded per bug), and the detection method.

Verification-stage bugs are found by specification-level exploration and
confirmed by implementation-level replay; conformance-stage bugs live only
in the implementation and surface as discrepancies or crashes during
conformance checking; the single modeling-stage bug (WRaft#9) was found
while writing the spec.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from ..specs.raft import (
    DaosRaftSpec,
    PySyncObjSpec,
    RaftConfig,
    RaftOSSpec,
    WRaftSpec,
    XraftKVSpec,
    XraftSpec,
)
from ..specs.zab import ZabConfig, ZabSpec

__all__ = ["Bug", "BUGS", "bugs_for_system", "verification_bugs", "get_bug"]

VERIFICATION = "verification"
CONFORMANCE = "conformance"
MODELING = "modeling"


@dataclasses.dataclass(frozen=True)
class Bug:
    """One Table 2 row, plus reproduction metadata."""

    bug_id: str  # e.g. "PySyncObj#4"
    system: str  # spec/system name, e.g. "pysyncobj"
    flag: str  # seeding flag, e.g. "P4"
    stage: str  # verification | conformance | modeling
    status: str  # new | old
    consequence: str
    invariant: Optional[str] = None  # violated safety property
    paper_time: Optional[str] = None
    paper_depth: Optional[int] = None
    paper_states: Optional[int] = None
    # how this reproduction detects it at the specification level
    method: str = "bfs"  # bfs | simulate | scenario | conformance
    spec_factory: Optional[Callable] = None
    config: Optional[object] = None
    # flags seeded for detection; defaults to (flag,).  WRaft#1/#2 seed
    # each other too: their consequence (Figure 7) needs both defects.
    seed_flags: Optional[Tuple[str, ...]] = None

    def make_spec(self, bugs: Optional[Tuple[str, ...]] = None, only_invariant: bool = True):
        """Instantiate the spec seeded for this bug's detection run."""
        if self.spec_factory is None:
            raise ValueError(f"{self.bug_id} has no specification-level seeding")
        flags = bugs if bugs is not None else (self.seed_flags or (self.flag,))
        only = [self.invariant] if (only_invariant and self.invariant) else None
        return self.spec_factory(self.config, bugs=flags, only_invariants=only)


def _raft_cfg(**kwargs) -> RaftConfig:
    defaults = dict(
        nodes=("n1", "n2", "n3"),
        values=("v1", "v2"),
        max_timeouts=3,
        max_requests=2,
        max_crashes=1,
        max_restarts=1,
        max_partitions=1,
        max_drops=1,
        max_dups=1,
        max_buffer=4,
        max_term=3,
    )
    defaults.update(kwargs)
    return RaftConfig(**defaults)


BUGS: Dict[str, Bug] = {}


def _register(bug: Bug) -> None:
    BUGS[bug.bug_id] = bug


# ---------------------------------------------------------------------------
# PySyncObj
# ---------------------------------------------------------------------------

_register(
    Bug(
        "PySyncObj#1",
        "pysyncobj",
        "P1",
        CONFORMANCE,
        "new",
        "Unhandled exception during disconnection",
        method="conformance",
    )
)
_register(
    Bug(
        "PySyncObj#2",
        "pysyncobj",
        "P2",
        VERIFICATION,
        "new",
        "Commit index is not monotonic",
        invariant="CommitIndexMonotonic",
        paper_time="6s",
        paper_depth=13,
        paper_states=93713,
        method="simulate",
        spec_factory=PySyncObjSpec,
        config=_raft_cfg(max_timeouts=4, max_crashes=0, max_restarts=0, max_buffer=3),
    )
)
_register(
    Bug(
        "PySyncObj#3",
        "pysyncobj",
        "P3",
        VERIFICATION,
        "new",
        "Next index <= match index",
        invariant="NextIndexAboveMatchIndex",
        paper_time="7s",
        paper_depth=18,
        paper_states=189725,
        method="simulate",
        spec_factory=PySyncObjSpec,
        config=_raft_cfg(
            values=("v1",),
            max_timeouts=5,
            max_requests=1,
            max_crashes=0,
            max_restarts=0,
            max_buffer=3,
            max_term=2,
        ),
    )
)
_register(
    Bug(
        "PySyncObj#4",
        "pysyncobj",
        "P4",
        VERIFICATION,
        "new",
        "Match index is not monotonic",
        invariant="MatchIndexMonotonic",
        paper_time="35s",
        paper_depth=25,
        paper_states=1512679,
        method="simulate",
        spec_factory=PySyncObjSpec,
        config=_raft_cfg(
            values=("v1",),
            max_timeouts=5,
            max_requests=1,
            max_crashes=0,
            max_restarts=0,
            max_buffer=3,
            max_term=2,
        ),
    )
)
_register(
    Bug(
        "PySyncObj#5",
        "pysyncobj",
        "P5",
        VERIFICATION,
        "new",
        "Leader commits log entries of older terms",
        invariant="LeaderCommitsCurrentTerm",
        paper_time="2min",
        paper_depth=14,
        paper_states=2364779,
        method="simulate",
        spec_factory=PySyncObjSpec,
        config=_raft_cfg(max_timeouts=4, max_crashes=0, max_restarts=0, max_buffer=3),
    )
)

# ---------------------------------------------------------------------------
# WRaft (and downstream RedisRaft / DaosRaft)
# ---------------------------------------------------------------------------

_register(
    Bug(
        "WRaft#1",
        "wraft",
        "W1",
        VERIFICATION,
        "new",
        "Incorrectly appending log entries",
        invariant="CommittedLogConsistency",
        paper_time="9min",
        paper_depth=22,
        paper_states=5954049,
        method="bfs",
        seed_flags=("W1", "W2"),
        spec_factory=WRaftSpec,
        config=_raft_cfg(
            max_timeouts=3,
            max_crashes=0,
            max_restarts=0,
            max_drops=0,
            max_dups=0,
            max_buffer=3,
        ),
    )
)
_register(
    Bug(
        "WRaft#2",
        "wraft",
        "W2",
        VERIFICATION,
        "old",
        "Inconsistent committed log",
        invariant="CommittedLogConsistency",
        paper_time="22min",
        paper_depth=20,
        paper_states=20955790,
        method="bfs",
        seed_flags=("W1", "W2"),
        spec_factory=WRaftSpec,
        config=_raft_cfg(
            max_timeouts=3,
            max_crashes=0,
            max_restarts=0,
            max_drops=0,
            max_dups=0,
            max_buffer=3,
        ),
    )
)
_register(
    Bug(
        "WRaft#3",
        "wraft",
        "W3",
        CONFORMANCE,
        "new",
        "Follower lagging behind until next snapshot",
        method="conformance",
    )
)
_register(
    Bug(
        "WRaft#4",
        "wraft",
        "W4",
        VERIFICATION,
        "old",
        "Current term is not monotonic",
        invariant="CurrentTermMonotonic",
        paper_time="39min",
        paper_depth=23,
        paper_states=48338241,
        method="simulate",
        spec_factory=WRaftSpec,
        config=_raft_cfg(max_crashes=0, max_restarts=0),
    )
)
_register(
    Bug(
        "WRaft#5",
        "wraft",
        "W5",
        VERIFICATION,
        "new",
        "Retry messages include empty logs",
        invariant="RetryRequestsCarryEntries",
        paper_time="11min",
        paper_depth=24,
        paper_states=10576917,
        method="simulate",
        spec_factory=WRaftSpec,
        config=_raft_cfg(max_crashes=0, max_restarts=0),
    )
)
_register(
    Bug(
        "WRaft#6",
        "wraft",
        "W6",
        CONFORMANCE,
        "old",
        "Memory leak",
        method="conformance",
    )
)
_register(
    Bug(
        "WRaft#7",
        "wraft",
        "W7",
        VERIFICATION,
        "new",
        "Next index <= match index",
        invariant="NextIndexAboveMatchIndex",
        paper_time="8min",
        paper_depth=23,
        paper_states=7401586,
        method="simulate",
        spec_factory=WRaftSpec,
        config=_raft_cfg(max_timeouts=4, max_crashes=0, max_restarts=0),
    )
)
_register(
    Bug(
        "WRaft#8",
        "wraft",
        "W8",
        CONFORMANCE,
        "new",
        "Prematurely stopping sending heartbeats",
        method="conformance",
    )
)
_register(
    Bug(
        "WRaft#9",
        "wraft",
        "W9",
        MODELING,
        "old",
        "Cannot elect leaders due to incorrectly getting term",
        method="conformance",
    )
)

# ---------------------------------------------------------------------------
# DaosRaft
# ---------------------------------------------------------------------------

_register(
    Bug(
        "DaosRaft#1",
        "daosraft",
        "D1",
        VERIFICATION,
        "new",
        "Leader votes for others",
        invariant="LeaderVotesForSelf",
        paper_time="5s",
        paper_depth=8,
        paper_states=476,
        method="bfs",
        spec_factory=DaosRaftSpec,
        config=_raft_cfg(
            values=("v1",),
            max_timeouts=3,
            max_requests=0,
            max_crashes=0,
            max_restarts=0,
            max_partitions=0,
            max_drops=0,
            max_dups=0,
        ),
    )
)

# ---------------------------------------------------------------------------
# RaftOS
# ---------------------------------------------------------------------------

_register(
    Bug(
        "RaftOS#1",
        "raftos",
        "R1",
        VERIFICATION,
        "new",
        "Match index is not monotonic",
        invariant="MatchIndexMonotonic",
        paper_time="5s",
        paper_depth=10,
        paper_states=60101,
        method="bfs",
        spec_factory=RaftOSSpec,
        config=_raft_cfg(nodes=("n1", "n2"), max_partitions=1),
    )
)
_register(
    Bug(
        "RaftOS#2",
        "raftos",
        "R2",
        VERIFICATION,
        "new",
        "Incorrectly erasing log entries",
        invariant="CommittedEntriesStable",
        paper_time="4s",
        paper_depth=9,
        paper_states=19455,
        method="bfs",
        spec_factory=RaftOSSpec,
        config=_raft_cfg(
            nodes=("n1", "n2"),
            max_timeouts=4,
            max_crashes=0,
            max_restarts=0,
            max_partitions=0,
            max_drops=0,
            max_dups=1,
            max_buffer=5,
            max_term=2,
        ),
    )
)
_register(
    Bug(
        "RaftOS#3",
        "raftos",
        "R3",
        CONFORMANCE,
        "new",
        "Unhandled exception during receiving messages",
        method="conformance",
    )
)
_register(
    Bug(
        "RaftOS#4",
        "raftos",
        "R4",
        VERIFICATION,
        "new",
        "Prematurely stopping checking commitment",
        invariant="CommitAdvanceComplete",
        paper_time="4min",
        paper_depth=14,
        paper_states=16938773,
        method="simulate",
        spec_factory=RaftOSSpec,
        config=_raft_cfg(max_crashes=0, max_restarts=0),
    )
)

# ---------------------------------------------------------------------------
# Xraft and Xraft-KV
# ---------------------------------------------------------------------------

_register(
    Bug(
        "Xraft#1",
        "xraft",
        "X1",
        VERIFICATION,
        "new",
        "More than one valid leader in the same term",
        invariant="ElectionSafety",
        paper_time="3s",
        paper_depth=8,
        paper_states=3534,
        method="bfs",
        spec_factory=XraftSpec,
        config=_raft_cfg(
            values=("v1",),
            max_timeouts=3,
            max_requests=0,
            max_crashes=0,
            max_restarts=0,
            max_partitions=0,
        ),
    )
)
_register(
    Bug(
        "Xraft#2",
        "xraft",
        "X2",
        CONFORMANCE,
        "new",
        "Unhandled concurrent modification exception",
        method="conformance",
    )
)
_register(
    Bug(
        "Xraft-KV#1",
        "xraft-kv",
        "XKV1",
        VERIFICATION,
        "new",
        "Read operations do not satisfy linearizability",
        invariant="LinearizableReads",
        paper_time="15s",
        paper_depth=10,
        paper_states=124409,
        method="bfs",
        spec_factory=XraftKVSpec,
        config=_raft_cfg(
            values=("v1",),
            max_timeouts=3,
            max_requests=1,
            max_crashes=0,
            max_restarts=0,
            max_partitions=1,
            max_buffer=3,
            max_term=2,
        ),
    )
)

# ---------------------------------------------------------------------------
# ZooKeeper
# ---------------------------------------------------------------------------

_register(
    Bug(
        "ZooKeeper#1",
        "zookeeper",
        "ZK1",
        VERIFICATION,
        "old",
        "Votes are not total ordered",
        invariant="VoteTotalOrder",
        paper_time="4min",
        paper_depth=41,
        paper_states=7625160,
        method="bfs",
        spec_factory=ZabSpec,
        config=ZabConfig(
            nodes=("n1", "n2", "n3"),
            max_timeouts=2,
            max_requests=0,
            max_crashes=0,
            max_restarts=0,
            max_partitions=0,
            max_buffer=4,
            max_epoch=2,
        ),
    )
)


def bugs_for_system(system: str) -> Tuple[Bug, ...]:
    return tuple(b for b in BUGS.values() if b.system == system)


def verification_bugs() -> Tuple[Bug, ...]:
    return tuple(b for b in BUGS.values() if b.stage == VERIFICATION)


def get_bug(bug_id: str) -> Bug:
    return BUGS[bug_id]
