"""The paper's timing-diagram scenarios as guided event sequences.

Figure 6 (PySyncObj#4/#3) and Figure 7 (WRaft#1+#2) are reconstructed as
explicit pick sequences for :func:`repro.core.guided.run_scenario`; the
ZooKeeper#1 election/discovery scenario and the WRaft#3 snapshot-conflict
setup are provided the same way.  Benches regenerate the figures from
these; tests assert the violations they end in; conformance tests replay
them against the implementations.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.guided import ScenarioResult, run_scenario
from ..specs.raft import PySyncObjSpec, RaftConfig, WRaftSpec
from ..specs.zab import ZabConfig, ZabSpec

__all__ = [
    "FIG6_CONFIG",
    "FIG7_CONFIG",
    "ZK1_CONFIG",
    "fig6_picks",
    "fig7_picks",
    "zk1_picks",
    "wraft3_picks",
    "run_fig6",
    "run_fig7",
    "run_zk1",
]

#: Figure 6 model configuration (PySyncObj, 3 nodes, one workload value)
FIG6_CONFIG = RaftConfig(
    nodes=("n1", "n2", "n3"),
    values=("v1",),
    max_timeouts=5,
    max_requests=1,
    max_crashes=0,
    max_restarts=0,
    max_partitions=1,
    max_buffer=3,
    max_term=2,
)

#: Figure 7 model configuration (WRaft, 3 nodes, two workload values)
FIG7_CONFIG = RaftConfig(
    nodes=("n1", "n2", "n3"),
    values=("v1", "v2"),
    max_timeouts=4,
    max_requests=2,
    max_crashes=0,
    max_restarts=0,
    max_partitions=1,
    max_drops=0,
    max_dups=0,
    max_compactions=1,
    max_buffer=8,
    max_term=3,
)

#: ZooKeeper#1 model configuration
ZK1_CONFIG = ZabConfig(
    nodes=("n1", "n2", "n3"),
    max_timeouts=2,
    max_requests=0,
    max_crashes=0,
    max_restarts=0,
    max_partitions=0,
    max_buffer=4,
    max_epoch=2,
)


def fig6_picks() -> List:
    """Figure 6: the non-monotonic match index in PySyncObj.

    Leader A (n1) loses its AppendEntries to B (n2) behind a partition
    while aggressively advancing B's next index; after healing, two
    heartbeats are rejected, each reject triggers a full retry, and the
    interleaving of the empty heartbeat's response (Inext = prev + 1)
    with the buggy entries response (Inext off by one) drives the match
    index backwards: 0 -> 1 -> 0.
    """
    return [
        ("PartitionStart", ("n1", "n3")),
        ("ElectionTimeout", "n1"),
        ("ReceiveMessage", "n1", "n3"),  # RequestVote -> C
        ("ReceiveMessage", "n3", "n1"),  # grant -> A leads term 1
        ("ClientRequest", "n1"),         # e1
        ("HeartbeatTimeout", "n1"),      # AE(e1) to B lost; next[B] -> 2
        ("PartitionHeal",),
        ("HeartbeatTimeout", "n1"),      # AE0: prev=1, empty
        ("HeartbeatTimeout", "n1"),      # AE1: prev=1, empty
        ("ReceiveMessage", "n1", "n2"),  # B rejects AE0 (Inext=1)
        ("ReceiveMessage", "n1", "n2"),  # B rejects AE1 (Inext=1)
        ("ReceiveMessage", "n2", "n1"),  # A handles reject -> retry AE_sync(e1)
        ("HeartbeatTimeout", "n1"),      # AE2: prev=1, empty
        ("ReceiveMessage", "n2", "n1"),  # A handles reject -> retry AE3(e1)
        ("ReceiveMessage", "n1", "n2"),  # B accepts AE_sync (buggy Inext=1)
        ("ReceiveMessage", "n1", "n2"),  # B accepts AE2 (Inext=2)
        ("ReceiveMessage", "n1", "n2"),  # B accepts AE3 (buggy Inext=1)
        ("ReceiveMessage", "n2", "n1"),  # match[B] = 0
        ("ReceiveMessage", "n2", "n1"),  # match[B] = 1
        ("ReceiveMessage", "n2", "n1"),  # match[B] = 0  <- the violation
    ]


def fig7_picks() -> List:
    """Figure 7: data inconsistency from WRaft#1 + WRaft#2.

    Leader C commits nothing but appends e1 behind a partition; A is
    elected on the other side, commits e2, compacts it into a snapshot,
    and after healing sends C a (necessarily empty) AppendEntries instead
    of the snapshot (W2); C accepts it and advances its commit index over
    its conflicting e1 (W1).
    """

    def ae_with_entry(t):
        return (
            t.action == "ReceiveMessage"
            and t.args[:2] == ("n1", "n2")
            and t.args[2]["type"] == "AppendEntries"
            and len(t.args[2]["entries"]) == 1
        )

    def success_aer(t):
        return (
            t.action == "ReceiveMessage"
            and t.args[:2] == ("n2", "n1")
            and t.args[2]["type"] == "AppendEntriesResponse"
            and t.args[2]["success"]
        )

    def ae_to_c(t):
        return (
            t.action == "ReceiveMessage"
            and t.args[:2] == ("n1", "n3")
            and t.args[2]["type"] == "AppendEntries"
        )

    return [
        ("ElectionTimeout", "n3"),       # C campaigns
        ("ReceiveMessage", "n3", "n1"),  # A votes C
        ("ReceiveMessage", "n1", "n3"),  # C leads term 1
        ("ClientRequest", "n3"),         # C appends e1 (never replicated)
        ("PartitionStart", ("n1", "n2")),
        ("ElectionTimeout", "n1"),       # A campaigns at term 2
        ("ReceiveMessage", "n1", "n2"),  # B votes A
        ("ReceiveMessage", "n2", "n1"),  # A leads term 2
        ("ClientRequest", "n1"),         # A appends e2
        ("HeartbeatTimeout", "n1"),      # replicate e2 to B
        ae_with_entry,                   # B appends e2
        success_aer,                     # A commits e2
        ("CompactLog", "n1"),            # e2 disappears into the snapshot
        ("PartitionHeal",),
        ("HeartbeatTimeout", "n1"),      # W2: AE instead of snapshot to C
        ae_to_c,                         # W1: C accepts, commits its e1
    ]


def zk1_picks() -> List:
    """ZooKeeper#1: two mutually unordered votes for the same candidate.

    n3 is elected and finishes discovery/sync (current epoch 1); its
    re-election proposes a vote at epoch 1 while n1 still holds the
    epoch-0 vote for n3 — under the v3.4.3 comparator, which ignores the
    epoch, neither vote beats the other.
    """
    return [
        ("ElectionTimeout", "n3"),
        ("ReceiveMessage", "n3", "n1"),  # n1 adopts n3, follows
        ("ReceiveMessage", "n1", "n3"),  # n3 sees the echo -> LEADING
        ("ReceiveMessage", "n1", "n3"),  # FOLLOWERINFO
        ("ReceiveMessage", "n3", "n1"),  # LEADERINFO
        ("ReceiveMessage", "n1", "n3"),  # ACKEPOCH
        ("ReceiveMessage", "n3", "n1"),  # NEWLEADER
        ("ReceiveMessage", "n1", "n3"),  # ACKLD -> broadcast phase, epoch 1
        ("ElectionTimeout", "n3"),       # new vote at epoch 1 <- violation
    ]


def wraft3_picks() -> List:
    """WRaft#3 setup: a correct leader sends C a snapshot that conflicts
    with C's log.  The buggy *implementation* rejects it and lags — a
    conformance-checking discrepancy, not a spec-level violation."""
    picks = fig7_picks()[:-2]  # up to and including the partition heal
    return picks + [
        ("HeartbeatTimeout", "n1"),      # correct: InstallSnapshot to C
        lambda t: (
            t.action == "ReceiveMessage"
            and t.args[:2] == ("n1", "n3")
            and t.args[2]["type"] == "InstallSnapshot"
        ),
    ]


def run_fig6(bug: str = "P4") -> ScenarioResult:
    invariant = {
        "P4": "MatchIndexMonotonic",
        "P3": "NextIndexAboveMatchIndex",
    }[bug]
    spec = PySyncObjSpec(FIG6_CONFIG, bugs={bug}, only_invariants=[invariant])
    return run_scenario(spec, fig6_picks(), allow_ambiguous=True)


def run_fig7(bugs: Tuple[str, ...] = ("W1", "W2")) -> ScenarioResult:
    spec = WRaftSpec(
        FIG7_CONFIG, bugs=bugs, only_invariants=["CommittedLogConsistency"]
    )
    return run_scenario(spec, fig7_picks(), allow_ambiguous=True)


def run_zk1() -> ScenarioResult:
    spec = ZabSpec(ZK1_CONFIG, bugs={"ZK1"}, only_invariants=["VoteTotalOrder"])
    return run_scenario(spec, zk1_picks(), allow_ambiguous=True)
