"""Registry of the 23 bugs from Table 2 of the paper."""

from .detect import DetectionResult, detect
from .registry import BUGS, Bug, bugs_for_system, get_bug, verification_bugs

__all__ = [
    "BUGS",
    "Bug",
    "DetectionResult",
    "bugs_for_system",
    "detect",
    "get_bug",
    "verification_bugs",
]
