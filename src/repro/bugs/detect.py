"""Specification-level bug detection driver (the Table 2 run).

For each verification-stage bug the registry records the configuration
and budget constraint the paper's Algorithm 1 would pick; this module
runs the corresponding exploration — exhaustive BFS for the shallow bugs
(minimal-depth counterexamples, §5.1.1), random-walk simulation for the
bugs whose paper-reported depth (20+) is beyond what the pure-Python BFS
reaches in test budgets (see EXPERIMENTS.md for the substitution note).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Optional

from ..core.engine import SearchStats, StopReason
from ..core.explorer import bfs_explore
from ..core.simulation import simulate
from ..core.violation import Violation
from .registry import Bug

__all__ = ["DetectionResult", "detect"]


@dataclasses.dataclass
class DetectionResult:
    """Outcome of a specification-level detection run for one bug."""

    bug: Bug
    found: bool
    violation: Optional[Violation]
    elapsed: float
    distinct_states: int = 0  # BFS runs
    walks: int = 0  # simulation runs
    method: str = "bfs"
    #: unified exploration counters, comparable across BFS and simulation
    stats: Optional[SearchStats] = None
    stop_reason: Optional[StopReason] = None

    @property
    def depth(self) -> Optional[int]:
        return self.violation.depth if self.violation else None

    def as_row(self) -> dict:
        stats = self.stats
        return {
            "bug": self.bug.bug_id,
            "consequence": self.bug.consequence,
            "found": self.found,
            "time_s": round(self.elapsed, 2),
            "depth": self.depth,
            "states": self.distinct_states or None,
            "walks": self.walks or None,
            "states_per_s": (
                round(stats.states_per_second)
                if stats and stats.elapsed > 0
                else None
            ),
            "stop": str(self.stop_reason) if self.stop_reason else None,
            "paper_time": self.bug.paper_time,
            "paper_depth": self.bug.paper_depth,
            "paper_states": self.bug.paper_states,
        }


def detect(
    bug: Bug,
    time_budget: float = 120.0,
    max_states: int = 2_000_000,
    n_walks: int = 20_000,
    max_depth: int = 40,
    seed: int = 0,
    metrics: Optional[Any] = None,
    progress: Optional[Any] = None,
    compiled: bool = True,
) -> DetectionResult:
    """Run the registry-recorded detection for one verification bug."""
    if bug.stage != "verification":
        raise ValueError(f"{bug.bug_id} is found by conformance checking, not exploration")
    spec = bug.make_spec()
    started = time.monotonic()
    if bug.method == "bfs":
        result = bfs_explore(
            spec,
            max_states=max_states,
            time_budget=time_budget,
            metrics=metrics,
            progress=progress,
            compiled=compiled,
        )
        return DetectionResult(
            bug=bug,
            found=result.found_violation,
            violation=result.violation,
            elapsed=time.monotonic() - started,
            distinct_states=result.stats.distinct_states,
            method="bfs",
            stats=result.stats,
            stop_reason=result.stop_reason,
        )
    sim = simulate(
        spec,
        n_walks=n_walks,
        max_depth=max_depth,
        seed=seed,
        stop_on_violation=True,
        time_budget=time_budget,
        metrics=metrics,
        compiled=compiled,
    )
    violation = sim.first_violation
    return DetectionResult(
        bug=bug,
        found=violation is not None,
        violation=violation,
        elapsed=time.monotonic() - started,
        walks=sim.n_walks,
        method="simulate",
        stats=sim.stats,
        stop_reason=sim.stop_reason,
    )
