"""SCC-based fair-cycle search: the lasso finder.

The algorithm is the standard automata-theoretic one, specialized to
weak fairness so no property automaton product is needed:

1. Restrict the materialized graph to the property's *avoid region* —
   the states a violating cycle must stay inside (¬P for ◇P and □◇P,
   ¬Q for P ⤳ Q).
2. Compute the strongly connected components of the restriction with an
   **iterative** Tarjan (explicit stack; deep graphs must not hit the
   recursion limit).
3. An SCC admits a fair cycle iff it can cycle at all (size > 1, a
   self-edge, or an implicit stutter loop at an unexpanded sink) and,
   for every weak-fairness declaration, it contains an edge firing one
   of the declared actions *or* a state where they are all raw-disabled.
   A stutter loop is fair only when every declaration is raw-disabled
   there — a state that merely hit the exploration boundary, with fair
   actions still enabled, can never seed a lasso.
4. The minimal prefix is a breadth-first search from the (eligible)
   roots to any fair SCC, restricted per property kind; ``leads_to``
   runs the BFS over the ⟨state, pending-obligation⟩ product.
5. A concrete cycle is stitched inside the SCC through the fairness
   witnesses via shortest paths, and the whole lasso is re-executed
   into a replayable :class:`LassoTrace` (every step a genuine spec
   transition, same idiom as safety-trace reconstruction).

All iteration orders are sorted by fingerprint, so the emitted lasso is
byte-stable across runs, stores, and hash seeds.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.engine import (
    CompactStore,
    SearchResult,
    StateStore,
    find_matching_step,
)
from repro.core.explorer import BFSExplorer
from repro.core.spec import Spec, WeakFairness
from repro.core.state import Rec, fingerprint
from repro.core.trace import Trace
from repro.core.violation import Violation

from .graph import TemporalGraph, materialize_graph
from .properties import TemporalProperty

__all__ = [
    "LassoTrace",
    "TemporalResult",
    "check_graph",
    "check_temporal",
    "explore_and_check",
]

#: Version stamp of the lasso artifact schema.
LASSO_VERSION = 1


@dataclasses.dataclass(frozen=True)
class LassoTrace:
    """A liveness counterexample: finite prefix + fair cycle.

    ``trace`` holds the prefix followed by the cycle as one replayable
    sequence of genuine transitions.  ``cycle_start`` indexes into
    ``trace.states()``: the cycle runs from that state to the final
    state, whose fingerprint equals the cycle-start state's (they may be
    permuted variants under symmetry reduction).  A ``stuttering`` lasso
    has no explicit cycle steps — the behavior repeats the final state
    forever (the TLC stuttering convention); its formal cycle length
    is 1.
    """

    trace: Trace
    cycle_start: int
    stuttering: bool = False

    @property
    def prefix_length(self) -> int:
        return self.cycle_start

    @property
    def cycle_length(self) -> int:
        return 1 if self.stuttering else self.trace.depth - self.cycle_start

    def cycle_states(self) -> List[Rec]:
        states = list(self.trace.states())
        return states[self.cycle_start:]

    def to_dict(self) -> dict:
        return {
            "lasso_version": LASSO_VERSION,
            "cycle_start": self.cycle_start,
            "stuttering": self.stuttering,
            "trace": self.trace.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "LassoTrace":
        version = raw.get("lasso_version")
        if version != LASSO_VERSION:
            raise ValueError(f"unsupported lasso_version {version!r}")
        return cls(
            trace=Trace.from_dict(raw["trace"]),
            cycle_start=int(raw["cycle_start"]),
            stuttering=bool(raw["stuttering"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, text: str) -> "LassoTrace":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        if self.stuttering:
            cycle = "stuttering at the final state"
        else:
            labels = ", ".join(
                step.label for step in self.trace.steps[self.cycle_start:]
            )
            cycle = f"cycle of {self.cycle_length} steps ({labels})"
        return f"lasso: prefix of {self.prefix_length} steps, then {cycle}"


@dataclasses.dataclass
class TemporalResult:
    """Outcome of checking one temporal property over an explored graph."""

    property: TemporalProperty
    lasso: Optional[LassoTrace]
    scc_count: int
    graph_size: int
    boundary_edges: int
    elapsed: float = 0.0

    @property
    def holds(self) -> bool:
        """No fair lasso in the explored graph (absence is *bounded*)."""
        return self.lasso is None

    def violation(self) -> Optional[Violation]:
        if self.lasso is None:
            return None
        return Violation(
            self.property.name,
            self.lasso.trace,
            kind="liveness",
            detail=self.lasso.describe(),
        )

    def describe(self) -> str:
        verdict = (
            "no fair cycle (holds on the explored graph)"
            if self.lasso is None
            else f"VIOLATED — {self.lasso.describe()}"
        )
        bounded = (
            f"; {self.boundary_edges} boundary edges (absence is bounded)"
            if self.boundary_edges and self.lasso is None
            else ""
        )
        return (
            f"{self.property.describe()}: {verdict}"
            f" [{self.graph_size} states, {self.scc_count} SCCs]{bounded}"
        )


# ---------------------------------------------------------------------------
# iterative Tarjan
# ---------------------------------------------------------------------------


def _tarjan_sccs(adj: Dict[Any, List[Any]], nodes: List[Any]) -> List[List[Any]]:
    """Strongly connected components, iteratively (explicit stack)."""
    index: Dict[Any, int] = {}
    low: Dict[Any, int] = {}
    on_stack: Set[Any] = set()
    stack: List[Any] = []
    sccs: List[List[Any]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Frames: (node, iterator position into adj[node]).
        work: List[List[Any]] = [[root, 0]]
        while work:
            frame = work[-1]
            node, pos = frame
            if pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            targets = adj[node]
            while frame[1] < len(targets):
                child = targets[frame[1]]
                frame[1] += 1
                if child not in index:
                    work.append([child, 0])
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: List[Any] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


# ---------------------------------------------------------------------------
# fair-cycle search
# ---------------------------------------------------------------------------


def _region_adj(graph: TemporalGraph, region: Set[Any]) -> Dict[Any, List[Any]]:
    """Deduplicated, sorted region-restricted successor lists."""
    return {
        u: sorted({v for _a, v in graph.succ[u] if v in region})
        for u in region
    }


def _scc_witnesses(
    graph: TemporalGraph,
    scc: List[Any],
    scc_set: Set[Any],
    fairness: Sequence[WeakFairness],
    stutter: bool,
) -> Optional[List[Tuple]]:
    """Fairness witnesses for an SCC, or None when no fair cycle exists.

    For a real SCC each declaration contributes either ``("node", fp)``
    (a state where the set is raw-disabled) or ``("edge", u, action,
    v)`` (an intra-SCC edge firing a declared action); the stitched
    cycle visits them all.  A stutter singleton needs no witnesses but
    every declaration must be raw-disabled at it.
    """
    witnesses: List[Tuple] = []
    for wf in fairness:
        if stutter:
            if graph.raw_enabled(scc[0], wf):
                return None
            continue
        disabled = None
        for fp in scc:
            if not graph.raw_enabled(fp, wf):
                disabled = fp
                break
        if disabled is not None:
            witnesses.append(("node", disabled))
            continue
        edge = None
        for u in scc:
            for action, v in graph.succ[u]:
                if v in scc_set and action in wf.actions:
                    edge = ("edge", u, action, v)
                    break
            if edge is not None:
                break
        if edge is None:
            return None
        witnesses.append(edge)
    return witnesses


def _shortest_path(
    graph: TemporalGraph, region: Set[Any], src: Any, dst: Any
) -> List[Tuple[str, Any]]:
    """Shortest ``(action, fp)`` step list src→dst inside ``region``."""
    if src == dst:
        return []
    parents: Dict[Any, Tuple[Any, str]] = {src: (None, "")}
    queue: deque = deque([src])
    while queue:
        node = queue.popleft()
        for action, child in graph.succ[node]:
            if child not in region or child in parents:
                continue
            parents[child] = (node, action)
            if child == dst:
                steps: List[Tuple[str, Any]] = []
                cursor = dst
                while cursor != src:
                    parent, act = parents[cursor]
                    steps.append((act, cursor))
                    cursor = parent
                steps.reverse()
                return steps
            queue.append(child)
    raise RuntimeError("no path inside an SCC; the SCC computation is broken")


def _shortest_cycle(
    graph: TemporalGraph, region: Set[Any], entry: Any
) -> List[Tuple[str, Any]]:
    """Shortest non-empty cycle entry→entry inside ``region``."""
    best: Optional[List[Tuple[str, Any]]] = None
    for action, child in graph.succ[entry]:
        if child not in region:
            continue
        if child == entry:
            return [(action, entry)]
        if best is None:
            tail = _shortest_path(graph, region, child, entry)
            best = [(action, child)] + tail
    if best is None:
        raise RuntimeError("entry node cannot cycle; the SCC computation is broken")
    # The first in-region successor plus its shortest tail is minimal up
    # to one step; scan the remaining successors for a strictly shorter
    # closure to keep the cycle canonical.
    for action, child in graph.succ[entry]:
        if child not in region or child == entry:
            continue
        tail = _shortest_path(graph, region, child, entry)
        if 1 + len(tail) < len(best):
            best = [(action, child)] + tail
    return best


def _stitch_cycle(
    graph: TemporalGraph,
    region: Set[Any],
    scc_set: Set[Any],
    entry: Any,
    witnesses: List[Tuple],
) -> List[Tuple[str, Any]]:
    """A fair closed walk entry→…→entry through every witness."""
    inner = scc_set & region
    steps: List[Tuple[str, Any]] = []
    cursor = entry
    for witness in witnesses:
        if witness[0] == "node":
            steps += _shortest_path(graph, inner, cursor, witness[1])
            cursor = witness[1]
        else:
            _, u, action, v = witness
            steps += _shortest_path(graph, inner, cursor, u)
            steps.append((action, v))
            cursor = v
    steps += _shortest_path(graph, inner, cursor, entry)
    if not steps:
        steps = _shortest_cycle(graph, inner, entry)
    return steps


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


def check_graph(
    graph: TemporalGraph,
    prop: TemporalProperty,
    metrics: Optional[Any] = None,
) -> TemporalResult:
    """Search ``graph`` for a fair lasso violating ``prop``."""
    started = time.monotonic()
    spec = graph.spec
    fairness = prop.effective_fairness(spec)
    p_of = {fp: bool(prop.predicate(state)) for fp, state in graph.states.items()}
    if prop.kind == "leads_to":
        q_of = {fp: bool(prop.goal(state)) for fp, state in graph.states.items()}
        region = {fp for fp, q in q_of.items() if not q}
    else:
        q_of = {}
        region = {fp for fp, p in p_of.items() if not p}

    adj = _region_adj(graph, region)
    sccs = _tarjan_sccs(adj, sorted(region))
    scc_of: Dict[Any, int] = {}
    for i, scc in enumerate(sccs):
        for fp in scc:
            scc_of[fp] = i

    # Which SCCs admit a fair cycle, and through which witnesses.
    fair: Dict[int, List[Tuple]] = {}
    scc_has_p: Dict[int, bool] = {}
    for i, scc in enumerate(sccs):
        scc_set = set(scc)
        stutter = len(scc) == 1 and scc[0] in graph.stuttering
        cyclic = len(scc) > 1 or any(
            v == scc[0] for _a, v in graph.succ[scc[0]] if v in region
        )
        if not cyclic and not stutter:
            continue
        witnesses = _scc_witnesses(graph, scc, scc_set, fairness, stutter)
        if witnesses is None:
            continue
        fair[i] = witnesses
        scc_has_p[i] = any(p_of[fp] for fp in scc)

    if metrics is not None:
        from repro.obs.metrics import TEMPORAL_SCC_COUNT

        metrics.gauge(TEMPORAL_SCC_COUNT).set(len(sccs))

    lasso: Optional[LassoTrace] = None
    if fair:
        lasso = _find_minimal_lasso(
            graph, prop, p_of, q_of, region, sccs, scc_of, fair, scc_has_p
        )
    if lasso is not None and metrics is not None:
        from repro.obs.metrics import TEMPORAL_CYCLE_LEN

        metrics.histogram(TEMPORAL_CYCLE_LEN).observe(lasso.cycle_length)
    return TemporalResult(
        property=prop,
        lasso=lasso,
        scc_count=len(sccs),
        graph_size=len(graph),
        boundary_edges=graph.boundary_edges,
        elapsed=time.monotonic() - started,
    )


def _find_minimal_lasso(
    graph: TemporalGraph,
    prop: TemporalProperty,
    p_of: Dict[Any, bool],
    q_of: Dict[Any, bool],
    region: Set[Any],
    sccs: List[List[Any]],
    scc_of: Dict[Any, int],
    fair: Dict[int, List[Tuple]],
    scc_has_p: Dict[int, bool],
) -> Optional[LassoTrace]:
    """Minimal-prefix BFS to a fair SCC, then stitch and re-execute."""
    kind = prop.kind

    def entry_hit(fp: Any, pending: int) -> bool:
        i = scc_of.get(fp)
        if i is None or i not in fair:
            return False
        if kind != "leads_to":
            return True
        return pending == 1 or scc_has_p[i]

    if kind == "eventually":
        roots = [r for r in graph.roots if not p_of[r]]
        allowed = region
    elif kind == "always_eventually":
        roots = list(graph.roots)
        allowed = set(graph.states)
    else:
        roots = list(graph.roots)
        allowed = set(graph.states)

    def pending_of(fp: Any, prev: int) -> int:
        if kind != "leads_to":
            return 0
        if q_of[fp]:
            return 0
        if p_of[fp]:
            return 1
        return prev

    # BFS over (fp, pending); parents reconstruct the prefix path.
    parents: Dict[Tuple[Any, int], Tuple[Optional[Tuple[Any, int]], str]] = {}
    queue: deque = deque()
    hit: Optional[Tuple[Any, int]] = None
    for root in roots:
        key = (root, pending_of(root, 0))
        if key in parents:
            continue
        parents[key] = (None, "")
        if entry_hit(*key):
            hit = key
            break
        queue.append(key)
    while hit is None and queue:
        node, pending = queue.popleft()
        for action, child in graph.succ[node]:
            if child not in allowed:
                continue
            key = (child, pending_of(child, pending))
            if key in parents:
                continue
            parents[key] = ((node, pending), action)
            if entry_hit(*key):
                hit = key
                break
            queue.append(key)
    if hit is None:
        return None

    # Prefix steps, root first.
    prefix: List[Tuple[str, Any]] = []
    cursor: Optional[Tuple[Any, int]] = hit
    while True:
        parent, action = parents[cursor]
        if parent is None:
            break
        prefix.append((action, cursor[0]))
        cursor = parent
    prefix.reverse()
    root_fp = cursor[0]

    entry, entry_pending = hit
    i = scc_of[entry]
    scc_set = set(sccs[i])
    stutter = len(sccs[i]) == 1 and entry in graph.stuttering
    if stutter:
        cycle: List[Tuple[str, Any]] = []
    else:
        witnesses = list(fair[i])
        if kind == "leads_to" and entry_pending == 0:
            # The obligation comes from inside the cycle: route through
            # the smallest P-state of the SCC.
            p_node = min(fp for fp in sccs[i] if p_of[fp])
            witnesses.append(("node", p_node))
        cycle = _stitch_cycle(graph, region, scc_set, entry, witnesses)

    return _assemble(graph, root_fp, prefix, cycle, stuttering=stutter)


def _assemble(
    graph: TemporalGraph,
    root_fp: Any,
    prefix: List[Tuple[str, Any]],
    cycle: List[Tuple[str, Any]],
    stuttering: bool,
) -> LassoTrace:
    """Re-execute the fingerprint path into a replayable concrete trace."""
    spec = graph.spec
    canonical = graph.reducer.canonical if graph.reducer else None
    state = graph.states[root_fp]
    trace = Trace(state)
    for action, fp in prefix + cycle:
        step = find_matching_step(spec, state, fp, action, canonical, graph.fp_fn)
        if step is None:
            raise RuntimeError(
                f"lasso re-execution failed at depth {trace.depth}: no successor"
                f" matches fingerprint for action {action}"
            )
        trace = trace.extend(step)
        state = step.state
    return LassoTrace(trace=trace, cycle_start=len(prefix), stuttering=stuttering)


def check_temporal(
    spec: Spec,
    store: Union[StateStore, Sequence[StateStore]],
    prop: TemporalProperty,
    symmetry: bool = False,
    fp_fn=fingerprint,
    metrics: Optional[Any] = None,
    graph: Optional[TemporalGraph] = None,
) -> TemporalResult:
    """Materialize the explored graph from ``store`` and check ``prop``.

    Pass a prebuilt ``graph`` to amortize materialization over several
    properties.
    """
    if graph is None:
        graph = materialize_graph(spec, store, symmetry=symmetry, fp_fn=fp_fn)
    return check_graph(graph, prop, metrics=metrics)


def explore_and_check(
    spec: Spec,
    properties: Sequence[TemporalProperty],
    symmetry: bool = False,
    max_states: Optional[int] = None,
    max_depth: Optional[int] = None,
    time_budget: Optional[float] = None,
    compiled: bool = True,
    metrics: Optional[Any] = None,
    store: Optional[StateStore] = None,
) -> Tuple[List[TemporalResult], SearchResult]:
    """Run a fresh BFS census and check each property over its graph.

    The exploration does not stop on safety violations — the graph must
    cover everything reachable within the budgets for the cycle search
    to mean anything.
    """
    store = store if store is not None else CompactStore()
    explorer = BFSExplorer(
        spec,
        symmetry=symmetry,
        max_states=max_states,
        max_depth=max_depth,
        time_budget=time_budget,
        stop_on_violation=False,
        store=store,
        compiled=compiled,
        metrics=metrics,
    )
    search = explorer.run()
    graph = materialize_graph(spec, store, symmetry=symmetry)
    results = [check_graph(graph, prop, metrics=metrics) for prop in properties]
    return results, search
