"""Materialize the explored state graph from a state store.

The stores only persist the BFS *spanning tree* — one ``(fp, parent,
action)`` edge per state, the edge it was first discovered through.
Cycle detection needs the full successor adjacency, so the materializer
replays the exploration: it recovers every stored state by breadth-first
re-execution from the stored roots, re-expands each state through
``spec.successors``, and keeps exactly the edges whose (canonical)
target fingerprint is in the stored visited set.  Every edge in the
materialized graph is therefore a genuine spec transition between
explored states; successors the exploration never recorded (possible
only when a run stopped on a budget) are dropped and counted in
``boundary_edges``.

States pruned by the state constraint, and frontier states a stopped
run never expanded, have no outgoing edges here.  Following the TLC
convention, every such sink gets an implicit **stutter** self-loop
(``STUTTER_ACTION``); whether stuttering there forever is a *fair*
behavior is decided later against the weak-fairness declarations, using
raw ``spec.successors`` enabledness — so a state that merely ran into
the exploration boundary, with fair actions still enabled, can never
seed a lasso.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import StateStore, TracelessStoreError
from repro.core.spec import Spec, WeakFairness
from repro.core.state import Rec, fingerprint
from repro.core.symmetry import SymmetryReducer

__all__ = ["STUTTER_ACTION", "TemporalGraph", "materialize_graph"]

#: Label of the implicit self-loop on states with no explored successors.
STUTTER_ACTION = "<stutter>"


@dataclasses.dataclass
class TemporalGraph:
    """The explored state graph, fingerprint-keyed and deterministic.

    ``succ`` lists are sorted by ``(action, target_fp)`` so every walk
    over the graph — SCC computation, prefix BFS, cycle stitching — is
    reproducible across runs, stores, and hash seeds (fingerprints are
    process-stable blake2b digests).
    """

    #: fingerprint -> concrete state (canonical representative under symmetry)
    states: Dict[Any, Rec]
    #: fingerprint -> sorted [(action, target_fp), ...] over explored edges
    succ: Dict[Any, List[Tuple[str, Any]]]
    #: root fingerprints, sorted
    roots: List[Any]
    #: fingerprints with no outgoing explored edges (implicit stutter loop)
    stuttering: frozenset
    #: successors recomputed but not in the visited set (exploration boundary)
    boundary_edges: int
    #: states in the store the replay could not reach (diagnostic; 0 for
    #: any run whose store was written by our own BFS)
    unreached: int
    spec: Spec
    reducer: Optional[SymmetryReducer]
    fp_fn: Callable[[Rec], Any]

    def __len__(self) -> int:
        return len(self.states)

    def nodes(self) -> List[Any]:
        return sorted(self.states)

    def raw_enabled(self, fp: Any, wf: WeakFairness) -> bool:
        """Is the fairness set enabled at ``fp``, ignoring the graph?

        Uses the declaration's ``enabled`` override when present, else
        asks ``spec.successors`` whether any action in the set yields a
        transition.  Actions the spec does not define count as disabled.
        """
        state = self.states[fp]
        if wf.enabled is not None:
            return bool(wf.enabled(state))
        for action in self.spec.cached_actions():
            if action.name not in wf.actions:
                continue
            for _ in action.transitions(state):
                return True
        return False


def _as_stores(store: Union[StateStore, Sequence[StateStore]]) -> List[StateStore]:
    if isinstance(store, StateStore):
        return [store]
    return list(store)


def materialize_graph(
    spec: Spec,
    store: Union[StateStore, Sequence[StateStore]],
    symmetry: bool = False,
    fp_fn: Callable[[Rec], Any] = fingerprint,
) -> TemporalGraph:
    """Rebuild the explored successor graph from one or more stores.

    ``store`` may be a list (the per-worker shards of a parallel run);
    their edges and roots are unioned.  ``symmetry`` must match the
    setting the store was explored under, or the recomputed fingerprints
    will not line up with the stored ones.
    """
    stores = _as_stores(store)
    for st in stores:
        if st.traceless:
            raise TracelessStoreError(
                "temporal checking needs the explored state graph, but a"
                " fingerprint-only store keeps no parent edges: drop --fast"
                " (or rerun the exploration without fast mode) before"
                " --temporal / check-liveness"
            )

    visited: set = set()
    root_states: Dict[Any, Rec] = {}
    for st in stores:
        for fp, _parent, _action in st.edges():
            visited.add(fp)
        for fp, state in st.roots():
            root_states[fp] = state

    reducer = SymmetryReducer(spec.symmetry_sets(), key=fp_fn) if symmetry else None
    canonical = reducer.canonical if reducer else (lambda s: s)

    states: Dict[Any, Rec] = {}
    succ: Dict[Any, List[Tuple[str, Any]]] = {}
    boundary = 0

    queue: deque = deque()
    for fp in sorted(root_states):
        state = canonical(root_states[fp])
        if fp not in visited:
            # A root recorded after the edge log was cut (cannot happen
            # with our writers, but keep the union total).
            visited.add(fp)
        states[fp] = state
        queue.append(fp)

    while queue:
        fp = queue.popleft()
        if fp in succ:
            continue
        state = states[fp]
        out: List[Tuple[str, Any]] = []
        if spec.state_constraint(state):
            for transition in spec.successors(state):
                target = canonical(transition.target)
                tfp = fp_fn(target)
                if tfp not in visited:
                    boundary += 1
                    continue
                out.append((transition.action, tfp))
                if tfp not in states:
                    states[tfp] = target
                    queue.append(tfp)
        out = sorted(set(out))
        succ[fp] = out

    stuttering = frozenset(fp for fp, out in succ.items() if not out)
    return TemporalGraph(
        states=states,
        succ=succ,
        roots=sorted(root_states),
        stuttering=stuttering,
        boundary_edges=boundary,
        unreached=len(visited) - len(states),
        spec=spec,
        reducer=reducer,
        fp_fn=fp_fn,
    )
