"""Real liveness checking: lasso detection over the explored state graph.

SandTable itself (§3.1) approximates liveness through safety — the
progress-rate measurement in :mod:`repro.core.liveness` can only say
"suspicious".  This package does the TLC thing instead: it materializes
the explored state graph from any :class:`~repro.core.engine.StateStore`
(including a reopened ``DiskStore`` run directory, so liveness can be
checked *post hoc* on a completed safety run), restricts it to the
states that violate an "eventually" obligation, and searches for a
**lasso** — a reachable prefix followed by a cycle that is fair with
respect to the spec's weak-fairness declarations.  A lasso is a definite
counterexample; absence of one is bounded by the explored graph (see
DESIGN.md, "Temporal checking").

The pieces:

* :mod:`~repro.temporal.properties` — the ``TemporalProperty`` DSL:
  ``eventually(P)``, ``always_eventually(P)``, ``leads_to(P, Q)``, plus
  named ready-made properties for the Raft-family specs
  (``eventually-elects-leader``, ``eventually-commits``, ...).
* :mod:`~repro.temporal.graph` — the graph materializer over the
  ``edges()``/``roots()`` store seams.
* :mod:`~repro.temporal.lasso` — iterative-Tarjan SCC fair-cycle search
  emitting a minimal-prefix :class:`~repro.temporal.lasso.LassoTrace`.
"""

from repro.core.spec import WeakFairness

from .graph import STUTTER_ACTION, TemporalGraph, materialize_graph
from .lasso import (
    LassoTrace,
    TemporalResult,
    check_graph,
    check_temporal,
    explore_and_check,
)
from .properties import (
    PROPERTY_NAMES,
    TemporalProperty,
    always_eventually,
    eventually,
    leads_to,
    resolve_property,
)

__all__ = [
    "WeakFairness",
    "TemporalProperty",
    "eventually",
    "always_eventually",
    "leads_to",
    "resolve_property",
    "PROPERTY_NAMES",
    "TemporalGraph",
    "materialize_graph",
    "STUTTER_ACTION",
    "LassoTrace",
    "TemporalResult",
    "check_graph",
    "check_temporal",
    "explore_and_check",
]
