"""The temporal-property DSL.

Three property shapes cover the liveness obligations the paper's Table 2
bugs need (and what TLC users actually write):

* ``eventually(P)`` — ◇P: every behavior eventually reaches a P-state.
  A counterexample is a fair lasso whose prefix *and* cycle stay inside
  ¬P, starting from a ¬P initial state.
* ``always_eventually(P)`` — □◇P: P holds infinitely often.  A
  counterexample is any reachable fair cycle inside ¬P (the prefix may
  pass through P-states).
* ``leads_to(P, Q)`` — P ⤳ Q: every P-state is eventually followed by a
  Q-state.  A counterexample is a fair cycle inside ¬Q together with a
  pending obligation: either the cycle itself contains a P-state, or
  the prefix reaches a P-state and then stays inside ¬Q up to the
  cycle.

Fairness comes from ``spec.weak_fairness()`` plus any per-property
``fairness`` declarations; the effective set is the union.  Predicates
must be pure functions of the state and — when checked under symmetry
reduction — symmetric under the spec's ``symmetry_sets``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

from repro.core.spec import Spec, WeakFairness
from repro.core.state import Rec

__all__ = [
    "TemporalProperty",
    "eventually",
    "always_eventually",
    "leads_to",
    "resolve_property",
    "PROPERTY_NAMES",
]

#: The three property shapes, named after their TLA+ reading.
KINDS = ("eventually", "always_eventually", "leads_to")


@dataclasses.dataclass(frozen=True)
class TemporalProperty:
    """One temporal obligation over specification states."""

    name: str
    kind: str  # one of KINDS
    predicate: Callable[[Rec], bool]  # P
    goal: Optional[Callable[[Rec], bool]] = None  # Q, for leads_to only
    fairness: Tuple[WeakFairness, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown temporal kind {self.kind!r}; expected one of {KINDS}")
        if (self.kind == "leads_to") != (self.goal is not None):
            raise ValueError("leads_to takes exactly two predicates; the others exactly one")

    def describe(self) -> str:
        if self.kind == "eventually":
            return f"<>{self.name}"
        if self.kind == "always_eventually":
            return f"[]<>{self.name}"
        return f"{self.name} ~> goal"

    def effective_fairness(self, spec: Spec) -> Tuple[WeakFairness, ...]:
        """Spec-level fairness plus this property's own, declaration order."""
        merged = list(spec.weak_fairness())
        seen = {wf.name for wf in merged}
        for wf in self.fairness:
            if wf.name not in seen:
                merged.append(wf)
                seen.add(wf.name)
        return tuple(merged)


def eventually(
    predicate: Callable[[Rec], bool],
    name: str = "P",
    fairness: Tuple[WeakFairness, ...] = (),
) -> TemporalProperty:
    """◇P — every fair behavior eventually satisfies ``predicate``."""
    return TemporalProperty(name, "eventually", predicate, fairness=tuple(fairness))


def always_eventually(
    predicate: Callable[[Rec], bool],
    name: str = "P",
    fairness: Tuple[WeakFairness, ...] = (),
) -> TemporalProperty:
    """□◇P — ``predicate`` holds infinitely often on every fair behavior."""
    return TemporalProperty(name, "always_eventually", predicate, fairness=tuple(fairness))


def leads_to(
    predicate: Callable[[Rec], bool],
    goal: Callable[[Rec], bool],
    name: str = "P~>Q",
    fairness: Tuple[WeakFairness, ...] = (),
) -> TemporalProperty:
    """P ⤳ Q — every ``predicate``-state is eventually followed by ``goal``."""
    return TemporalProperty(name, "leads_to", predicate, goal=goal, fairness=tuple(fairness))


# ---------------------------------------------------------------------------
# named ready-made properties for the Raft-family specs (CLI surface)
# ---------------------------------------------------------------------------


def _nodes_of(spec: Spec) -> tuple:
    nodes = getattr(spec, "nodes", None)
    if not nodes:
        raise ValueError(
            f"spec {spec.name!r} has no `nodes` attribute; the named temporal"
            " properties are defined for the Raft-family and zab specs —"
            " construct a TemporalProperty directly instead"
        )
    return tuple(nodes)


def _leader_elected(spec: Spec) -> TemporalProperty:
    nodes = _nodes_of(spec)
    leaders = ("Leader", "Leading")  # Raft-family role / zab role
    return eventually(
        lambda state: any(state["role"][n] in leaders for n in nodes),
        name="eventually-elects-leader",
    )


def _commits(spec: Spec) -> TemporalProperty:
    nodes = _nodes_of(spec)
    return eventually(
        lambda state: any(state["commitIndex"][n] >= 1 for n in nodes),
        name="eventually-commits",
    )


def _quorum_commits(spec: Spec) -> TemporalProperty:
    nodes = _nodes_of(spec)
    quorum = len(nodes) // 2 + 1
    return eventually(
        lambda state: sum(1 for n in nodes if state["commitIndex"][n] >= 1) >= quorum,
        name="eventually-quorum-commits",
    )


def _replicated_uncommitted(nodes, quorum):
    """A quorum-replicated log index the leader has not committed yet.

    Replication is judged on actual log contents, not on the leader's
    ``matchIndex`` bookkeeping — bugs in exactly that bookkeeping
    (PySyncObj#4's non-monotonic match index) are what this predicate
    needs to expose.  Only current-term entries count, mirroring the
    commit rule.
    """

    def pending(state: Rec) -> bool:
        for leader in nodes:
            if state["role"][leader] != "Leader":
                continue
            log = state["log"][leader]
            for index in range(state["commitIndex"][leader] + 1, len(log) + 1):
                entry = log[index - 1]
                if entry["term"] != state["currentTerm"][leader]:
                    continue
                replicas = sum(
                    1
                    for n in nodes
                    if len(state["log"][n]) >= index
                    and state["log"][n][index - 1] == entry
                )
                if replicas >= quorum:
                    return True
        return False

    return pending


def _commit_caught_up(spec: Spec) -> TemporalProperty:
    """□◇(no quorum-replicated entry is stuck uncommitted at its leader).

    The exact form of the paper's "cluster fails to make progress"
    liveness bugs (RaftOS#4): a current-term entry is acknowledged by a
    quorum, yet the leader's commit index never advances past it.
    """
    nodes = _nodes_of(spec)
    quorum = len(nodes) // 2 + 1
    pending = _replicated_uncommitted(nodes, quorum)
    return always_eventually(
        lambda state: not pending(state),
        name="always-commit-caught-up",
    )


_REGISTRY = {
    "eventually-elects-leader": _leader_elected,
    "eventually-commits": _commits,
    "eventually-quorum-commits": _quorum_commits,
    "always-commit-caught-up": _commit_caught_up,
}

#: The property names `sandtable check --temporal` accepts.
PROPERTY_NAMES = tuple(sorted(_REGISTRY))


def resolve_property(spec: Spec, name: str) -> TemporalProperty:
    """Resolve a CLI property name against ``spec``, or raise ValueError."""
    factory = _REGISTRY.get(name)
    if factory is None:
        available = ", ".join(PROPERTY_NAMES)
        raise ValueError(
            f"unknown temporal property {name!r}; available: {available}"
        )
    return factory(spec)
