"""ZooKeeper / ZAB specification (§4.2, Figure 2, Table 2 bug ZooKeeper#1).

Models the four ZAB phases the paper exercises:

* **Fast leader election (FLE)** — logical-clock vote rounds with
  NOTIFICATION exchange and the ``totalOrderPredicate`` vote comparator
  (Figure 3's handler);
* **Discovery** — FOLLOWERINFO / LEADERINFO / ACKEPOCH epoch negotiation;
* **Synchronization** — NEWLEADER / ACKLD / UPTODATE history transfer;
* **Broadcast** — PROPOSE / ACK / COMMIT two-phase commit.

As in the paper's adaptation of the community system spec, worker-thread
interleavings are removed: each message is handled in one atomic action.

Seeded behaviors (flags):

``ZK1``   Votes are not totally ordered (ZOOKEEPER-1419, v3.4.3): the
          vote comparator ignores the proposer's epoch, so two votes for
          the same candidate at different epochs are mutually unordered —
          elections may never settle or elect multiple leaders.
``FIG4``  The Figure 4 modeling discrepancy: ``CheckLeader`` demands
          ``round = logicalClock`` when the vote names the node itself,
          which the real implementation does not; conformance checking
          flags the divergence (the spec-side bug the paper uses to
          demonstrate the workflow).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.spec import (
    Action,
    Invariant,
    Spec,
    Transition,
    TransitionInvariant,
    WeakFairness,
)
from ..core.state import Rec
from .network import TcpModel, bipartitions

__all__ = ["ZabConfig", "ZabSpec", "LOOKING", "FOLLOWING", "LEADING", "vote_beats"]

LOOKING = "LOOKING"
FOLLOWING = "FOLLOWING"
LEADING = "LEADING"

ELECTION = "ELECTION"
DISCOVERY = "DISCOVERY"
SYNC = "SYNC"
BROADCAST = "BROADCAST"

NOTIFICATION = "Notification"
FOLLOWERINFO = "FollowerInfo"
LEADERINFO = "LeaderInfo"
ACKEPOCH = "AckEpoch"
NEWLEADER = "NewLeader"
ACKLD = "AckLeader"
UPTODATE = "UpToDate"
PROPOSE = "Propose"
ACK = "Ack"
COMMIT = "Commit"

NOBODY = ""


@dataclasses.dataclass(frozen=True)
class ZabConfig:
    """Model configuration and budget constraints for the ZAB spec."""

    nodes: Tuple[str, ...] = ("n1", "n2", "n3")
    values: Tuple[str, ...] = ("v1", "v2")
    max_timeouts: int = 3
    max_requests: int = 1
    max_crashes: int = 1
    max_restarts: int = 1
    max_partitions: int = 1
    max_buffer: int = 4
    max_epoch: int = 3


def _inc(value: int) -> int:
    return value + 1


def make_vote(leader: str, zxid: Tuple[int, int], epoch: int, round_: int) -> Rec:
    """A vote as carried by NOTIFICATION messages and held by nodes."""
    return Rec(leader=leader, zxid=zxid, epoch=epoch, round=round_)


def vote_beats(new: Rec, cur: Rec, buggy: bool = False) -> bool:
    """The FLE ``totalOrderPredicate``.

    Correct: lexicographic on (epoch, zxid, leader id).  With ``buggy``
    (ZooKeeper#1) the proposer epoch is ignored, so votes differing only
    in epoch are mutually unordered.
    """
    if buggy:
        return (new["zxid"], new["leader"]) > (cur["zxid"], cur["leader"])
    return (new["epoch"], new["zxid"], new["leader"]) > (
        cur["epoch"],
        cur["zxid"],
        cur["leader"],
    )


class ZabSpec(Spec):
    """ZooKeeper's ZAB protocol as a state machine."""

    name = "zookeeper"
    supported_bugs: FrozenSet[str] = frozenset({"ZK1", "FIG4"})

    def __init__(
        self,
        config: Optional[ZabConfig] = None,
        bugs: Iterable[str] = (),
        only_invariants: Optional[Iterable[str]] = None,
    ):
        self.config = config or ZabConfig()
        self.nodes = self.config.nodes
        self.bugs = frozenset(bugs)
        unknown = self.bugs - self.supported_bugs
        if unknown:
            raise ValueError(f"zookeeper spec does not support {sorted(unknown)}")
        self.only_invariants = (
            frozenset(only_invariants) if only_invariants is not None else None
        )
        self.net = TcpModel(self.nodes)
        self._actions = self._build_actions()
        self._invariants = self._filter(self._build_invariants())
        self._transition_invariants = self._filter(self._build_transition_invariants())

    def _filter(self, invariants: Sequence) -> Tuple:
        if self.only_invariants is None:
            return tuple(invariants)
        return tuple(i for i in invariants if i.name in self.only_invariants)

    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def init_states(self) -> Iterator[Rec]:
        zero = Rec({n: 0 for n in self.nodes})
        empty_votes = Rec({n: Rec() for n in self.nodes})
        initial_vote = Rec(
            {
                n: make_vote(n, (0, 0), 0, 0)
                for n in self.nodes
            }
        )
        variables = {
            "zbRole": Rec({n: LOOKING for n in self.nodes}),
            "phase": Rec({n: ELECTION for n in self.nodes}),
            "logicalClock": zero,
            "currentVote": initial_vote,
            "recvVotes": empty_votes,
            "acceptedEpoch": zero,
            "currentEpoch": zero,
            "history": Rec({n: () for n in self.nodes}),
            "lastCommitted": zero,
            "leaderOf": Rec({n: NOBODY for n in self.nodes}),
            "followerInfos": Rec({n: frozenset() for n in self.nodes}),
            "epochAcks": Rec({n: frozenset() for n in self.nodes}),
            "syncAcks": Rec({n: frozenset() for n in self.nodes}),
            "txnAcks": Rec({n: Rec() for n in self.nodes}),
            "txnCounter": zero,
            "alive": Rec({n: True for n in self.nodes}),
            "eventCounter": Rec(
                timeouts=0, requests=0, crashes=0, restarts=0, partitions=0
            ),
        }
        variables.update(self.net.init_vars())
        yield Rec(variables)

    def actions(self) -> Sequence[Action]:
        return self._actions

    def invariants(self) -> Sequence[Invariant]:
        return self._invariants

    def transition_invariants(self) -> Sequence[TransitionInvariant]:
        return self._transition_invariants

    def _build_actions(self) -> List[Action]:
        return [
            Action("ReceiveMessage", self._act_receive, kind="message"),
            Action("ElectionTimeout", self._act_election_timeout, kind="timeout"),
            Action("ClientRequest", self._act_client_request, kind="client"),
            Action("NodeCrash", self._act_crash, kind="failure"),
            Action("NodeRestart", self._act_restart, kind="failure"),
            Action("PartitionStart", self._act_partition_start, kind="failure"),
            Action("PartitionHeal", self._act_partition_heal, kind="failure"),
        ]

    def state_constraint(self, state: Rec) -> bool:
        return self.net.max_queue_length(state) <= self.config.max_buffer

    def symmetry_sets(self) -> Sequence[Tuple[str, ...]]:
        # Node ids participate in the vote total order, so node symmetry
        # would not preserve the election outcome; values are symmetric.
        return ()

    def weak_fairness(self) -> Sequence[WeakFairness]:
        """Progress machinery is fair; failures need never happen.

        Mirrors the Raft family (see ``RaftSpec.weak_fairness``): the
        budgets live in the action guards, so exhaustion reads as
        "disabled" and an unexpanded exploration frontier can never
        seed a lasso.
        """
        return (
            WeakFairness.of("wf-deliver", "ReceiveMessage"),
            WeakFairness.of("wf-timeout", "ElectionTimeout"),
            WeakFairness.of("wf-client", "ClientRequest"),
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _last_zxid(self, state: Rec, node: str) -> Tuple[int, int]:
        history = state["history"][node]
        return history[-1]["zxid"] if history else (0, 0)

    def _beats(self, new: Rec, cur: Rec) -> bool:
        return vote_beats(new, cur, buggy="ZK1" in self.bugs)

    def _send(self, state: Rec, src: str, dst: str, message: Rec) -> Rec:
        if not state["alive"][dst]:
            return state
        return self.net.send(state, src, dst, message)

    def _broadcast(self, state: Rec, src: str, message: Rec) -> Rec:
        for dst in self.nodes:
            if dst != src:
                state = self._send(state, src, dst, message)
        return state

    def _notification(self, state: Rec, node: str) -> Rec:
        vote = state["currentVote"][node]
        return Rec(
            type=NOTIFICATION,
            vote=vote,
            round=state["logicalClock"][node],
            state=state["zbRole"][node],
        )

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def _act_election_timeout(self, state: Rec):
        """A node (re-)enters leader election.

        Covers follower session timeout, leader quorum loss and a LOOKING
        node starting a new vote round.
        """
        counter = state["eventCounter"]
        if counter["timeouts"] >= self.config.max_timeouts:
            return
        for node in self.nodes:
            if not state["alive"][node]:
                continue
            if state["logicalClock"][node] >= self.config.max_epoch:
                continue
            new = self._enter_election(state, node)
            new = new.set("eventCounter", counter.apply("timeouts", _inc))
            yield (node,), new, "look"

    def _enter_election(self, state: Rec, node: str) -> Rec:
        round_ = state["logicalClock"][node] + 1
        vote = make_vote(
            node,
            self._last_zxid(state, node),
            state["currentEpoch"][node],
            round_,
        )
        state = state.update(
            zbRole=state["zbRole"].set(node, LOOKING),
            phase=state["phase"].set(node, ELECTION),
            logicalClock=state["logicalClock"].set(node, round_),
            currentVote=state["currentVote"].set(node, vote),
            recvVotes=state["recvVotes"].set(
                node, Rec({node: Rec(vote=vote, state=LOOKING)})
            ),
            leaderOf=state["leaderOf"].set(node, NOBODY),
            followerInfos=state["followerInfos"].set(node, frozenset()),
            epochAcks=state["epochAcks"].set(node, frozenset()),
            syncAcks=state["syncAcks"].set(node, frozenset()),
            txnAcks=state["txnAcks"].set(node, Rec()),
        )
        return self._broadcast(state, node, self._notification(state, node))

    def _act_client_request(self, state: Rec):
        counter = state["eventCounter"]
        if counter["requests"] >= self.config.max_requests:
            return
        value = self.config.values[counter["requests"] % len(self.config.values)]
        for node in self.nodes:
            if not state["alive"][node]:
                continue
            if state["zbRole"][node] != LEADING or state["phase"][node] != BROADCAST:
                continue
            zxid = (state["currentEpoch"][node], state["txnCounter"][node] + 1)
            txn = Rec(zxid=zxid, val=value)
            new = state.update(
                history=state["history"].apply(node, lambda h: h + (txn,)),
                txnCounter=state["txnCounter"].set(node, zxid[1]),
                txnAcks=state["txnAcks"].apply(
                    node, lambda acks: acks.set(zxid, frozenset({node}))
                ),
                eventCounter=counter.apply("requests", _inc),
            )
            new = self._broadcast(new, node, Rec(type=PROPOSE, txn=txn))
            yield (node, value), new, "request"

    def _act_crash(self, state: Rec):
        counter = state["eventCounter"]
        if counter["crashes"] >= self.config.max_crashes:
            return
        for node in self.nodes:
            if not state["alive"][node]:
                continue
            new = state.update(
                alive=state["alive"].set(node, False),
                eventCounter=counter.apply("crashes", _inc),
            )
            new = self.net.clear_node(new, node)
            yield (node,), new, "crash"

    def _act_restart(self, state: Rec):
        counter = state["eventCounter"]
        if counter["restarts"] >= self.config.max_restarts:
            return
        for node in self.nodes:
            if state["alive"][node]:
                continue
            # The history, epochs and committed point are durable; the
            # election state (logical clock, votes) is volatile.
            vote = make_vote(
                node,
                self._last_zxid(state, node),
                state["currentEpoch"][node],
                0,
            )
            new = state.update(
                alive=state["alive"].set(node, True),
                zbRole=state["zbRole"].set(node, LOOKING),
                phase=state["phase"].set(node, ELECTION),
                logicalClock=state["logicalClock"].set(node, 0),
                currentVote=state["currentVote"].set(node, vote),
                recvVotes=state["recvVotes"].set(node, Rec()),
                leaderOf=state["leaderOf"].set(node, NOBODY),
                followerInfos=state["followerInfos"].set(node, frozenset()),
                epochAcks=state["epochAcks"].set(node, frozenset()),
                syncAcks=state["syncAcks"].set(node, frozenset()),
                txnAcks=state["txnAcks"].set(node, Rec()),
                eventCounter=counter.apply("restarts", _inc),
            )
            yield (node,), new, "restart"

    def _act_partition_start(self, state: Rec):
        counter = state["eventCounter"]
        if counter["partitions"] >= self.config.max_partitions:
            return
        if self.net.is_partitioned(state):
            return
        for group in bipartitions(self.nodes):
            new = self.net.apply_partition(state, group)
            new = new.set("eventCounter", counter.apply("partitions", _inc))
            yield (tuple(sorted(group)),), new, "partition"

    def _act_partition_heal(self, state: Rec):
        if not self.net.is_partitioned(state):
            return
        yield (), self.net.heal(state), "heal"

    def _act_receive(self, state: Rec):
        for src, dst, message in self.net.deliverable(state):
            if not state["alive"][dst]:
                continue
            _, consumed = self.net.consume(state, src, dst)
            for new, branch in self._dispatch(consumed, src, dst, message):
                yield (src, dst, message), new, branch

    def _dispatch(self, state: Rec, src: str, dst: str, message: Rec):
        handlers = {
            NOTIFICATION: self._on_notification,
            FOLLOWERINFO: self._on_follower_info,
            LEADERINFO: self._on_leader_info,
            ACKEPOCH: self._on_ack_epoch,
            NEWLEADER: self._on_new_leader,
            ACKLD: self._on_ack_leader,
            UPTODATE: self._on_up_to_date,
            PROPOSE: self._on_propose,
            ACK: self._on_ack,
            COMMIT: self._on_commit,
        }
        handler = handlers.get(message["type"])
        if handler is None:
            raise AssertionError(f"unknown ZAB message: {message['type']}")
        yield from handler(state, src, dst, message)

    # ------------------------------------------------------------------
    # fast leader election (Figure 3's handler)
    # ------------------------------------------------------------------

    def _on_notification(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != LOOKING:
            # A settled node answers LOOKING peers with its own vote so
            # they can catch up (the else-branch in Figure 3).
            if m["state"] == LOOKING:
                reply = self._notification(state, dst)
                yield self._send(state, dst, src, reply), "not-reply-settled"
            else:
                yield state, "not-ignored"
            return

        my_round = state["logicalClock"][dst]
        if m["state"] == LOOKING:
            if m["round"] > my_round:
                # Newer round: jump to it, keep the better vote.
                state = state.set(
                    "logicalClock", state["logicalClock"].set(dst, m["round"])
                )
                my_vote = state["currentVote"][dst]
                best = m["vote"] if self._beats(m["vote"], my_vote) else my_vote
                state = state.set("currentVote", state["currentVote"].set(dst, best))
                state = state.set(
                    "recvVotes",
                    state["recvVotes"].set(
                        dst,
                        Rec(
                            {
                                dst: Rec(vote=best, state=LOOKING),
                                src: Rec(vote=m["vote"], state=m["state"]),
                            }
                        ),
                    ),
                )
                state = self._broadcast(state, dst, self._notification(state, dst))
                branch = "not-new-round"
            elif m["round"] < my_round:
                # Stale round: tell the sender about ours (Figure 3:
                # reply when the peer is LOOKING with an older clock).
                reply = self._notification(state, dst)
                yield self._send(state, dst, src, reply), "not-stale-round"
                return
            else:
                adopted = False
                if self._beats(m["vote"], state["currentVote"][dst]):
                    state = state.set(
                        "currentVote", state["currentVote"].set(dst, m["vote"])
                    )
                    adopted = True
                state = state.set(
                    "recvVotes",
                    state["recvVotes"].apply(
                        dst,
                        lambda votes: votes.update(
                            {
                                src: Rec(vote=m["vote"], state=m["state"]),
                                dst: Rec(
                                    vote=state["currentVote"][dst], state=LOOKING
                                ),
                            }
                        ),
                    ),
                )
                if adopted:
                    state = self._broadcast(state, dst, self._notification(state, dst))
                branch = "not-adopt" if adopted else "not-count"
        else:
            # Vote from a settled (LEADING/FOLLOWING) peer: join its
            # leader if it proves a quorum in our round.
            state = state.set(
                "recvVotes",
                state["recvVotes"].apply(
                    dst,
                    lambda votes: votes.update({src: Rec(vote=m["vote"], state=m["state"])}),
                ),
            )
            branch = "not-settled-vote"

        decided = self._try_decide(state, dst)
        if decided is not None:
            state, decide_branch = decided
            yield state, decide_branch
        else:
            yield state, branch

    def _try_decide(self, state: Rec, node: str):
        """Decide the election once a quorum backs the current vote."""
        vote = state["currentVote"][node]
        votes = state["recvVotes"][node]
        backers = {
            peer
            for peer, record in votes.items()
            if record["vote"]["leader"] == vote["leader"]
        }
        if len(backers) < self.quorum():
            return None
        leader = vote["leader"]
        if not self._check_leader(state, node, votes, leader):
            return None
        if leader == node:
            return self._become_leading(state, node), "elect-leading"
        return self._become_following(state, node, leader), "elect-following"

    def _check_leader(self, state: Rec, node: str, votes: Rec, leader: str) -> bool:
        """Figure 4's CheckLeader predicate.

        The ``FIG4`` flag reinstates the modeling discrepancy the paper's
        conformance checking caught: requiring ``round = logicalClock``
        when electing oneself, which the implementation does not check.
        """
        if leader == node:
            if "FIG4" in self.bugs:
                vote = state["currentVote"][node]
                return vote["round"] == state["logicalClock"][node]
            return True
        record = votes.get(leader)
        if record is None:
            return False
        # Within an election round the leader-to-be is still LOOKING; a
        # settled peer proves itself with a LEADING vote.
        return record["state"] in (LOOKING, LEADING)

    def _become_leading(self, state: Rec, node: str) -> Rec:
        new_epoch = state["acceptedEpoch"][node] + 1
        return state.update(
            zbRole=state["zbRole"].set(node, LEADING),
            phase=state["phase"].set(node, DISCOVERY),
            leaderOf=state["leaderOf"].set(node, node),
            acceptedEpoch=state["acceptedEpoch"].set(node, new_epoch),
            followerInfos=state["followerInfos"].set(node, frozenset({node})),
            epochAcks=state["epochAcks"].set(node, frozenset({node})),
            syncAcks=state["syncAcks"].set(node, frozenset({node})),
        )

    def _become_following(self, state: Rec, node: str, leader: str) -> Rec:
        state = state.update(
            zbRole=state["zbRole"].set(node, FOLLOWING),
            phase=state["phase"].set(node, DISCOVERY),
            leaderOf=state["leaderOf"].set(node, leader),
        )
        info = Rec(type=FOLLOWERINFO, acceptedEpoch=state["acceptedEpoch"][node])
        return self._send(state, node, leader, info)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------

    def _on_follower_info(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != LEADING:
            yield state, "finfo-ignored"
            return
        epoch = max(state["acceptedEpoch"][dst], m["acceptedEpoch"] + 1)
        state = state.update(
            acceptedEpoch=state["acceptedEpoch"].set(dst, epoch),
            followerInfos=state["followerInfos"].apply(dst, lambda s: s | {src}),
        )
        reply = Rec(type=LEADERINFO, epoch=epoch)
        yield self._send(state, dst, src, reply), "finfo-accept"

    def _on_leader_info(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != FOLLOWING or state["leaderOf"][dst] != src:
            yield state, "linfo-ignored"
            return
        if m["epoch"] < state["acceptedEpoch"][dst]:
            # A stale leader: abandon it and look again.
            yield self._enter_election(state, dst), "linfo-stale-epoch"
            return
        state = state.set("acceptedEpoch", state["acceptedEpoch"].set(dst, m["epoch"]))
        reply = Rec(
            type=ACKEPOCH,
            currentEpoch=state["currentEpoch"][dst],
            lastZxid=self._last_zxid(state, dst),
        )
        yield self._send(state, dst, src, reply), "linfo-ack"

    def _on_ack_epoch(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != LEADING or state["phase"][dst] != DISCOVERY:
            yield state, "ackepoch-ignored"
            return
        acks = state["epochAcks"][dst] | {src}
        state = state.set("epochAcks", state["epochAcks"].set(dst, acks))
        # Synchronize this follower right away (NEWLEADER carries the
        # full history; DIFF/TRUNC/SNAP are abstracted away).
        sync = Rec(
            type=NEWLEADER,
            epoch=state["acceptedEpoch"][dst],
            history=state["history"][dst],
        )
        state = self._send(state, dst, src, sync)
        if len(acks) >= self.quorum() and state["phase"][dst] == DISCOVERY:
            state = state.set("phase", state["phase"].set(dst, SYNC))
            yield state, "ackepoch-quorum"
        else:
            yield state, "ackepoch-count"

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def _on_new_leader(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != FOLLOWING or state["leaderOf"][dst] != src:
            yield state, "newleader-ignored"
            return
        if m["epoch"] < state["acceptedEpoch"][dst]:
            # A stale synchronization from an outdated discovery round.
            yield self._enter_election(state, dst), "newleader-stale-epoch"
            return
        state = state.update(
            # Accepting the leader's history implies accepting its epoch
            # (the leader may have renegotiated since our ACKEPOCH).
            acceptedEpoch=state["acceptedEpoch"].set(
                dst, max(state["acceptedEpoch"][dst], m["epoch"])
            ),
            currentEpoch=state["currentEpoch"].set(dst, m["epoch"]),
            history=state["history"].set(dst, m["history"]),
            lastCommitted=state["lastCommitted"].set(
                dst, min(state["lastCommitted"][dst], len(m["history"]))
            ),
        )
        reply = Rec(type=ACKLD, epoch=m["epoch"])
        yield self._send(state, dst, src, reply), "newleader-ack"

    def _on_ack_leader(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != LEADING:
            yield state, "ackld-ignored"
            return
        acks = state["syncAcks"][dst] | {src}
        state = state.set("syncAcks", state["syncAcks"].set(dst, acks))
        if len(acks) >= self.quorum() and state["phase"][dst] != BROADCAST:
            state = state.update(
                phase=state["phase"].set(dst, BROADCAST),
                currentEpoch=state["currentEpoch"].set(
                    dst, state["acceptedEpoch"][dst]
                ),
                lastCommitted=state["lastCommitted"].set(
                    dst, len(state["history"][dst])
                ),
                txnCounter=state["txnCounter"].set(dst, 0),
            )
            state = self._broadcast_to_followers(
                state, dst, Rec(type=UPTODATE, epoch=state["currentEpoch"][dst])
            )
            yield state, "ackld-quorum"
        else:
            yield state, "ackld-count"

    def _broadcast_to_followers(self, state: Rec, leader: str, message: Rec) -> Rec:
        # The leader pushes phase messages only to the followers that
        # registered with it (sent FOLLOWERINFO) — leader-local knowledge,
        # matching the implementation.
        for peer in self.nodes:
            if peer != leader and peer in state["followerInfos"][leader]:
                state = self._send(state, leader, peer, message)
        return state

    def _on_up_to_date(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != FOLLOWING or state["leaderOf"][dst] != src:
            yield state, "uptodate-ignored"
            return
        state = state.update(
            phase=state["phase"].set(dst, BROADCAST),
            lastCommitted=state["lastCommitted"].set(dst, len(state["history"][dst])),
        )
        yield state, "uptodate"

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------

    def _on_propose(self, state: Rec, src: str, dst: str, m: Rec):
        if state["leaderOf"][dst] != src or state["zbRole"][dst] != FOLLOWING:
            yield state, "propose-ignored"
            return
        state = state.set("history", state["history"].apply(dst, lambda h: h + (m["txn"],)))
        reply = Rec(type=ACK, zxid=m["txn"]["zxid"])
        yield self._send(state, dst, src, reply), "propose-ack"

    def _on_ack(self, state: Rec, src: str, dst: str, m: Rec):
        if state["zbRole"][dst] != LEADING:
            yield state, "ack-ignored"
            return
        zxid = m["zxid"]
        acks = state["txnAcks"][dst]
        ackers = acks.get(zxid, frozenset()) | {src, dst}
        state = state.set("txnAcks", state["txnAcks"].apply(dst, lambda a: a.set(zxid, ackers)))
        if len(ackers) >= self.quorum():
            position = self._zxid_position(state, dst, zxid)
            if position is not None and position > state["lastCommitted"][dst]:
                state = state.set(
                    "lastCommitted", state["lastCommitted"].set(dst, position)
                )
                state = self._broadcast_to_followers(
                    state, dst, Rec(type=COMMIT, zxid=zxid)
                )
                yield state, "ack-commit"
                return
        yield state, "ack-count"

    def _zxid_position(self, state: Rec, node: str, zxid: Tuple[int, int]) -> Optional[int]:
        for position, txn in enumerate(state["history"][node], start=1):
            if txn["zxid"] == zxid:
                return position
        return None

    def _on_commit(self, state: Rec, src: str, dst: str, m: Rec):
        if state["leaderOf"][dst] != src:
            yield state, "commit-ignored"
            return
        position = self._zxid_position(state, dst, m["zxid"])
        if position is None or position <= state["lastCommitted"][dst]:
            yield state, "commit-stale"
            return
        state = state.set("lastCommitted", state["lastCommitted"].set(dst, position))
        yield state, "commit"

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def _build_invariants(self) -> List[Invariant]:
        return [
            Invariant("ZabLeaderSafety", self._inv_leader_safety),
            Invariant("VoteTotalOrder", self._inv_vote_total_order),
            Invariant("CommittedHistoryConsistency", self._inv_committed_consistency),
            Invariant("EpochWellFormed", self._inv_epoch_well_formed),
        ]

    def _inv_leader_safety(self, state: Rec) -> bool:
        """At most one alive *established* leader per epoch.

        A leader still in discovery/sync has not negotiated its epoch
        with a quorum yet, so only broadcast-phase leaders count.
        """
        epochs = [
            state["currentEpoch"][n]
            for n in self.nodes
            if state["alive"][n]
            and state["zbRole"][n] == LEADING
            and state["phase"][n] == BROADCAST
        ]
        return len(epochs) == len(set(epochs))

    def _visible_votes(self, state: Rec) -> List[Rec]:
        votes = [state["currentVote"][n] for n in self.nodes]
        for _, queue in state[self.net.MSGS].items_sorted():
            for message in queue:
                if message["type"] == NOTIFICATION:
                    votes.append(message["vote"])
        return votes

    def _inv_vote_total_order(self, state: Rec) -> bool:
        """Every pair of distinct visible votes must be strictly ordered
        by the system's own comparator (the ZooKeeper#1 property)."""
        votes = self._visible_votes(state)
        for i, a in enumerate(votes):
            for b in votes[i + 1 :]:
                ka = (a["epoch"], a["zxid"], a["leader"])
                kb = (b["epoch"], b["zxid"], b["leader"])
                if ka == kb:
                    continue
                forward = self._beats(a, b)
                backward = self._beats(b, a)
                if forward == backward:  # both or neither: not an order
                    return False
        return True

    def _inv_committed_consistency(self, state: Rec) -> bool:
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                shared = min(state["lastCommitted"][a], state["lastCommitted"][b])
                for position in range(shared):
                    if state["history"][a][position] != state["history"][b][position]:
                        return False
        return True

    def _inv_epoch_well_formed(self, state: Rec) -> bool:
        return all(
            state["currentEpoch"][n] <= state["acceptedEpoch"][n] for n in self.nodes
        )

    def _build_transition_invariants(self) -> List[TransitionInvariant]:
        return [
            TransitionInvariant("EpochMonotonic", self._tinv_epoch_monotonic),
            TransitionInvariant("CommitMonotonic", self._tinv_commit_monotonic),
        ]

    def _tinv_epoch_monotonic(self, pre: Rec, t: Transition) -> bool:
        post = t.target
        return all(
            post["acceptedEpoch"][n] >= pre["acceptedEpoch"][n]
            and post["currentEpoch"][n] >= pre["currentEpoch"][n]
            for n in self.nodes
        )

    def _tinv_commit_monotonic(self, pre: Rec, t: Transition) -> bool:
        post = t.target
        for n in self.nodes:
            if t.action == "NodeRestart" and t.args and t.args[0] == n:
                continue
            if t.branch == "newleader-ack" and t.args and t.args[1] == n:
                continue  # truncated by synchronization
            if post["lastCommitted"][n] < pre["lastCommitted"][n]:
                return False
        return True
