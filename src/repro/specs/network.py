"""Reusable network modules for specifications (§3.1, §4.2).

The paper ships formally specified network modules for both TCP and UDP
semantics, reused across all eight system specs.  These are their Python
counterparts: pure-functional helpers that read and update the network
variables inside a spec state.

TCP semantics
    Per-channel FIFO queues keyed by ``(src, dst)``.  No loss, duplication
    or reordering; only the head of a queue is deliverable.  The only
    failure is a *network partition*, which breaks every connection
    crossing the partition (clearing the in-flight queues) until the
    network heals.

UDP semantics
    A multiset of in-flight datagrams.  Any message is deliverable in any
    order, and messages may additionally be dropped or duplicated.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..core.state import Rec, thaw

__all__ = ["TcpModel", "UdpModel", "bipartitions"]


def bipartitions(nodes: Sequence[str]) -> List[frozenset]:
    """All ways to split ``nodes`` into two non-empty groups.

    Each split is identified by the group containing the first node (so
    each bipartition is enumerated once).
    """
    nodes = list(nodes)
    first, rest = nodes[0], nodes[1:]
    splits = []
    for r in range(len(rest) + 1):
        for combo in itertools.combinations(rest, r):
            group = frozenset({first, *combo})
            if len(group) < len(nodes):
                splits.append(group)
    return splits


def _crossing(group: frozenset, nodes: Sequence[str]) -> frozenset:
    """Unordered node pairs with one endpoint on each side of ``group``."""
    inside = group
    outside = frozenset(nodes) - group
    return frozenset(
        frozenset({a, b}) for a in inside for b in outside
    )


class TcpModel:
    """TCP-semantics network state: FIFO channels + partitions."""

    MSGS = "netMsgs"
    DISC = "netDisconnected"
    kind = "tcp"

    def __init__(self, nodes: Sequence[str]):
        self.nodes = tuple(nodes)

    # -- state initialization --------------------------------------------------

    def init_vars(self) -> dict:
        channels = Rec(
            {
                (src, dst): ()
                for src in self.nodes
                for dst in self.nodes
                if src != dst
            }
        )
        return {self.MSGS: channels, self.DISC: frozenset()}

    # -- connectivity -----------------------------------------------------------

    def blocked(self, state: Rec, src: str, dst: str) -> bool:
        return frozenset({src, dst}) in state[self.DISC]

    # -- sending / delivery -------------------------------------------------------

    def send(self, state: Rec, src: str, dst: str, msg: Rec) -> Rec:
        """Append ``msg`` to the (src, dst) channel; lost if partitioned."""
        if self.blocked(state, src, dst):
            return state
        return state.set(
            self.MSGS, state[self.MSGS].apply((src, dst), lambda q: q + (msg,))
        )

    def send_many(self, state: Rec, sends: Iterable[Tuple[str, str, Rec]]) -> Rec:
        for src, dst, msg in sends:
            state = self.send(state, src, dst, msg)
        return state

    def deliverable(self, state: Rec) -> Iterator[Tuple[str, str, Rec]]:
        """Head-of-queue messages on unblocked channels."""
        disc = state[self.DISC]
        if disc:
            for (src, dst), queue in state[self.MSGS].items_sorted():
                if queue and frozenset((src, dst)) not in disc:
                    yield src, dst, queue[0]
        else:
            for key, queue in state[self.MSGS].items_sorted():
                if queue:
                    yield key[0], key[1], queue[0]

    def consume(self, state: Rec, src: str, dst: str) -> Tuple[Rec, Rec]:
        """Pop the head of the (src, dst) channel; returns (msg, state')."""
        queue = state[self.MSGS][(src, dst)]
        if not queue:
            raise ValueError(f"channel {src}->{dst} is empty")
        new_state = state.set(
            self.MSGS, state[self.MSGS].set((src, dst), queue[1:])
        )
        return queue[0], new_state

    # -- failures ----------------------------------------------------------------

    def clear_node(self, state: Rec, node: str) -> Rec:
        """Drop every in-flight message to or from ``node`` (crash)."""
        channels = state[self.MSGS]
        cleared = {
            key: () for key in channels if node in key and channels[key]
        }
        if cleared:
            state = state.set(self.MSGS, channels.update(cleared))
        return state

    def apply_partition(self, state: Rec, group: frozenset) -> Rec:
        """Break all connections crossing the ``group`` / rest split."""
        crossing = _crossing(group, self.nodes)
        channels = state[self.MSGS]
        cleared = {
            key: ()
            for key in channels
            if frozenset(key) in crossing and channels[key]
        }
        if cleared:
            channels = channels.update(cleared)
        return state.update({self.MSGS: channels, self.DISC: crossing})

    def heal(self, state: Rec) -> Rec:
        return state.set(self.DISC, frozenset())

    def is_partitioned(self, state: Rec) -> bool:
        return bool(state[self.DISC])

    # -- constraints ---------------------------------------------------------------

    def max_queue_length(self, state: Rec) -> int:
        return max(
            (len(q) for _, q in state[self.MSGS].items_sorted()), default=0
        )

    def pending_count(self, state: Rec) -> int:
        return sum(len(q) for _, q in state[self.MSGS].items_sorted())


def _msg_key(item: Tuple[str, str, Rec]) -> str:
    src, dst, msg = item
    return repr((src, dst, thaw(msg)))


class UdpModel:
    """UDP-semantics network state: a multiset of in-flight datagrams.

    The multiset is stored as a tuple kept sorted by a canonical key so
    that two states with the same in-flight messages are identical
    regardless of send order (delivery is order-free anyway).
    """

    MSGS = "netMsgs"
    DISC = "netDisconnected"
    kind = "udp"

    def __init__(self, nodes: Sequence[str]):
        self.nodes = tuple(nodes)

    def init_vars(self) -> dict:
        return {self.MSGS: (), self.DISC: frozenset()}

    def blocked(self, state: Rec, src: str, dst: str) -> bool:
        return frozenset({src, dst}) in state[self.DISC]

    # -- sending / delivery ---------------------------------------------------------

    def send(self, state: Rec, src: str, dst: str, msg: Rec) -> Rec:
        """Put a datagram in flight; lost immediately if partitioned."""
        if self.blocked(state, src, dst):
            return state
        packet = (src, dst, msg)
        in_flight = tuple(
            sorted(state[self.MSGS] + (packet,), key=_msg_key)
        )
        return state.set(self.MSGS, in_flight)

    def send_many(self, state: Rec, sends: Iterable[Tuple[str, str, Rec]]) -> Rec:
        for src, dst, msg in sends:
            state = self.send(state, src, dst, msg)
        return state

    def deliverable(self, state: Rec) -> Iterator[Tuple[str, str, Rec]]:
        """Every distinct in-flight datagram on an unblocked path."""
        seen = set()
        for src, dst, msg in state[self.MSGS]:
            key = _msg_key((src, dst, msg))
            if key in seen or self.blocked(state, src, dst):
                continue
            seen.add(key)
            yield src, dst, msg

    def consume(self, state: Rec, src: str, dst: str, msg: Rec) -> Rec:
        """Remove one occurrence of the datagram from flight."""
        return self._remove_one(state, (src, dst, msg))

    # -- failures -----------------------------------------------------------------

    def drop(self, state: Rec, src: str, dst: str, msg: Rec) -> Rec:
        return self._remove_one(state, (src, dst, msg))

    def duplicate(self, state: Rec, src: str, dst: str, msg: Rec) -> Rec:
        in_flight = tuple(
            sorted(state[self.MSGS] + ((src, dst, msg),), key=_msg_key)
        )
        return state.set(self.MSGS, in_flight)

    def clear_node(self, state: Rec, node: str) -> Rec:
        """UDP keeps in-flight datagrams across a crash; nothing to clear.

        Kept for interface parity with :class:`TcpModel` so spec code can
        treat the two models uniformly on node crash.
        """
        return state

    def apply_partition(self, state: Rec, group: frozenset) -> Rec:
        crossing = _crossing(group, self.nodes)
        remaining = tuple(
            packet
            for packet in state[self.MSGS]
            if frozenset({packet[0], packet[1]}) not in crossing
        )
        return state.update({self.MSGS: remaining, self.DISC: crossing})

    def heal(self, state: Rec) -> Rec:
        return state.set(self.DISC, frozenset())

    def is_partitioned(self, state: Rec) -> bool:
        return bool(state[self.DISC])

    # -- constraints -----------------------------------------------------------------

    def max_queue_length(self, state: Rec) -> int:
        return len(state[self.MSGS])

    def pending_count(self, state: Rec) -> int:
        return len(state[self.MSGS])

    def _remove_one(self, state: Rec, packet: Tuple[str, str, Rec]) -> Rec:
        in_flight = list(state[self.MSGS])
        try:
            in_flight.remove(packet)
        except ValueError:
            raise ValueError(f"datagram not in flight: {packet}") from None
        return state.set(self.MSGS, tuple(in_flight))
