"""Formal specifications of the eight target systems (§3.1, §4.2).

``repro.specs.network`` provides the reusable TCP/UDP network modules;
``repro.specs.raft`` the seven Raft-family system specs; and
``repro.specs.zab`` the ZooKeeper/ZAB system spec.
"""

from .network import TcpModel, UdpModel, bipartitions
from .raft import (
    DaosRaftSpec,
    PySyncObjSpec,
    RaftConfig,
    RaftOSSpec,
    RaftSpec,
    RedisRaftSpec,
    WRaftSpec,
    XraftKVSpec,
    XraftSpec,
)

__all__ = [
    "DaosRaftSpec",
    "PySyncObjSpec",
    "RaftConfig",
    "RaftOSSpec",
    "RaftSpec",
    "RedisRaftSpec",
    "TcpModel",
    "UdpModel",
    "WRaftSpec",
    "XraftKVSpec",
    "XraftSpec",
    "bipartitions",
]
