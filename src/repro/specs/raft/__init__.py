"""Raft-family specifications for the seven Raft-based target systems."""

from .base import CANDIDATE, FOLLOWER, LEADER, PRECANDIDATE, RaftConfig, RaftSpec
from .daosraft import DaosRaftSpec
from .pysyncobj import PySyncObjSpec
from .raftos import RaftOSSpec
from .redisraft import RedisRaftSpec
from .wraft import WRaftSpec
from .xraft import XraftSpec
from .xraft_kv import XraftKVSpec

__all__ = [
    "CANDIDATE",
    "DaosRaftSpec",
    "FOLLOWER",
    "LEADER",
    "PRECANDIDATE",
    "PySyncObjSpec",
    "RaftConfig",
    "RaftOSSpec",
    "RaftSpec",
    "RedisRaftSpec",
    "WRaftSpec",
    "XraftKVSpec",
    "XraftSpec",
]
