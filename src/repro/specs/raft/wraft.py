"""WRaft specification (§4.2, Table 2 bugs).

WRaft is a C Raft library with log compaction, making no assumptions about
the network — the paper applies the UDP failure model (loss, duplication,
reordering) to it.

Seeded bugs (flags):

``W1``  Incorrectly appending log entries: the follower's commit target
        uses its *local* last index instead of the last entry the leader
        actually sent, committing entries the leader never replicated
        (Figure 7's acceptance side).
``W2``  Inconsistent committed log: when the peer's next index falls at or
        below the snapshot, the leader sends a (necessarily empty)
        AppendEntries instead of the snapshot (Figure 7's sending side).
``W4``  Current term is not monotonic: a stale AppendEntries response
        overwrites the current term with its smaller value.
``W5``  Retry messages include empty logs: the retry after a rejection
        forgets to load the entries.
``W7``  Next index <= match index: the rejection hint is adopted without
        clamping above the match index.

WRaft#3/#6/#8/#9 are liveness, resource-leak and modeling-stage bugs; they
are seeded in the *implementation* (:mod:`repro.systems.wraft`) and
surface during conformance checking, matching the paper's Stage column.
"""

from __future__ import annotations

from typing import List, Tuple

from ...core.spec import Invariant
from ...core.state import Rec
from . import messages as msg
from .base import RaftSpec

__all__ = ["WRaftSpec"]


class WRaftSpec(RaftSpec):
    name = "wraft"
    network_kind = "udp"
    has_compaction = True
    supported_bugs = frozenset({"W1", "W2", "W4", "W5", "W7"})

    # -- seeded bugs ------------------------------------------------------------

    def _follower_commit_target(
        self, state: Rec, node: str, icommit: int, prev: int, n_entries: int
    ) -> int:
        if "W1" in self.bugs:
            # Bug: commit up to min(leaderCommit, local last index); with
            # an empty AppendEntries this commits entries the leader never
            # sent (Figure 7).
            return min(icommit, self._last_index(state, node))
        return super()._follower_commit_target(state, node, icommit, prev, n_entries)

    def _send_snapshot(self, state: Rec, leader: str, peer: str) -> Rec:
        if "W2" not in self.bugs:
            return super()._send_snapshot(state, leader, peer)
        # Bug: an AppendEntries is sent although the needed entries are
        # compacted away — it carries no entries but does carry the
        # leader's commit index (Figure 7's AE1).
        next_index = state["nextIndex"][leader][peer]
        prev = next_index - 1
        prev_term = self._term_at(state, leader, prev) or 0
        entries = self._entries_from(state, leader, next_index)
        message = msg.append_entries(
            state["currentTerm"][leader],
            prev,
            prev_term,
            entries,
            state["commitIndex"][leader],
        )
        return self._send(state, leader, peer, message)

    def _stale_term_overwrite(self, state: Rec, src: str, dst: str, m: Rec):
        if "W4" not in self.bugs or m["term"] >= state["currentTerm"][dst]:
            return None
        # Bug: the response handler assigns the message term without
        # comparing it, so a reordered stale response rolls the term back.
        rolled = state.set(
            "currentTerm", state["currentTerm"].set(dst, m["term"])
        )
        return rolled, "aer-term-overwrite"

    def _select_entries(
        self, state: Rec, leader: str, peer: str, entries: Tuple[Rec, ...], retry: bool
    ) -> Tuple[Rec, ...]:
        if "W5" in self.bugs and retry:
            # Bug: the retry path forgets to load the entries.
            return ()
        return entries

    def _next_on_reject(self, state: Rec, leader: str, peer: str, hint: int) -> int:
        if "W7" in self.bugs:
            return hint
        return super()._next_on_reject(state, leader, peer, hint)

    # -- system-specific safety property (§4.2) ------------------------------------

    def _build_invariants(self) -> List[Invariant]:
        return super()._build_invariants() + [
            Invariant("RetryRequestsCarryEntries", self._inv_retry_nonempty),
        ]

    def _inv_retry_nonempty(self, state: Rec) -> bool:
        """Retrying requests must not contain an empty log (paper §4.2)."""
        for src, dst, message in state[self.net.MSGS]:
            if message["type"] != msg.APPEND_ENTRIES or not message["retry"]:
                continue
            if message["entries"]:
                continue
            # An empty retry is only legitimate when the sender truly has
            # nothing beyond prevLogIndex at that term.
            if (
                message["term"] == state["currentTerm"][src]
                and message["prevLogIndex"] < self._last_index(state, src)
            ):
                return False
        return True
