"""RedisRaft specification (§4.2).

RedisRaft is a downstream adoption of WRaft by Redis.  It resolved WRaft's
old bugs (#2, #4) and adds the PreVote extension; the paper found no
RedisRaft-specific bugs, but the new WRaft bugs #1, #5 and #7 were
confirmed by the RedisRaft developers, so those flags remain seedable.
"""

from __future__ import annotations

from .wraft import WRaftSpec

__all__ = ["RedisRaftSpec"]


class RedisRaftSpec(WRaftSpec):
    name = "redisraft"
    has_prevote = True
    # W2 and W4 were already fixed downstream; W1/W5/W7 still apply.
    supported_bugs = frozenset({"W1", "W5", "W7"})
