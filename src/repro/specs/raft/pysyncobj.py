"""PySyncObj specification (§4.2, Table 2 bugs #2–#5).

PySyncObj is a TCP-based Raft library.  Its distinctive optimization —
*aggressively* advancing the next index to the end of the log right after
sending AppendEntries, and resetting it from the follower-provided
``Inext`` hint on rejection — is modeled here because the paper identifies
it as the unverified extension behind bugs #3 and #4 (Figure 6).

Seeded bugs (flags):

``P2``  Commit index is not monotonic: a follower assigns
        ``min(leaderCommit, lastNew)`` without the forward-only check, so
        a freshly elected leader with a stale commit index drags the
        follower's commit index backwards.
``P3``  Next index <= match index: the leader adopts the rejection hint
        without clamping it above the match index.
``P4``  Match index is not monotonic: the follower computes a wrong
        ``Inext`` for AppendEntries that carry entries (off by one), and
        the leader assigns ``Inext - 1`` to the match index without a
        monotonicity check.
``P5``  The leader commits log entries of older terms: the quorum
        commitment rule skips the current-term check.
"""

from __future__ import annotations

from typing import Tuple

from ...core.state import Rec
from .base import RaftSpec

__all__ = ["PySyncObjSpec"]


class PySyncObjSpec(RaftSpec):
    name = "pysyncobj"
    network_kind = "tcp"
    supported_bugs = frozenset({"P2", "P3", "P4", "P5"})

    # -- the aggressive next-index optimization -----------------------------

    def _replicate_to(self, state: Rec, leader: str, peer: str, retry: bool = False) -> Rec:
        state = super()._replicate_to(state, leader, peer, retry)
        # After sending, PySyncObj optimistically assumes everything up to
        # the end of the log will replicate.
        last = self._last_index(state, leader)
        return state.set(
            "nextIndex",
            state["nextIndex"].apply(leader, lambda r: r.set(peer, last + 1)),
        )

    # -- seeded bugs -----------------------------------------------------------

    def _set_follower_commit(self, state: Rec, node: str, target: int) -> Rec:
        if "P2" not in self.bugs:
            return super()._set_follower_commit(state, node, target)
        # Bug: unchecked assignment; the commit index can move backwards.
        old = state["commitIndex"][node]
        if target == old:
            return state
        state = state.set("commitIndex", state["commitIndex"].set(node, target))
        if target > old:
            state = self._on_commit_advance(state, node, old, target)
        return state

    def _success_hint(self, state: Rec, node: str, prev: int, entries: Tuple[Rec, ...]) -> int:
        if self.bugs & {"P3", "P4"} and entries:
            # Bug (shared root of #3/#4): when the AppendEntries carried
            # entries the follower replies with an Inext that is one too
            # small (Figure 6: AER3.Inext = 4 instead of 5).
            return prev + len(entries)
        return super()._success_hint(state, node, prev, entries)

    def _update_match(self, old: int, new: int) -> int:
        if "P4" in self.bugs:
            # Bug: assignment without verifying monotonicity.
            return new
        return super()._update_match(old, new)

    def _next_on_success(self, match: int, inext: int) -> int:
        if "P3" in self.bugs:
            # Bug: the raw (wrong) hint is adopted, landing at or below
            # the match index.
            return inext
        return super()._next_on_success(match, inext)

    def _commit_term_check(self) -> bool:
        return "P5" not in self.bugs
