"""DaosRaft specification (§4.2, Table 2 bug DaosRaft#1).

DaosRaft is the DAOS storage stack's downstream fork of WRaft with the
PreVote extension.  Like RedisRaft it resolved WRaft's old bugs; the
PreVote extension introduced one new bug.

Seeded bug (flag):

``D1``  Leader votes for others: on receiving a RequestVote with a newer
        term, a buggy leader updates its term and grants the vote but
        *stays leader* — the role reset is missing from that code path
        (the upstream fix is "reject request vote if self is leader").
"""

from __future__ import annotations

from typing import List

from ...core.spec import Invariant
from ...core.state import Rec
from . import messages as msg
from .base import LEADER
from .wraft import WRaftSpec

__all__ = ["DaosRaftSpec"]


class DaosRaftSpec(WRaftSpec):
    name = "daosraft"
    has_prevote = True
    supported_bugs = frozenset({"W1", "W5", "W7", "D1"})

    def _leader_vote_override(self, state: Rec, src: str, dst: str, m: Rec):
        if "D1" not in self.bugs:
            return None
        if state["role"][dst] != LEADER or m["term"] <= state["currentTerm"][dst]:
            return None
        # Bug: the term advances and the vote may be granted, but the
        # node never steps down from leadership.
        up_to_date = self._log_up_to_date(
            state, dst, m["lastLogTerm"], m["lastLogIndex"]
        )
        state = state.set("currentTerm", state["currentTerm"].set(dst, m["term"]))
        if up_to_date:
            state = state.set("votedFor", state["votedFor"].set(dst, src))
        reply = msg.request_vote_response(m["term"], up_to_date)
        return self._send(state, dst, src, reply), "rv-leader-grant"

    def _build_invariants(self) -> List[Invariant]:
        return super()._build_invariants() + [
            Invariant("LeaderVotesForSelf", self._inv_leader_votes_self),
        ]

    def _inv_leader_votes_self(self, state: Rec) -> bool:
        """A leader's vote for its current term is always itself."""
        return all(
            state["votedFor"][n] == n
            for n in self.nodes
            if state["role"][n] == LEADER
        )
