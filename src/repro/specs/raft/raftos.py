"""RaftOS specification (§4.2, Table 2 bugs #1, #2, #4).

RaftOS is an asyncio-based Python Raft library that replicates Python
objects over UDP; the paper applies the UDP failure model to it.

Seeded bugs (flags):

``R1``  Match index is not monotonic: the leader assigns the
        response-provided index without any check, so a reordered stale
        response rolls the match index back.
``R2``  Incorrectly erasing log entries: the follower truncates its log
        at ``prevLogIndex`` and appends unconditionally — a reordered old
        AppendEntries erases already-matched (even committed) entries.
``R4``  Prematurely stopping checking commitment: the commitment scan
        ``break``s at the first old-term entry instead of skipping it
        (the over-correction of the PySyncObj#5 class of bug), so the
        cluster stops making progress.

RaftOS#3 (a KeyError while handling a response from a node missing from
the match-index map) is an implementation-only crash seeded in
:mod:`repro.systems.raftos` and found by conformance checking.
"""

from __future__ import annotations

from typing import Tuple

from ...core.state import Rec
from .base import RaftSpec

__all__ = ["RaftOSSpec"]


class RaftOSSpec(RaftSpec):
    name = "raftos"
    network_kind = "udp"
    supported_bugs = frozenset({"R1", "R2", "R4"})

    def _update_match(self, old: int, new: int) -> int:
        if "R1" in self.bugs:
            # Bug: assignment without the monotonicity check.
            return new
        return super()._update_match(old, new)

    def _append_to_log(self, state: Rec, node: str, prev: int, entries: Tuple[Rec, ...]) -> Rec:
        if "R2" not in self.bugs:
            return super()._append_to_log(state, node, prev, entries)
        # Bug: truncate-then-append without checking whether the existing
        # entries already match.
        log = state["log"][node]
        base = prev - self._snap_index(state, node)
        new_log = log[:base] + tuple(entries)
        if new_log == log:
            return state
        return state.set("log", state["log"].set(node, new_log))

    def _commit_break_on_old_term(self) -> bool:
        return "R4" in self.bugs
