"""Xraft-KV specification (§4.2, Table 2 bug Xraft-KV#1).

Xraft-KV is a distributed key-value store built on Xraft (without
PreVote, per the paper).  On top of the Raft core it models the store's
Put/Get operations and checks linearizability, demonstrating how
SandTable extends beyond bare consensus.

The model tracks a single replicated register: committed Put entries are
applied in order, and a Put is *acknowledged* when a leader advances its
commit index over the entry.  A Get served by a leader returns that
leader's applied value.

Seeded bug (flag):

``XKV1``  Read operations do not satisfy linearizability: the leader
          serves reads from its local state machine immediately, without
          the ReadIndex-style leadership confirmation round, so a
          deposed-but-unaware leader returns stale data.

The correct behavior abstracts the confirmation round as a guard: a read
is only served when the leader can still assemble a quorum of reachable
peers whose terms do not exceed its own.
"""

from __future__ import annotations

from typing import List

from ...core.linearizability import Operation
from ...core.spec import Action, Transition, TransitionInvariant
from ...core.state import Rec
from ...core.trace import Trace
from .base import LEADER, RaftSpec

__all__ = ["XraftKVSpec", "history_from_trace"]

UNWRITTEN = ""


def _inc(value: int) -> int:
    return value + 1


class XraftKVSpec(RaftSpec):
    name = "xraft-kv"
    network_kind = "tcp"
    has_prevote = False
    supported_bugs = frozenset({"XKV1"})

    def __init__(self, *args, max_reads: int = 1, **kwargs):
        self.max_reads = max_reads
        super().__init__(*args, **kwargs)

    def extra_variables(self) -> dict:
        return {
            "appliedValue": Rec({n: UNWRITTEN for n in self.nodes}),
            "ackedWrites": (),
            "readCount": 0,
        }

    def _build_actions(self) -> List[Action]:
        return super()._build_actions() + [
            Action("ClientRead", self._act_client_read, kind="client"),
        ]

    # -- the KV layer ----------------------------------------------------------

    def _act_client_read(self, state: Rec):
        if state["readCount"] >= self.max_reads:
            return
        for node in self.nodes:
            if not state["alive"][node] or state["role"][node] != LEADER:
                continue
            if "XKV1" not in self.bugs and not self._leadership_confirmed(state, node):
                continue
            result = state["appliedValue"][node]
            new = state.set("readCount", state["readCount"] + 1)
            yield (node, result), new, "read"

    def _leadership_confirmed(self, state: Rec, leader: str) -> bool:
        """ReadIndex abstraction: the leader can gather a quorum of
        reachable peers that have not moved to a newer term."""
        reachable = 1
        for peer in self.nodes:
            if peer == leader:
                continue
            if not state["alive"][peer]:
                continue
            if self.net.blocked(state, leader, peer):
                continue
            if state["currentTerm"][peer] > state["currentTerm"][leader]:
                continue
            reachable += 1
        return reachable >= self.quorum()

    def _on_commit_advance(self, state: Rec, node: str, old: int, new: int) -> Rec:
        # Apply newly committed entries to the local register.
        applied = state["appliedValue"][node]
        acked = state["ackedWrites"]
        for index in range(old + 1, new + 1):
            committed = self._entry_at(state, node, index)
            if committed is None:
                continue  # compacted away; the snapshot carries the value
            applied = committed["val"]
            # A write is acknowledged when a leader commits it.
            if state["role"][node] == LEADER and committed["val"] not in acked:
                acked = acked + (committed["val"],)
        return state.update(
            appliedValue=state["appliedValue"].set(node, applied),
            ackedWrites=acked,
        )

    def _act_restart(self, state: Rec):
        # The state machine is volatile: it is rebuilt by re-applying the
        # log as the commit index re-advances after restart.
        for args, new, branch in super()._act_restart(state):
            node = args[0]
            new = new.set(
                "appliedValue", new["appliedValue"].set(node, UNWRITTEN)
            )
            yield args, new, branch

    # -- linearizability -----------------------------------------------------------

    def _build_transition_invariants(self) -> List[TransitionInvariant]:
        return super()._build_transition_invariants() + [
            TransitionInvariant("LinearizableReads", self._tinv_linearizable),
        ]

    def _tinv_linearizable(self, pre: Rec, t: Transition) -> bool:
        """A read must return the latest acknowledged write (or a newer,
        still-pending one) — never an older value."""
        if t.action != "ClientRead":
            return True
        result = t.args[1]
        acked = pre["ackedWrites"]
        if not acked:
            return True
        if result == acked[-1]:
            return True
        # A newer pending write: appended to some log but not yet acked.
        pending = {
            e["val"]
            for n in self.nodes
            for e in pre["log"][n]
            if e["val"] not in acked
        }
        return result in pending


def history_from_trace(trace: Trace) -> List[Operation]:
    """Extract the client operation history from an Xraft-KV trace.

    A write is invoked at its ClientRequest step and completes when its
    value first appears in ``ackedWrites`` (never, if unacked — a pending
    operation).  Reads are served atomically at their ClientRead step.
    The result feeds :func:`repro.core.linearizability.check_linearizable`,
    the ground-truth check behind the spec's fast ``LinearizableReads``
    transition invariant.
    """
    operations: List[Operation] = []
    invoked_writes = {}
    previous_acked = ()
    for index, step in enumerate(trace):
        if step.action == "ClientRequest":
            node, value = step.args[0], step.args[1]
            invoked_writes[value] = (node, index)
        elif step.action == "ClientRead":
            node, result = step.args[0], step.args[1]
            operations.append(
                Operation(f"reader@{node}", "read", result, index, index)
            )
        acked = step.state["ackedWrites"]
        for value in acked[len(previous_acked):]:
            node, invoked = invoked_writes.pop(value, (None, index))
            operations.append(
                Operation(f"writer@{node}", "write", value, invoked, index)
            )
        previous_acked = acked
    for value, (node, invoked) in invoked_writes.items():
        operations.append(Operation(f"writer@{node}", "write", value, invoked, None))
    return operations
