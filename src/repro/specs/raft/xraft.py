"""Xraft specification (§4.2, Table 2 bug Xraft#1).

Xraft is an educational Raft implementation in Java over TCP with the
PreVote extension.

Seeded bug (flag):

``X1``  More than one valid leader in the same term: the candidate counts
        vote responses without checking that they belong to the current
        election round, so a stale grant from a previous term pushes it
        over quorum while the voter has since voted for someone else.

Xraft#2 (a concurrent-modification exception under a thread race) is an
implementation-only crash seeded in :mod:`repro.systems.xraft` and found
by conformance checking.
"""

from __future__ import annotations

from .base import RaftSpec

__all__ = ["XraftSpec"]


class XraftSpec(RaftSpec):
    name = "xraft"
    network_kind = "tcp"
    has_prevote = True
    supported_bugs = frozenset({"X1"})

    def _accept_stale_votes(self) -> bool:
        return "X1" in self.bugs
