"""Message constructors shared by the Raft specifications.

Every message is a frozen :class:`~repro.core.state.Rec` with a ``type``
field; the constructors keep field names consistent between the specs and
the implementations so conformance checking can compare network contents
directly.

Field naming follows the paper's Figure 6/7 vocabulary: ``inext`` is the
next-index hint carried by AppendEntries responses (``Inext``), and
``icommit`` is the leader commit index (``Icommit``).
"""

from __future__ import annotations

from typing import Tuple

from ...core.state import Rec

__all__ = [
    "REQUEST_VOTE",
    "REQUEST_VOTE_RESPONSE",
    "APPEND_ENTRIES",
    "APPEND_ENTRIES_RESPONSE",
    "INSTALL_SNAPSHOT",
    "INSTALL_SNAPSHOT_RESPONSE",
    "request_vote",
    "request_vote_response",
    "append_entries",
    "append_entries_response",
    "install_snapshot",
    "install_snapshot_response",
    "entry",
]

REQUEST_VOTE = "RequestVote"
REQUEST_VOTE_RESPONSE = "RequestVoteResponse"
APPEND_ENTRIES = "AppendEntries"
APPEND_ENTRIES_RESPONSE = "AppendEntriesResponse"
INSTALL_SNAPSHOT = "InstallSnapshot"
INSTALL_SNAPSHOT_RESPONSE = "InstallSnapshotResponse"


def entry(term: int, val: str) -> Rec:
    """One log entry."""
    return Rec(term=term, val=val)


def request_vote(
    term: int, last_log_index: int, last_log_term: int, prevote: bool = False
) -> Rec:
    return Rec(
        type=REQUEST_VOTE,
        term=term,
        lastLogIndex=last_log_index,
        lastLogTerm=last_log_term,
        prevote=prevote,
    )


def request_vote_response(term: int, granted: bool, prevote: bool = False) -> Rec:
    return Rec(
        type=REQUEST_VOTE_RESPONSE,
        term=term,
        granted=granted,
        prevote=prevote,
    )


def append_entries(
    term: int,
    prev_log_index: int,
    prev_log_term: int,
    entries: Tuple[Rec, ...],
    icommit: int,
    retry: bool = False,
) -> Rec:
    return Rec(
        type=APPEND_ENTRIES,
        term=term,
        prevLogIndex=prev_log_index,
        prevLogTerm=prev_log_term,
        entries=tuple(entries),
        icommit=icommit,
        retry=retry,
    )


def append_entries_response(term: int, success: bool, inext: int) -> Rec:
    return Rec(
        type=APPEND_ENTRIES_RESPONSE,
        term=term,
        success=success,
        inext=inext,
    )


def install_snapshot(term: int, last_index: int, last_term: int, icommit: int) -> Rec:
    return Rec(
        type=INSTALL_SNAPSHOT,
        term=term,
        lastIndex=last_index,
        lastTerm=last_term,
        icommit=icommit,
    )


def install_snapshot_response(term: int, success: bool, last_index: int) -> Rec:
    return Rec(
        type=INSTALL_SNAPSHOT_RESPONSE,
        term=term,
        success=success,
        lastIndex=last_index,
    )
