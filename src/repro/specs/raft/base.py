"""The shared Raft specification (§3.1, §4.2).

All seven Raft-family target systems (PySyncObj, WRaft, RedisRaft,
DaosRaft, RaftOS, Xraft, Xraft-KV) are modeled as subclasses of
:class:`RaftSpec`.  The base class implements the *correct* protocol —
leader election, log replication, commitment — plus the optional PreVote
and log-compaction modules, over either the TCP or the UDP network module.

Following the paper's methodology, a specification describes the *actual*
(potentially buggy) implementation: each documented bug is seeded behind a
flag in ``bugs`` (codes match :mod:`repro.bugs.registry`), and variant
subclasses override the handler hooks where their system's behavior
genuinely differs.

Actions correspond one-to-one to node-level events (message delivery,
timeouts, client requests, node crash/restart, network failures) so that
every specification trace converts directly into deterministic-execution
engine commands (§4.1).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...core.spec import (
    Action,
    Invariant,
    Spec,
    Transition,
    TransitionInvariant,
    WeakFairness,
)
from ...core.state import Rec
from ..network import TcpModel, UdpModel, bipartitions
from . import messages as msg

__all__ = ["RaftConfig", "RaftSpec", "FOLLOWER", "CANDIDATE", "LEADER", "PRECANDIDATE"]

FOLLOWER = "Follower"
CANDIDATE = "Candidate"
LEADER = "Leader"
PRECANDIDATE = "PreCandidate"

NOBODY = ""


@dataclasses.dataclass(frozen=True)
class RaftConfig:
    """A model configuration plus budget constraints (§3.3).

    ``nodes`` and ``values`` form the configuration; the ``max_*`` fields
    are the budget constraint bounding timeouts, client requests,
    failures, and message buffers, exactly the knobs ranked by
    Algorithm 1.
    """

    nodes: Tuple[str, ...] = ("n1", "n2", "n3")
    values: Tuple[str, ...] = ("v1", "v2")
    max_timeouts: int = 3
    max_requests: int = 2
    max_crashes: int = 1
    max_restarts: int = 1
    max_partitions: int = 1
    max_drops: int = 1
    max_dups: int = 1
    max_compactions: int = 1
    max_buffer: int = 4
    max_term: int = 3

    def scaled(self, factor: int) -> "RaftConfig":
        """Multiply every budget bound by ``factor`` (Table 3 exp. #2)."""
        return dataclasses.replace(
            self,
            max_timeouts=self.max_timeouts * factor,
            max_requests=self.max_requests * factor,
            max_crashes=self.max_crashes * factor,
            max_restarts=self.max_restarts * factor,
            max_partitions=self.max_partitions * factor,
            max_drops=self.max_drops * factor,
            max_dups=self.max_dups * factor,
            max_compactions=self.max_compactions * factor,
            max_buffer=self.max_buffer * factor,
            max_term=self.max_term * factor,
        )


def _inc(value: int) -> int:
    return value + 1


class RaftSpec(Spec):
    """Correct Raft as a state machine, with per-system hook points."""

    name = "raft"
    network_kind = "tcp"  # or "udp"
    has_prevote = False
    has_compaction = False
    #: bug codes this spec understands (subclasses extend)
    supported_bugs: FrozenSet[str] = frozenset()

    def __init__(
        self,
        config: Optional[RaftConfig] = None,
        bugs: Iterable[str] = (),
        only_invariants: Optional[Iterable[str]] = None,
    ):
        self.config = config or RaftConfig()
        self.nodes = self.config.nodes
        self.bugs = frozenset(bugs)
        unknown = self.bugs - self.supported_bugs
        if unknown:
            raise ValueError(f"{self.name} does not support bug flags {sorted(unknown)}")
        self.only_invariants = (
            frozenset(only_invariants) if only_invariants is not None else None
        )
        if self.network_kind == "tcp":
            self.net = TcpModel(self.nodes)
        else:
            self.net = UdpModel(self.nodes)
        self._actions = self._build_actions()
        self._invariants = self._filter(self._build_invariants())
        self._transition_invariants = self._filter(self._build_transition_invariants())

    def _filter(self, invariants: Sequence) -> Tuple:
        if self.only_invariants is None:
            return tuple(invariants)
        return tuple(i for i in invariants if i.name in self.only_invariants)

    # ------------------------------------------------------------------
    # state machine definition
    # ------------------------------------------------------------------

    def init_states(self) -> Iterator[Rec]:
        per_node_int = Rec({n: 0 for n in self.nodes})
        peers_map = Rec(
            {n: Rec({p: 0 for p in self.nodes if p != n}) for n in self.nodes}
        )
        next_map = Rec(
            {n: Rec({p: 1 for p in self.nodes if p != n}) for n in self.nodes}
        )
        variables = {
            "role": Rec({n: FOLLOWER for n in self.nodes}),
            "currentTerm": per_node_int,
            "votedFor": Rec({n: NOBODY for n in self.nodes}),
            "log": Rec({n: () for n in self.nodes}),
            "commitIndex": per_node_int,
            "nextIndex": next_map,
            "matchIndex": peers_map,
            "votesGranted": Rec({n: frozenset() for n in self.nodes}),
            "alive": Rec({n: True for n in self.nodes}),
            "eventCounter": Rec(
                timeouts=0,
                requests=0,
                crashes=0,
                restarts=0,
                partitions=0,
                drops=0,
                dups=0,
                compactions=0,
            ),
        }
        if self.has_prevote:
            variables["preVotes"] = Rec({n: frozenset() for n in self.nodes})
        if self.has_compaction:
            variables["snapshotIndex"] = per_node_int
            variables["snapshotTerm"] = per_node_int
        variables.update(self.net.init_vars())
        variables.update(self.extra_variables())
        yield Rec(variables)

    def extra_variables(self) -> dict:
        """Variant-specific state variables (e.g. the KV layer)."""
        return {}

    def actions(self) -> Sequence[Action]:
        return self._actions

    def _build_actions(self) -> List[Action]:
        actions = [
            Action("ReceiveMessage", self._act_receive, kind="message"),
            Action("ElectionTimeout", self._act_election_timeout, kind="timeout"),
            Action("HeartbeatTimeout", self._act_heartbeat_timeout, kind="timeout"),
            Action("ClientRequest", self._act_client_request, kind="client"),
            Action("NodeCrash", self._act_crash, kind="failure"),
            Action("NodeRestart", self._act_restart, kind="failure"),
            Action("PartitionStart", self._act_partition_start, kind="failure"),
            Action("PartitionHeal", self._act_partition_heal, kind="failure"),
        ]
        if self.network_kind == "udp":
            actions.append(Action("DropMessage", self._act_drop, kind="failure"))
            actions.append(Action("DuplicateMessage", self._act_duplicate, kind="failure"))
        if self.has_compaction:
            actions.append(Action("CompactLog", self._act_compact, kind="internal"))
        return actions

    def invariants(self) -> Sequence[Invariant]:
        return self._invariants

    def transition_invariants(self) -> Sequence[TransitionInvariant]:
        return self._transition_invariants

    def state_constraint(self, state: Rec) -> bool:
        if self.net.max_queue_length(state) > self.config.max_buffer:
            return False
        return True

    def symmetry_sets(self) -> Sequence[Tuple[str, ...]]:
        return (self.nodes,)

    def weak_fairness(self) -> Sequence[WeakFairness]:
        """Fairness over the progress machinery, not over failures.

        Message delivery, timeouts, and client requests must not be
        starved by the scheduler; crashes, partitions, and UDP
        drops/duplicates need never happen.  Budget exhaustion makes
        the guarded actions *disabled* (the budgets live inside the
        action guards), so a genuinely spent model reads as a real
        deadlock while a merely unexpanded exploration frontier — where
        these actions are still enabled — can never seed a lasso.
        """
        return (
            WeakFairness.of("wf-deliver", "ReceiveMessage"),
            WeakFairness.of("wf-timeout", "ElectionTimeout", "HeartbeatTimeout"),
            WeakFairness.of("wf-client", "ClientRequest"),
        )

    # ------------------------------------------------------------------
    # log accessors (absolute, 1-based indices; compaction-aware)
    # ------------------------------------------------------------------

    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    def _snap_index(self, state: Rec, node: str) -> int:
        return state["snapshotIndex"][node] if self.has_compaction else 0

    def _snap_term(self, state: Rec, node: str) -> int:
        return state["snapshotTerm"][node] if self.has_compaction else 0

    def _last_index(self, state: Rec, node: str) -> int:
        return self._snap_index(state, node) + len(state["log"][node])

    def _last_term(self, state: Rec, node: str) -> int:
        log = state["log"][node]
        if log:
            return log[-1]["term"]
        return self._snap_term(state, node)

    def _term_at(self, state: Rec, node: str, index: int) -> Optional[int]:
        """Term of the entry at absolute ``index``; None if unavailable."""
        if index == 0:
            return 0
        snap = self._snap_index(state, node)
        if index == snap:
            return self._snap_term(state, node)
        if index < snap:
            return None  # compacted away
        log = state["log"][node]
        pos = index - snap - 1
        if pos >= len(log):
            return None  # beyond the end of the log
        return log[pos]["term"]

    def _entries_from(self, state: Rec, node: str, start: int) -> Tuple[Rec, ...]:
        """Entries at absolute indices >= ``start`` (assumes not compacted)."""
        snap = self._snap_index(state, node)
        pos = max(0, start - snap - 1)
        return state["log"][node][pos:]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def _send(self, state: Rec, src: str, dst: str, message: Rec) -> Rec:
        # A TCP connection to a crashed node is broken: the send is lost.
        # UDP datagrams stay in flight and may be delivered after restart.
        if self.network_kind == "tcp" and not state["alive"][dst]:
            return state
        return self.net.send(state, src, dst, message)

    def _broadcast(self, state: Rec, src: str, message: Rec) -> Rec:
        for dst in self.nodes:
            if dst != src:
                state = self._send(state, src, dst, message)
        return state

    # ------------------------------------------------------------------
    # actions: timeouts
    # ------------------------------------------------------------------

    def _act_election_timeout(self, state: Rec):
        counter = state["eventCounter"]
        if counter["timeouts"] >= self.config.max_timeouts:
            return
        for node in self.nodes:
            if not state["alive"][node] or state["role"][node] == LEADER:
                continue
            if state["currentTerm"][node] >= self.config.max_term:
                continue
            counted = state.set("eventCounter", counter.apply("timeouts", _inc))
            # A candidate's retry skips PreVote (it already passed it);
            # followers and pre-candidates go through the PreVote round.
            if self.has_prevote and state["role"][node] != CANDIDATE:
                yield (node,), self._begin_prevote(counted, node), "prevote"
            else:
                yield (node,), self._become_candidate(counted, node), "election"

    def _act_heartbeat_timeout(self, state: Rec):
        counter = state["eventCounter"]
        if counter["timeouts"] >= self.config.max_timeouts:
            return
        for node in self.nodes:
            if not state["alive"][node] or state["role"][node] != LEADER:
                continue
            counted = state.set("eventCounter", counter.apply("timeouts", _inc))
            yield (node,), self._replicate_all(counted, node), "heartbeat"

    def _begin_prevote(self, state: Rec, node: str) -> Rec:
        proposed = state["currentTerm"][node] + 1
        state = state.update(
            role=state["role"].set(node, PRECANDIDATE),
            preVotes=state["preVotes"].set(node, frozenset({node})),
        )
        if 1 >= self.quorum():  # single-node cluster pre-votes for itself
            return self._become_candidate(state, node)
        request = msg.request_vote(
            proposed,
            self._last_index(state, node),
            self._last_term(state, node),
            prevote=True,
        )
        return self._broadcast(state, node, request)

    def _become_candidate(self, state: Rec, node: str) -> Rec:
        term = state["currentTerm"][node] + 1
        state = state.update(
            role=state["role"].set(node, CANDIDATE),
            currentTerm=state["currentTerm"].set(node, term),
            votedFor=state["votedFor"].set(node, node),
            votesGranted=state["votesGranted"].set(node, frozenset({node})),
        )
        if self.has_prevote:
            state = state.set("preVotes", state["preVotes"].set(node, frozenset()))
        if 1 >= self.quorum():  # single-node cluster
            return self._become_leader(state, node)
        request = msg.request_vote(
            term, self._last_index(state, node), self._last_term(state, node)
        )
        return self._broadcast(state, node, request)

    def _become_leader(self, state: Rec, node: str) -> Rec:
        last = self._last_index(state, node)
        state = state.update(
            role=state["role"].set(node, LEADER),
            nextIndex=state["nextIndex"].set(
                node, Rec({p: last + 1 for p in self.nodes if p != node})
            ),
            matchIndex=state["matchIndex"].set(
                node, Rec({p: 0 for p in self.nodes if p != node})
            ),
        )
        return self._replicate_all(state, node)

    # ------------------------------------------------------------------
    # actions: client requests
    # ------------------------------------------------------------------

    def _act_client_request(self, state: Rec):
        counter = state["eventCounter"]
        if counter["requests"] >= self.config.max_requests:
            return
        value = self.config.values[counter["requests"] % len(self.config.values)]
        for node in self.nodes:
            if not state["alive"][node] or state["role"][node] != LEADER:
                continue
            new = state.update(
                log=state["log"].apply(
                    node,
                    lambda log: log + (msg.entry(state["currentTerm"][node], value),),
                ),
                eventCounter=counter.apply("requests", _inc),
            )
            new = self._after_client_request(new, node, value)
            yield (node, value), new, "request"

    def _after_client_request(self, state: Rec, node: str, value: str) -> Rec:
        """Hook: variant-specific bookkeeping after a client request."""
        return state

    # ------------------------------------------------------------------
    # actions: failures
    # ------------------------------------------------------------------

    def _act_crash(self, state: Rec):
        counter = state["eventCounter"]
        if counter["crashes"] >= self.config.max_crashes:
            return
        for node in self.nodes:
            if not state["alive"][node]:
                continue
            new = state.update(
                alive=state["alive"].set(node, False),
                eventCounter=counter.apply("crashes", _inc),
            )
            new = self.net.clear_node(new, node)
            yield (node,), new, "crash"

    def _act_restart(self, state: Rec):
        counter = state["eventCounter"]
        if counter["restarts"] >= self.config.max_restarts:
            return
        for node in self.nodes:
            if state["alive"][node]:
                continue
            # Volatile state is lost: role, votes, leader bookkeeping and
            # the commit index reset; currentTerm, votedFor and the log
            # are persistent (as is the snapshot).
            new = state.update(
                alive=state["alive"].set(node, True),
                role=state["role"].set(node, FOLLOWER),
                votesGranted=state["votesGranted"].set(node, frozenset()),
                commitIndex=state["commitIndex"].set(
                    node, self._snap_index(state, node)
                ),
                nextIndex=state["nextIndex"].set(
                    node, Rec({p: 1 for p in self.nodes if p != node})
                ),
                matchIndex=state["matchIndex"].set(
                    node, Rec({p: 0 for p in self.nodes if p != node})
                ),
                eventCounter=counter.apply("restarts", _inc),
            )
            if self.has_prevote:
                new = new.set("preVotes", new["preVotes"].set(node, frozenset()))
            yield (node,), new, "restart"

    def _act_partition_start(self, state: Rec):
        counter = state["eventCounter"]
        if counter["partitions"] >= self.config.max_partitions:
            return
        if self.net.is_partitioned(state):
            return
        for group in bipartitions(self.nodes):
            new = self.net.apply_partition(state, group)
            new = new.set("eventCounter", counter.apply("partitions", _inc))
            yield (tuple(sorted(group)),), new, "partition"

    def _act_partition_heal(self, state: Rec):
        if not self.net.is_partitioned(state):
            return
        yield (), self.net.heal(state), "heal"

    def _act_drop(self, state: Rec):
        counter = state["eventCounter"]
        if counter["drops"] >= self.config.max_drops:
            return
        for src, dst, message in self.net.deliverable(state):
            new = self.net.drop(state, src, dst, message)
            new = new.set("eventCounter", counter.apply("drops", _inc))
            yield (src, dst, message), new, "drop"

    def _act_duplicate(self, state: Rec):
        counter = state["eventCounter"]
        if counter["dups"] >= self.config.max_dups:
            return
        for src, dst, message in self.net.deliverable(state):
            new = self.net.duplicate(state, src, dst, message)
            new = new.set("eventCounter", counter.apply("dups", _inc))
            yield (src, dst, message), new, "duplicate"

    def _act_compact(self, state: Rec):
        counter = state["eventCounter"]
        if counter["compactions"] >= self.config.max_compactions:
            return
        for node in self.nodes:
            if not state["alive"][node]:
                continue
            commit = state["commitIndex"][node]
            snap = self._snap_index(state, node)
            if commit <= snap:
                continue
            term = self._term_at(state, node, commit)
            remaining = self._entries_from(state, node, commit + 1)
            new = state.update(
                snapshotIndex=state["snapshotIndex"].set(node, commit),
                snapshotTerm=state["snapshotTerm"].set(node, term),
                log=state["log"].set(node, remaining),
                eventCounter=counter.apply("compactions", _inc),
            )
            yield (node,), new, "compact"

    # ------------------------------------------------------------------
    # actions: message delivery
    # ------------------------------------------------------------------

    def _act_receive(self, state: Rec):
        for src, dst, message in self.net.deliverable(state):
            if not state["alive"][dst]:
                continue
            if self.network_kind == "tcp":
                _, consumed = self.net.consume(state, src, dst)
            else:
                consumed = self.net.consume(state, src, dst, message)
            for new, branch in self._dispatch(consumed, src, dst, message):
                yield (src, dst, message), new, branch

    def _dispatch(self, state: Rec, src: str, dst: str, message: Rec):
        handlers = {
            msg.REQUEST_VOTE: self._on_request_vote,
            msg.REQUEST_VOTE_RESPONSE: self._on_request_vote_response,
            msg.APPEND_ENTRIES: self._on_append_entries,
            msg.APPEND_ENTRIES_RESPONSE: self._on_append_entries_response,
            msg.INSTALL_SNAPSHOT: self._on_install_snapshot,
            msg.INSTALL_SNAPSHOT_RESPONSE: self._on_install_snapshot_response,
        }
        handler = handlers.get(message["type"])
        if handler is None:
            raise AssertionError(f"unknown message type: {message['type']}")
        yield from handler(state, src, dst, message)

    # -- term bookkeeping ---------------------------------------------------

    def _observe_term(self, state: Rec, node: str, term: int) -> Rec:
        """Step down to follower if ``term`` is newer (correct behavior)."""
        if term <= state["currentTerm"][node]:
            return state
        return state.update(
            currentTerm=state["currentTerm"].set(node, term),
            role=state["role"].set(node, FOLLOWER),
            votedFor=state["votedFor"].set(node, NOBODY),
        )

    def _log_up_to_date(self, state: Rec, node: str, last_term: int, last_index: int) -> bool:
        my_term = self._last_term(state, node)
        my_index = self._last_index(state, node)
        return (last_term, last_index) >= (my_term, my_index)

    # -- RequestVote -----------------------------------------------------------

    def _on_request_vote(self, state: Rec, src: str, dst: str, m: Rec):
        if m["prevote"]:
            yield from self._on_prevote_request(state, src, dst, m)
            return
        leader_grant = self._leader_vote_override(state, src, dst, m)
        if leader_grant is not None:
            yield leader_grant
            return
        state = self._observe_term(state, dst, m["term"])
        up_to_date = self._log_up_to_date(state, dst, m["lastLogTerm"], m["lastLogIndex"])
        grant = (
            m["term"] == state["currentTerm"][dst]
            and state["votedFor"][dst] in (NOBODY, src)
            and state["role"][dst] in (FOLLOWER, PRECANDIDATE)
            and up_to_date
        )
        if grant:
            state = state.set("votedFor", state["votedFor"].set(dst, src))
        reply = msg.request_vote_response(state["currentTerm"][dst], grant)
        yield self._send(state, dst, src, reply), ("rv-grant" if grant else "rv-reject")

    def _leader_vote_override(self, state: Rec, src: str, dst: str, m: Rec):
        """Hook for DaosRaft#1: a buggy leader grants votes without
        stepping down.  Returns a (state, branch) pair or None."""
        return None

    def _on_prevote_request(self, state: Rec, src: str, dst: str, m: Rec):
        grant = (
            m["term"] > state["currentTerm"][dst]
            and state["role"][dst] != LEADER
            and self._log_up_to_date(state, dst, m["lastLogTerm"], m["lastLogIndex"])
        )
        reply = msg.request_vote_response(m["term"], grant, prevote=True)
        yield self._send(state, dst, src, reply), (
            "pv-grant" if grant else "pv-reject"
        )

    def _on_request_vote_response(self, state: Rec, src: str, dst: str, m: Rec):
        if m["prevote"]:
            yield from self._on_prevote_response(state, src, dst, m)
            return
        if m["term"] > state["currentTerm"][dst]:
            yield self._observe_term(state, dst, m["term"]), "rvr-higher-term"
            return
        term_matches = m["term"] == state["currentTerm"][dst]
        if not term_matches and not self._accept_stale_votes():
            yield state, "rvr-stale"
            return
        if state["role"][dst] != CANDIDATE or not m["granted"]:
            yield state, "rvr-ignored"
            return
        votes = state["votesGranted"][dst] | {src}
        state = state.set("votesGranted", state["votesGranted"].set(dst, votes))
        if len(votes) >= self.quorum():
            yield self._become_leader(state, dst), "rvr-win"
        else:
            yield state, "rvr-count"

    def _accept_stale_votes(self) -> bool:
        """Hook for Xraft#1: count vote responses from older elections."""
        return False

    def _on_prevote_response(self, state: Rec, src: str, dst: str, m: Rec):
        if state["role"][dst] != PRECANDIDATE:
            yield state, "pvr-ignored"
            return
        if m["term"] != state["currentTerm"][dst] + 1 or not m["granted"]:
            yield state, "pvr-ignored"
            return
        votes = state["preVotes"][dst] | {src}
        state = state.set("preVotes", state["preVotes"].set(dst, votes))
        if len(votes) >= self.quorum():
            yield self._become_candidate(state, dst), "pvr-win"
        else:
            yield state, "pvr-count"

    # -- AppendEntries ------------------------------------------------------------

    def _on_append_entries(self, state: Rec, src: str, dst: str, m: Rec):
        if m["term"] < state["currentTerm"][dst]:
            reply = msg.append_entries_response(
                state["currentTerm"][dst], False, self._reject_hint(state, dst, m)
            )
            yield self._send(state, dst, src, reply), "ae-stale"
            return
        state = self._observe_term(state, dst, m["term"])
        # An AppendEntries from the current-term leader demotes candidates.
        if state["role"][dst] != FOLLOWER:
            state = state.set("role", state["role"].set(dst, FOLLOWER))

        prev = m["prevLogIndex"]
        entries = m["entries"]
        snap = self._snap_index(state, dst)
        if prev < snap:
            # Entries at or below the snapshot are already committed
            # locally; skip the overlap.
            overlap = snap - prev
            entries = entries[overlap:]
            prev = snap
        prev_term = self._term_at(state, dst, prev)
        matched = prev == 0 or (
            prev_term is not None and prev_term == m["prevLogTerm"]
        )
        if not matched:
            reply = msg.append_entries_response(
                state["currentTerm"][dst], False, self._reject_hint(state, dst, m)
            )
            yield self._send(state, dst, src, reply), "ae-reject"
            return
        state = self._append_to_log(state, dst, prev, entries)
        target = self._follower_commit_target(state, dst, m["icommit"], prev, len(entries))
        state = self._set_follower_commit(state, dst, target)
        reply = msg.append_entries_response(
            state["currentTerm"][dst],
            True,
            self._success_hint(state, dst, prev, entries),
        )
        yield self._send(state, dst, src, reply), "ae-accept"

    def _append_to_log(self, state: Rec, node: str, prev: int, entries: Tuple[Rec, ...]) -> Rec:
        """Append ``entries`` after absolute index ``prev``.

        Correct conflict handling: keep existing entries that match; on
        the first term conflict, truncate from there and append the rest.
        RaftOS overrides this with its buggy unconditional truncation
        (RaftOS#2).
        """
        log = state["log"][node]
        snap = self._snap_index(state, node)
        base = prev - snap  # position in the stored tuple after which entries go
        new_log = list(log)
        changed = False
        for offset, incoming in enumerate(entries):
            pos = base + offset
            if pos < len(new_log):
                if new_log[pos]["term"] == incoming["term"]:
                    continue  # already have it
                del new_log[pos:]
                new_log.append(incoming)
                changed = True
            else:
                new_log.append(incoming)
                changed = True
        if not changed:
            return state
        return state.set("log", state["log"].set(node, tuple(new_log)))

    def _follower_commit_target(
        self, state: Rec, node: str, icommit: int, prev: int, n_entries: int
    ) -> int:
        """Correct rule: commit up to min(leaderCommit, last *new* entry).

        WRaft#1 overrides this to use the local last index, which commits
        entries the leader never sent (Figure 7).
        """
        return min(icommit, prev + n_entries)

    def _set_follower_commit(self, state: Rec, node: str, target: int) -> Rec:
        """Correct rule: the commit index only moves forward.

        PySyncObj#2 overrides this with an unchecked assignment.
        """
        if target <= state["commitIndex"][node]:
            return state
        old = state["commitIndex"][node]
        state = state.set("commitIndex", state["commitIndex"].set(node, target))
        return self._on_commit_advance(state, node, old, target)

    def _success_hint(self, state: Rec, node: str, prev: int, entries: Tuple[Rec, ...]) -> int:
        """The Inext hint in a successful AppendEntries response.

        Correct value: one past the last replicated entry.  PySyncObj#4
        overrides this with an off-by-one when entries are present
        (Figure 6).
        """
        return prev + len(entries) + 1

    def _reject_hint(self, state: Rec, node: str, m: Rec) -> int:
        """The Inext hint in a rejection: where the leader should retry."""
        return max(1, min(self._last_index(state, node) + 1, m["prevLogIndex"]))

    # -- AppendEntriesResponse -------------------------------------------------------

    def _on_append_entries_response(self, state: Rec, src: str, dst: str, m: Rec):
        if m["term"] > state["currentTerm"][dst]:
            yield self._observe_term(state, dst, m["term"]), "aer-higher-term"
            return
        overridden = self._stale_term_overwrite(state, src, dst, m)
        if overridden is not None:
            yield overridden
            return
        if state["role"][dst] != LEADER or m["term"] != state["currentTerm"][dst]:
            yield state, "aer-ignored"
            return
        if m["success"]:
            new_match = m["inext"] - 1
            old_match = state["matchIndex"][dst][src]
            match = self._update_match(old_match, new_match)
            next_index = self._next_on_success(match, m["inext"])
            state = state.update(
                matchIndex=state["matchIndex"].apply(dst, lambda r: r.set(src, match)),
                nextIndex=state["nextIndex"].apply(dst, lambda r: r.set(src, next_index)),
            )
            state = self._advance_commit_leader(state, dst)
            yield state, "aer-success"
        else:
            hint = m["inext"]
            next_index = self._next_on_reject(state, dst, src, hint)
            state = state.set(
                "nextIndex", state["nextIndex"].apply(dst, lambda r: r.set(src, next_index))
            )
            state = self._replicate_to(state, dst, src, retry=True)
            yield state, "aer-reject"

    def _stale_term_overwrite(self, state: Rec, src: str, dst: str, m: Rec):
        """Hook for WRaft#4: overwrite currentTerm with a stale term."""
        return None

    def _update_match(self, old: int, new: int) -> int:
        """Correct rule: the match index only moves forward.

        PySyncObj#4 and RaftOS#1 override this with plain assignment.
        """
        return max(old, new)

    def _next_on_success(self, match: int, inext: int) -> int:
        """Correct rule: nextIndex stays above matchIndex.

        PySyncObj#3 overrides this with the raw hint.
        """
        return max(match + 1, inext)

    def _next_on_reject(self, state: Rec, leader: str, peer: str, hint: int) -> int:
        """Correct rule: never move nextIndex at or below matchIndex.

        PySyncObj#3 and WRaft#7 override this with the raw hint.
        """
        match = state["matchIndex"][leader][peer]
        last = self._last_index(state, leader)
        return max(match + 1, min(hint, last + 1))

    # -- commitment --------------------------------------------------------------------

    def _commit_term_check(self) -> bool:
        """Correct rule: only current-term entries commit by counting.

        PySyncObj#5 overrides this to return False.
        """
        return True

    def _commit_break_on_old_term(self) -> bool:
        """RaftOS#4: stop scanning at the first old-term entry."""
        return False

    def _advance_commit_leader(self, state: Rec, leader: str) -> Rec:
        commit = state["commitIndex"][leader]
        last = self._last_index(state, leader)
        matches = state["matchIndex"][leader]
        best = commit
        for index in range(commit + 1, last + 1):
            replicas = 1 + sum(1 for p in matches if matches[p] >= index)
            if replicas < self.quorum():
                break
            term = self._term_at(state, leader, index)
            if self._commit_term_check() and term != state["currentTerm"][leader]:
                if self._commit_break_on_old_term():
                    break
                continue
            best = index
        if best == commit:
            return state
        state = state.set("commitIndex", state["commitIndex"].set(leader, best))
        return self._on_commit_advance(state, leader, commit, best)

    def _on_commit_advance(self, state: Rec, node: str, old: int, new: int) -> Rec:
        """Hook: apply newly committed entries (used by the KV layer)."""
        return state

    # -- snapshots ---------------------------------------------------------------------

    def _replicate_all(self, state: Rec, leader: str) -> Rec:
        for peer in self.nodes:
            if peer != leader:
                state = self._replicate_to(state, leader, peer)
        return state

    def _replicate_to(self, state: Rec, leader: str, peer: str, retry: bool = False) -> Rec:
        next_index = state["nextIndex"][leader][peer]
        snap = self._snap_index(state, leader)
        if self.has_compaction and next_index <= snap:
            return self._send_snapshot(state, leader, peer)
        prev = next_index - 1
        prev_term = self._term_at(state, leader, prev) or 0
        entries = self._entries_from(state, leader, next_index)
        entries = self._select_entries(state, leader, peer, entries, retry)
        message = msg.append_entries(
            state["currentTerm"][leader],
            prev,
            prev_term,
            entries,
            state["commitIndex"][leader],
            retry=retry,
        )
        return self._send(state, leader, peer, message)

    def _select_entries(
        self, state: Rec, leader: str, peer: str, entries: Tuple[Rec, ...], retry: bool
    ) -> Tuple[Rec, ...]:
        """Hook for WRaft#5: buggy retries carry empty entries."""
        return entries

    def _send_snapshot(self, state: Rec, leader: str, peer: str) -> Rec:
        """Correct rule: compacted entries are shipped as a snapshot.

        WRaft#2 overrides this to send a (necessarily empty)
        AppendEntries instead (Figure 7).
        """
        message = msg.install_snapshot(
            state["currentTerm"][leader],
            self._snap_index(state, leader),
            self._snap_term(state, leader),
            state["commitIndex"][leader],
        )
        return self._send(state, leader, peer, message)

    def _on_install_snapshot(self, state: Rec, src: str, dst: str, m: Rec):
        if m["term"] < state["currentTerm"][dst]:
            reply = msg.install_snapshot_response(
                state["currentTerm"][dst], False, self._last_index(state, dst)
            )
            yield self._send(state, dst, src, reply), "snap-stale"
            return
        state = self._observe_term(state, dst, m["term"])
        if state["role"][dst] != FOLLOWER:
            state = state.set("role", state["role"].set(dst, FOLLOWER))
        if m["lastIndex"] <= self._snap_index(state, dst):
            reply = msg.install_snapshot_response(
                state["currentTerm"][dst], True, self._last_index(state, dst)
            )
            yield self._send(state, dst, src, reply), "snap-old"
            return
        # Install: discard conflicting log, keep any matching suffix.
        suffix = ()
        local_term = self._term_at(state, dst, m["lastIndex"])
        if local_term is not None and local_term == m["lastTerm"]:
            suffix = self._entries_from(state, dst, m["lastIndex"] + 1)
        old_commit = state["commitIndex"][dst]
        new_commit = max(old_commit, m["lastIndex"])
        state = state.update(
            snapshotIndex=state["snapshotIndex"].set(dst, m["lastIndex"]),
            snapshotTerm=state["snapshotTerm"].set(dst, m["lastTerm"]),
            log=state["log"].set(dst, suffix),
            commitIndex=state["commitIndex"].set(dst, new_commit),
        )
        if new_commit > old_commit:
            state = self._on_commit_advance(state, dst, old_commit, new_commit)
        reply = msg.install_snapshot_response(
            state["currentTerm"][dst], True, m["lastIndex"]
        )
        yield self._send(state, dst, src, reply), "snap-install"

    def _on_install_snapshot_response(self, state: Rec, src: str, dst: str, m: Rec):
        if m["term"] > state["currentTerm"][dst]:
            yield self._observe_term(state, dst, m["term"]), "snapr-higher-term"
            return
        if state["role"][dst] != LEADER or m["term"] != state["currentTerm"][dst]:
            yield state, "snapr-ignored"
            return
        if not m["success"]:
            yield state, "snapr-reject"
            return
        match = self._update_match(state["matchIndex"][dst][src], m["lastIndex"])
        state = state.update(
            matchIndex=state["matchIndex"].apply(dst, lambda r: r.set(src, match)),
            nextIndex=state["nextIndex"].apply(dst, lambda r: r.set(src, match + 1)),
        )
        state = self._advance_commit_leader(state, dst)
        yield state, "snapr-success"

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def _build_invariants(self) -> List[Invariant]:
        # ``reads`` declares exactly the top-level variables each predicate
        # inspects (snapshot fields are read through _snap_index/_snap_term
        # when compaction is on; declaring them unconditionally is harmless
        # for variants without those keys).  The compiled checker uses the
        # declarations to skip invariants on successors that provably left
        # every declared variable untouched.
        return [
            Invariant(
                "ElectionSafety",
                self._inv_election_safety,
                reads=("currentTerm", "alive", "role"),
            ),
            Invariant(
                "LogMatching",
                self._inv_log_matching,
                reads=("log", "snapshotIndex", "snapshotTerm"),
            ),
            Invariant(
                "CommittedLogConsistency",
                self._inv_committed_consistency,
                reads=("commitIndex", "log", "snapshotIndex", "snapshotTerm"),
            ),
            Invariant(
                "NextIndexAboveMatchIndex",
                self._inv_next_above_match,
                reads=("role", "nextIndex", "matchIndex"),
            ),
        ]

    def _inv_election_safety(self, state: Rec) -> bool:
        leaders = [
            (state["currentTerm"][n], n)
            for n in self.nodes
            if state["alive"][n] and state["role"][n] == LEADER
        ]
        terms = [term for term, _ in leaders]
        return len(terms) == len(set(terms))

    def _inv_log_matching(self, state: Rec) -> bool:
        # Log Matching: if two logs hold the same term at the same index,
        # they are identical up to that index.  Violation: a matching
        # index exists with a mismatching comparable index below it.
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                high = min(self._last_index(state, a), self._last_index(state, b))
                highest_match = 0
                mismatches = []
                for index in range(1, high + 1):
                    ta = self._term_at(state, a, index)
                    tb = self._term_at(state, b, index)
                    if ta is None or tb is None:
                        continue  # compacted below one node's snapshot
                    if ta == tb:
                        highest_match = index
                    else:
                        mismatches.append(index)
                if any(index < highest_match for index in mismatches):
                    return False
        return True

    def _inv_committed_consistency(self, state: Rec) -> bool:
        # Two nodes must agree on every index both consider committed.
        # Terms are compared via _term_at, which also covers the snapshot
        # boundary (Figure 7: a compacted e2 vs. an incorrectly committed
        # e1 at the same index).
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                high = min(state["commitIndex"][a], state["commitIndex"][b])
                for index in range(1, high + 1):
                    ta = self._term_at(state, a, index)
                    tb = self._term_at(state, b, index)
                    if ta is not None and tb is not None and ta != tb:
                        return False
                    ea = self._entry_at(state, a, index)
                    eb = self._entry_at(state, b, index)
                    if ea is not None and eb is not None and ea != eb:
                        return False
        return True

    def _entry_at(self, state: Rec, node: str, index: int) -> Optional[Rec]:
        snap = self._snap_index(state, node)
        pos = index - snap - 1
        log = state["log"][node]
        if 0 <= pos < len(log):
            return log[pos]
        return None

    def _inv_next_above_match(self, state: Rec) -> bool:
        for n in self.nodes:
            if state["role"][n] != LEADER:
                continue
            for p in self.nodes:
                if p == n:
                    continue
                if state["nextIndex"][n][p] <= state["matchIndex"][n][p]:
                    return False
        return True

    # -- transition invariants -------------------------------------------------------

    def _build_transition_invariants(self) -> List[TransitionInvariant]:
        # Each ``reads`` declaration satisfies the stutter-safety contract:
        # a transition leaving every declared variable unchanged trivially
        # satisfies the invariant (an unchanged variable cannot decrease /
        # an unchanged entry cannot differ from itself).
        # CommitAdvanceComplete is deliberately undeclared: an aer-success
        # edge can grow matchIndex without moving commitIndex, so agreement
        # on commitIndex alone does not make it hold trivially.
        return [
            TransitionInvariant(
                "CurrentTermMonotonic",
                self._tinv_term_monotonic,
                reads=("currentTerm",),
            ),
            TransitionInvariant(
                "CommitIndexMonotonic",
                self._tinv_commit_monotonic,
                reads=("commitIndex",),
            ),
            TransitionInvariant(
                "MatchIndexMonotonic",
                self._tinv_match_monotonic,
                reads=("role", "currentTerm", "matchIndex"),
            ),
            TransitionInvariant(
                "CommittedEntriesStable",
                self._tinv_committed_stable,
                reads=("commitIndex", "log", "snapshotIndex"),
            ),
            TransitionInvariant(
                "LeaderCommitsCurrentTerm",
                self._tinv_commit_current_term,
                reads=("commitIndex",),
            ),
            TransitionInvariant("CommitAdvanceComplete", self._tinv_commit_complete),
        ]

    def _tinv_term_monotonic(self, pre: Rec, t: Transition) -> bool:
        post = t.target
        return all(
            post["currentTerm"][n] >= pre["currentTerm"][n] for n in self.nodes
        )

    def _tinv_commit_monotonic(self, pre: Rec, t: Transition) -> bool:
        post = t.target
        for n in self.nodes:
            if t.action == "NodeRestart" and t.args and t.args[0] == n:
                continue  # the commit index is volatile across restarts
            if post["commitIndex"][n] < pre["commitIndex"][n]:
                return False
        return True

    def _tinv_match_monotonic(self, pre: Rec, t: Transition) -> bool:
        post = t.target
        for n in self.nodes:
            stays_leader = (
                pre["role"][n] == LEADER
                and post["role"][n] == LEADER
                and pre["currentTerm"][n] == post["currentTerm"][n]
            )
            if not stays_leader:
                continue
            for p in self.nodes:
                if p == n:
                    continue
                if post["matchIndex"][n][p] < pre["matchIndex"][n][p]:
                    return False
        return True

    def _tinv_committed_stable(self, pre: Rec, t: Transition) -> bool:
        post = t.target
        for n in self.nodes:
            commit = pre["commitIndex"][n]
            low = max(self._snap_index(pre, n), self._snap_index(post, n)) + 1
            for index in range(low, commit + 1):
                before = self._entry_at(pre, n, index)
                after = self._entry_at(post, n, index)
                if before is not None and after != before:
                    return False
        return True

    def _tinv_commit_current_term(self, pre: Rec, t: Transition) -> bool:
        """A leader only advances its commit index to a current-term entry."""
        if t.branch not in ("aer-success", "snapr-success"):
            return True
        post = t.target
        dst = t.args[1]
        if post["role"][dst] != LEADER:
            return True
        old, new = pre["commitIndex"][dst], post["commitIndex"][dst]
        if new <= old:
            return True
        term = self._term_at(post, dst, new)
        return term == post["currentTerm"][dst]

    def _tinv_commit_complete(self, pre: Rec, t: Transition) -> bool:
        """After handling a success response, the leader's commit index
        reaches everything the correct rule would commit (RaftOS#4)."""
        if t.branch != "aer-success":
            return True
        post = t.target
        dst = t.args[1]
        if post["role"][dst] != LEADER:
            return True
        expected = self._expected_commit(post, dst)
        return post["commitIndex"][dst] >= expected

    def _expected_commit(self, state: Rec, leader: str) -> int:
        commit = state["commitIndex"][leader]
        matches = state["matchIndex"][leader]
        best = commit
        for index in range(commit + 1, self._last_index(state, leader) + 1):
            replicas = 1 + sum(1 for p in matches if matches[p] >= index)
            if replicas < self.quorum():
                break
            if self._term_at(state, leader, index) == state["currentTerm"][leader]:
                best = index
        return best
