"""The JSONL metrics sink: one registry snapshot per line, append-only.

A sink file lives next to a run's checkpoints (``<run dir>/metrics.jsonl``
for durable runs, any path for ``--stats-out``) and records the life of
the run as self-describing JSON lines::

    {"event": "open",     "t": ..., "meta": {...}}
    {"event": "progress", "t": ..., "stats": {...}, "metrics": {...}}
    {"event": "final",    "t": ..., "stats": {...}, "metrics": {...}}

The file is opened in append mode, so a resumed run continues the same
file (its fresh ``open`` line marks the seam), and every line is flushed
as written — after a kill the file is intact up to a possibly torn last
line, which :func:`read_sink` skips.  Timestamps are wall-clock seconds
(``time.time``); ``metrics`` is always the *cumulative*
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` at that moment, so
the last parseable line of a sink answers "where did this run get to"
without replaying the file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Dict, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = ["MetricsSink", "read_sink", "last_metrics"]


def _stats_dict(stats: Any) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    if dataclasses.is_dataclass(stats):
        return dataclasses.asdict(stats)
    return dict(stats)


class MetricsSink:
    """Appends registry snapshots to a JSONL file, one event per line."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        registry: MetricsRegistry,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.path = os.fspath(path)
        self.registry = registry
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._closed = False
        self._write({"event": "open", "meta": dict(meta or {})})

    def _write(self, payload: Dict[str, Any]) -> None:
        payload.setdefault("t", time.time())
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()

    def write_snapshot(
        self, event: str = "progress", stats: Any = None, **extra: Any
    ) -> None:
        """Append one cumulative snapshot line."""
        payload: Dict[str, Any] = {
            "event": event,
            "metrics": self.registry.snapshot(),
        }
        rendered = _stats_dict(stats)
        if rendered is not None:
            payload["stats"] = rendered
        payload.update(extra)
        self._write(payload)

    def on_progress(self, stats: Any) -> None:
        """Adapter for the engines' unified ``progress(stats)`` callback."""
        self.write_snapshot("progress", stats=stats)

    def close(self, stats: Any = None, **extra: Any) -> None:
        """Write the ``final`` snapshot and close the file."""
        if self._closed:
            return
        self.write_snapshot("final", stats=stats, **extra)
        self._handle.close()
        self._closed = True

    def abandon(self) -> None:
        """Close without a final snapshot (crash/interrupt path): the
        last flushed line stays the record; a final snapshot here could
        publish partially-updated state."""
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "MetricsSink":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abandon()


def read_sink(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Parse a sink file, skipping a torn (killed-mid-write) last line."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                # Only a torn tail is tolerated; garbage in the middle
                # of the file means the file is not a metrics sink.
                if handle.read(1):
                    raise
                break
    return events


def last_metrics(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """The cumulative metrics snapshot of the last snapshot-bearing line."""
    snapshot: Optional[Dict[str, Any]] = None
    for event in read_sink(path):
        if "metrics" in event:
            snapshot = event["metrics"]
    if snapshot is None:
        raise ValueError(f"{os.fspath(path)} holds no metrics snapshots")
    return snapshot
