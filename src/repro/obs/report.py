"""End-of-run action coverage: which spec actions ever fired.

Unexercised spec actions are where spec/implementation divergence hides
(a guard that can never be true, a message that is never delivered): a
spec whose ``SendAppendEntries`` never fires is not being checked, no
matter how many states the run visits.  This report is the analogue of
TLC's per-action coverage statistics: every action of the spec with its
exact fire count — the number of enabled transitions of that action
enumerated from expanded states — with never-fired actions flagged.

Fire counts come from the ``engine.action_fires`` labeled counts, which
every exploration layer maintains (the engines pre-seed the table with
all spec actions at zero, so an action that never fires still appears).
The report can be built live from a :class:`~repro.obs.metrics.MetricsRegistry`
or after the fact from a JSONL sink file / durable run directory.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import ACTION_FIRES, MetricsRegistry
from .sink import last_metrics

__all__ = [
    "ActionCoverage",
    "coverage_from_registry",
    "coverage_from_sink",
    "resolve_sink_path",
    "METRICS_FILENAME",
]

#: File name of the metrics sink inside a durable run directory.
METRICS_FILENAME = "metrics.jsonl"


@dataclasses.dataclass
class ActionCoverage:
    """Per-action fire counts for one run, never-fired actions flagged."""

    #: (action name, fire count), sorted by descending count then name.
    rows: List[Tuple[str, int]]

    @property
    def total_fires(self) -> int:
        return sum(count for _, count in self.rows)

    @property
    def never_fired(self) -> List[str]:
        return sorted(name for name, count in self.rows if count == 0)

    @property
    def complete(self) -> bool:
        """True when every known action fired at least once."""
        return not self.never_fired

    def counts(self) -> Dict[str, int]:
        return dict(self.rows)

    def render(self) -> str:
        """The human-readable report (the ``sandtable coverage`` output)."""
        if not self.rows:
            return "action coverage: no actions recorded"
        width = max(len(name) for name, _ in self.rows)
        total = self.total_fires
        lines = [f"action coverage ({total} fires, {len(self.rows)} actions):"]
        for name, count in self.rows:
            share = f"{100 * count / total:5.1f}%" if total else "     -"
            flag = "" if count else "   NEVER FIRED"
            lines.append(f"  {name:{width}s} {count:>12d} {share}{flag}")
        never = self.never_fired
        if never:
            lines.append(
                f"  WARNING: {len(never)} action(s) never fired:"
                f" {', '.join(never)}"
            )
        return "\n".join(lines)


def _build(fires: Dict[str, int], actions: Optional[Any] = None) -> ActionCoverage:
    table = dict(fires)
    if actions is not None:
        for name in actions:
            table.setdefault(name, 0)
    rows = sorted(table.items(), key=lambda item: (-item[1], item[0]))
    return ActionCoverage(rows)


def coverage_from_registry(
    registry: MetricsRegistry, spec: Optional[Any] = None
) -> ActionCoverage:
    """Coverage from a live registry; ``spec`` supplies the action list
    (so actions the run never registered still appear as never-fired)."""
    names = [action.name for action in spec.actions()] if spec is not None else None
    return _build(registry.counts(ACTION_FIRES), names)


def coverage_from_sink(path: Union[str, os.PathLike]) -> ActionCoverage:
    """Coverage from the last snapshot of a JSONL sink file."""
    snapshot = last_metrics(path)
    fires = snapshot.get("counts", {}).get(ACTION_FIRES, {})
    return _build({name: int(count) for name, count in fires.items()})


def resolve_sink_path(path: Union[str, os.PathLike]) -> pathlib.Path:
    """Accept either a sink file or a run directory containing one."""
    p = pathlib.Path(path)
    if p.is_dir():
        candidate = p / METRICS_FILENAME
        if not candidate.exists():
            raise FileNotFoundError(
                f"{p} has no {METRICS_FILENAME} — was the run started with"
                " --stats/--stats-out (or run_check(metrics=...))?"
            )
        return candidate
    if not p.exists():
        raise FileNotFoundError(f"no metrics sink at {p}")
    return p
