"""The metrics registry: counters, gauges, and histograms, zero deps.

The checker's observability layer (TLC ships the same statistics for its
BFS/simulation modes) rests on one design rule: **metrics are opt-in and
absent by default**.  Every instrumented call site holds an
``Optional[MetricsRegistry]`` and guards its hooks with a single
``is not None`` test — with no registry the cost is one pointer
comparison per hook, and the hot paths hoist the raw backing objects
(a plain dict for labeled counters, a bound ``observe`` method for
histograms) so the enabled cost is a dict increment, not an attribute
chase.

Instrument families:

* :class:`Counter` — a monotonically increasing int (``inc``).
* labeled counts (:meth:`MetricsRegistry.counts`) — a plain
  ``Dict[str, int]`` owned by the registry; call sites increment keys
  directly.  This is how per-action fire counts are kept: one dict,
  one entry per spec action.
* :class:`Gauge` — a point-in-time value (``set``).
* :class:`Histogram` — fixed geometric buckets plus count/total/min/max;
  ``merge`` folds another histogram's serialized state in (the parallel
  master merges per-round worker histograms this way).

:meth:`MetricsRegistry.snapshot` renders everything as a JSON-safe dict
and :meth:`MetricsRegistry.restore` replaces the registry's state from
such a dict — the pair is what makes counters survive checkpoint/resume
byte-for-byte (the snapshot rides in the checkpoint header).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ACTION_FIRES",
    "BATCH_BYTES",
    "CODEC_CHUNKS",
    "Counter",
    "FALLBACK_SERIAL",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ROUND_WAIT_MS",
    "SIZE_BOUNDS",
    "STORE_BYTES",
    "TEMPORAL_CYCLE_LEN",
    "TEMPORAL_SCC_COUNT",
    "TIME_BOUNDS",
    "TRACECHECK_FRONTIER_SIZE",
    "TRACECHECK_STUTTER_STEPS",
    "WAIT_BOUNDS_MS",
    "WIRE_BYTES_RECEIVED",
    "WIRE_BYTES_SENT",
]

#: The labeled-count family holding per-action fire counts — the one
#: metric name shared between the engine, the parallel master, the
#: testkit oracle cross-check, and the coverage report.
ACTION_FIRES = "engine.action_fires"

#: The labeled-count family for the incremental codec's chunk cache:
#: ``delta_hits`` (successor encodings assembled by splicing the parent's
#: bytes), ``delta_misses`` (delta attempted but the chain was unusable),
#: ``full_encodes`` (from-scratch canonical encodings), ``fp_delta_hits``
#: (fingerprints patched from a parent's pair-digest table), and
#: ``fp_full`` (fingerprints computed from a full encoding).
CODEC_CHUNKS = "codec.chunk_cache"

#: Gauge: estimated resident store bytes divided by states known — the
#: continuously-measured form of the fast mode ≤16 bytes/state claim.
#: Refreshed by the engine at progress ticks and end of run, and
#: rendered in progress lines and ``metrics.jsonl``.
STORE_BYTES = "store.bytes_per_state"

#: Counter: canonical codec bytes routed in absorb batches — the
#: exchange-layer payload volume, counted at the master so it is
#: identical whichever transport (fork pipes or TCP sockets) moved it.
BATCH_BYTES = "parallel.batch_bytes"

#: Histogram: per-round master wait for the slowest worker, in
#: milliseconds — the level-synchronous straggler cost.  Bucket counts
#: are timing-dependent; only the observation *count* (== rounds) is
#: deterministic across resume.
ROUND_WAIT_MS = "parallel.round_wait_ms"

#: Counter: times ``parallel_bfs`` silently would have degraded to the
#: serial explorer (no fork support, or ``workers <= 1``); paired with a
#: RuntimeWarning so the degradation is visible, not silent.
FALLBACK_SERIAL = "parallel.fallback_serial"

#: Counters: raw framed bytes moved by the socket transport (frames +
#: payloads), from the master's point of view.
WIRE_BYTES_SENT = "dist.wire.bytes_sent"
WIRE_BYTES_RECEIVED = "dist.wire.bytes_received"

#: Histogram: candidate spec states entering each log-event level during
#: trace validation — the width of the nondeterminism the matcher is
#: tracking.  One observation per consumed log event.
TRACECHECK_FRONTIER_SIZE = "tracecheck.frontier_size"

#: Counter: internal (unobserved) spec transitions inserted between log
#: events on *accepted* matches — the total stuttering the validator
#: needed to explain the log.
TRACECHECK_STUTTER_STEPS = "tracecheck.stutter_steps"

#: Gauge: strongly connected components of the avoid-region restriction
#: the lasso finder examined on its last temporal check — the size of
#: the fair-cycle search space.
TEMPORAL_SCC_COUNT = "temporal.scc_count"

#: Histogram: cycle length of each lasso counterexample found (a
#: stuttering lasso observes 1).  One observation per violated property.
TEMPORAL_CYCLE_LEN = "temporal.cycle_len"

#: Geometric buckets for size-like observations (fan-out, batch sizes).
SIZE_BOUNDS: Tuple[float, ...] = tuple(2**i for i in range(17))  # 1 .. 65536

#: Geometric buckets for second-valued observations (walk/replay times).
TIME_BOUNDS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
)

#: Millisecond-valued buckets for the per-round master-wait histogram.
WAIT_BOUNDS_MS: Tuple[float, ...] = tuple(b * 1000.0 for b in TIME_BOUNDS)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, states/sec)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with count/total/min/max.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last edge land in the overflow bucket.  Buckets are non-cumulative
    (each observation increments exactly one bucket).
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float] = SIZE_BOUNDS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`to_dict` state into this one."""
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name}: cannot merge mismatched bounds"
            )
        for index, n in enumerate(state["buckets"]):
            self.buckets[index] += n
        self.count += state["count"]
        self.total += state["total"]
        for key, better in (("min", min), ("max", max)):
            other = state[key]
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else better(mine, other))

    def restore(self, state: Dict[str, Any]) -> None:
        self.bounds = tuple(state["bounds"])
        self.buckets = list(state["buckets"])
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """One run's instruments, keyed by name; get-or-create on access."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_counts")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._counts: Dict[str, Dict[str, int]] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] = SIZE_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def counts(self, name: str) -> Dict[str, int]:
        """The raw label -> count dict for ``name`` (hot paths mutate it)."""
        table = self._counts.get(name)
        if table is None:
            table = self._counts[name] = {}
        return table

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def merge_counts(self, name: str, delta: Dict[str, int]) -> None:
        """Add a label -> count delta into the ``name`` family."""
        table = self.counts(name)
        for label, n in delta.items():
            table[label] = table.get(label, 0) + n

    # -- snapshot / restore ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as one JSON-safe dict."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "counts": {name: dict(table) for name, table in self._counts.items()},
            "histograms": {
                name: h.to_dict() for name, h in self._histograms.items()
            },
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Replace this registry's state with a :meth:`snapshot` dict.

        Only the families present in the snapshot are replaced; a
        checkpointed snapshot therefore resets exactly the counters it
        recorded (the resume path uses this to discard everything a
        killed run counted past its last committed checkpoint).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value = value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, table in snapshot.get("counts", {}).items():
            self._counts[name] = dict(table)
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name).restore(state)

    def __repr__(self) -> str:
        families = (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._counts)
        )
        return f"MetricsRegistry({families} instruments)"
