"""The live progress reporter: TLC-style periodic status lines.

Every exploration mode already emits a unified ``progress(stats)``
stream (:class:`~repro.core.engine.SearchStats` every
``progress_interval`` new states, or per parallel round).  The reporter
is a callable that turns that stream into human-readable lines on
stderr, in the style of TLC's periodic progress statistics::

    sandtable: 150000 states, 420000 transitions, depth 12, 51342 states/s, queue 3871

plus a generic :meth:`ProgressReporter.event` for one-off labeled lines
(the selftest sweep reports each spec through the same formatter, so
every live line the CLI prints shares one shape and one stream).

:func:`compose_progress` chains progress consumers (reporter + JSONL
sink + a caller's own callback) into one callable for the engines.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Optional, TextIO

from .metrics import STORE_BYTES, MetricsRegistry

__all__ = ["ProgressReporter", "compose_progress"]

_PREFIX = "sandtable"


class ProgressReporter:
    """Renders the unified progress stream as periodic stderr lines."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = True,
        prefix: str = _PREFIX,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry
        self.enabled = enabled
        self.prefix = prefix
        self.lines_emitted = 0

    def __call__(self, stats: Any) -> None:
        """Consume one ``SearchStats`` progress tick."""
        parts = [
            f"{stats.distinct_states} states",
            f"{stats.transitions} transitions",
            f"depth {stats.max_depth}",
        ]
        if stats.elapsed > 0:
            parts.append(f"{stats.distinct_states / stats.elapsed:.0f} states/s")
        if getattr(stats, "walks", 0):
            parts.append(f"{stats.walks} walks")
        if self.registry is not None:
            queue = self.registry.gauge("engine.queue_depth").value
            if queue:
                parts.append(f"queue {int(queue)}")
            bytes_per_state = self.registry.gauge(STORE_BYTES).value
            if bytes_per_state:
                parts.append(f"{bytes_per_state:.1f} B/state")
        self.emit(", ".join(parts))

    def event(self, label: str, **fields: Any) -> None:
        """One labeled line, e.g. ``event("spec", seed=..., verdict="ok")``."""
        rendered = " ".join(f"{key}={value}" for key, value in fields.items())
        self.emit(f"{label}: {rendered}" if rendered else label)

    def emit(self, message: str) -> None:
        if not self.enabled:
            return
        print(f"{self.prefix}: {message}", file=self.stream, flush=True)
        self.lines_emitted += 1


def compose_progress(
    *callbacks: Optional[Callable[[Any], None]],
) -> Optional[Callable[[Any], None]]:
    """Chain progress consumers; ``None`` entries drop out.

    Returns ``None`` when nothing is left, so engines keep their
    fast ``progress is None`` path.
    """
    live = [cb for cb in callbacks if cb is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def fanout(stats: Any) -> None:
        for cb in live:
            cb(stats)

    return fanout
