"""Checker observability: metrics registry, coverage profiling, progress.

``repro.obs`` is the observability layer for every exploration mode —
the analogue of TLC's coverage/profiling statistics.  It is a *leaf*
package: it imports nothing from the rest of ``repro``, so every other
layer (core, persist, conformance, testkit, CLI) can depend on it
without cycles, and the engines keep seeing it only through an
``Optional[MetricsRegistry]`` parameter that defaults to ``None``
(near-zero cost when disabled — one pointer test per hook).

* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, histograms, and labeled counts; JSON-safe
  ``snapshot``/``restore`` so counters survive checkpoint/resume.
* :mod:`~repro.obs.sink` — the append-only JSONL sink written next to a
  durable run's checkpoints (``metrics.jsonl``).
* :mod:`~repro.obs.reporter` — the TLC-style live progress reporter
  riding the unified ``progress(stats)`` callback.
* :mod:`~repro.obs.report` — the end-of-run per-action coverage report
  (``sandtable coverage``), flagging never-fired actions.
"""

from .metrics import (
    ACTION_FIRES,
    BATCH_BYTES,
    Counter,
    FALLBACK_SERIAL,
    Gauge,
    Histogram,
    MetricsRegistry,
    ROUND_WAIT_MS,
    SIZE_BOUNDS,
    TIME_BOUNDS,
    WAIT_BOUNDS_MS,
    WIRE_BYTES_RECEIVED,
    WIRE_BYTES_SENT,
)
from .report import (
    METRICS_FILENAME,
    ActionCoverage,
    coverage_from_registry,
    coverage_from_sink,
    resolve_sink_path,
)
from .reporter import ProgressReporter, compose_progress
from .sink import MetricsSink, last_metrics, read_sink

__all__ = [
    "ACTION_FIRES",
    "ActionCoverage",
    "BATCH_BYTES",
    "Counter",
    "FALLBACK_SERIAL",
    "Gauge",
    "Histogram",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "MetricsSink",
    "ProgressReporter",
    "ROUND_WAIT_MS",
    "SIZE_BOUNDS",
    "TIME_BOUNDS",
    "WAIT_BOUNDS_MS",
    "WIRE_BYTES_RECEIVED",
    "WIRE_BYTES_SENT",
    "compose_progress",
    "coverage_from_registry",
    "coverage_from_sink",
    "last_metrics",
    "read_sink",
    "resolve_sink_path",
]
