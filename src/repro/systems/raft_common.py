"""The shared Raft implementation the seven Raft-family targets build on.

This is the *implementation level* counterpart of
:mod:`repro.specs.raft.base`: an event-driven process class whose
handlers mirror the spec's actions one-to-one, including the hook points
where the documented bugs live.  Keeping the two levels structurally
parallel is exactly the paper's §3.1 methodology (Figure 3): the spec
abstracts this code's message decoding, logging and persistence, and
models the same protocol transitions.

Message payloads use the same field names as the spec's message records,
so the conformance checker can compare buffered network traffic directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .base import NodeContext, SystemNode

__all__ = ["RaftNode", "FOLLOWER", "CANDIDATE", "LEADER", "PRECANDIDATE"]

FOLLOWER = "Follower"
CANDIDATE = "Candidate"
LEADER = "Leader"
PRECANDIDATE = "PreCandidate"

NOBODY = ""

ELECTION_TIMER = "election"
HEARTBEAT_TIMER = "heartbeat"


class RaftNode(SystemNode):
    """Correct Raft with per-system hook points (see the spec twin)."""

    has_prevote = False
    has_compaction = False

    def __init__(self, ctx: NodeContext, bugs: Sequence[str] = ()):
        super().__init__(ctx, bugs)
        # Volatile state; on_start recovers the persistent part.
        self.role = FOLLOWER
        self.current_term = 0
        self.voted_for = NOBODY
        self.log: List[Dict[str, Any]] = []
        self.commit_index = 0
        self.snapshot_index = 0
        self.snapshot_term = 0
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self.votes_granted: set = set()
        self.pre_votes: set = set()
        self._retained: List[Dict[str, Any]] = []  # WRaft#6 leak anchor

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.current_term = self.ctx.load("currentTerm", 0)
        self.voted_for = self.ctx.load("votedFor", NOBODY)
        self.log = [dict(e) for e in self.ctx.load("log", ())]
        self.snapshot_index = self.ctx.load("snapshotIndex", 0)
        self.snapshot_term = self.ctx.load("snapshotTerm", 0)
        self.role = FOLLOWER
        self.commit_index = self.snapshot_index
        self.next_index = {p: 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self.votes_granted = set()
        self.pre_votes = set()
        self.ctx.set_timer(ELECTION_TIMER)
        self._log_state()

    def _log_state(self) -> None:
        self.ctx.log(
            f"state role={self.role} term={self.current_term}"
            f" commit={self.commit_index} last={self.last_index()}"
        )

    # ------------------------------------------------------------------
    # log accessors (absolute 1-based indices, compaction-aware)
    # ------------------------------------------------------------------

    def quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    def last_index(self) -> int:
        return self.snapshot_index + len(self.log)

    def last_term(self) -> int:
        if self.log:
            return self.log[-1]["term"]
        return self.snapshot_term

    def term_at(self, index: int) -> Optional[int]:
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        if index < self.snapshot_index:
            return None
        pos = index - self.snapshot_index - 1
        if pos >= len(self.log):
            return None
        return self.log[pos]["term"]

    def entries_from(self, start: int) -> List[Dict[str, Any]]:
        pos = max(0, start - self.snapshot_index - 1)
        return [dict(e) for e in self.log[pos:]]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _persist_term_vote(self) -> None:
        self.ctx.persist("currentTerm", self.current_term)
        self.ctx.persist("votedFor", self.voted_for)

    def _persist_log(self) -> None:
        self.ctx.persist("log", tuple(dict(e) for e in self.log))

    def _persist_snapshot(self) -> None:
        self.ctx.persist("snapshotIndex", self.snapshot_index)
        self.ctx.persist("snapshotTerm", self.snapshot_term)

    # ------------------------------------------------------------------
    # role transitions
    # ------------------------------------------------------------------

    def _set_role(self, role: str) -> None:
        if role == self.role:
            return
        self.role = role
        if role == LEADER:
            self.ctx.cancel_timer(ELECTION_TIMER)
            self.ctx.set_timer(HEARTBEAT_TIMER)
        else:
            self.ctx.cancel_timer(HEARTBEAT_TIMER)
            self.ctx.set_timer(ELECTION_TIMER)
        self._log_state()

    def _observe_term(self, term: int) -> None:
        if term <= self.current_term:
            return
        self.current_term = term
        self.voted_for = NOBODY
        self._persist_term_vote()
        self._set_role(FOLLOWER)

    # ------------------------------------------------------------------
    # timeouts
    # ------------------------------------------------------------------

    def on_timeout(self, kind: str) -> None:
        if kind == ELECTION_TIMER:
            if self.role == LEADER:
                return
            if self.has_prevote and self.role != CANDIDATE:
                self._begin_prevote()
            else:
                self._become_candidate()
        elif kind == HEARTBEAT_TIMER:
            if self.role == LEADER:
                self._replicate_all()
        else:
            raise ValueError(f"unknown timer: {kind}")

    def _begin_prevote(self) -> None:
        self._set_role(PRECANDIDATE)
        self.pre_votes = {self.node_id}
        if 1 >= self.quorum():
            self._become_candidate()
            return
        self._broadcast(
            {
                "type": "RequestVote",
                "term": self.current_term + 1,
                "lastLogIndex": self.last_index(),
                "lastLogTerm": self.last_term(),
                "prevote": True,
            }
        )

    def _become_candidate(self) -> None:
        self.current_term += 1
        self.voted_for = self.node_id
        self._persist_term_vote()
        self.votes_granted = {self.node_id}
        self.pre_votes = set()
        self._set_role(CANDIDATE)
        if len(self.votes_granted) >= self.quorum():
            self._become_leader()
            return
        self._broadcast(
            {
                "type": "RequestVote",
                "term": self.current_term,
                "lastLogIndex": self.last_index(),
                "lastLogTerm": self.last_term(),
                "prevote": False,
            }
        )

    def _become_leader(self) -> None:
        last = self.last_index()
        self.next_index = {p: last + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self._set_role(LEADER)
        self._replicate_all()

    # ------------------------------------------------------------------
    # client requests
    # ------------------------------------------------------------------

    def on_client_request(self, op: Any) -> Any:
        if self.role != LEADER:
            return {"ok": False, "error": "not leader"}
        value = op["value"] if isinstance(op, dict) else op
        self.log.append({"term": self.current_term, "val": value})
        self._persist_log()
        self._after_client_request(value)
        return {"ok": True, "index": self.last_index()}

    def _after_client_request(self, value: str) -> None:
        """Hook: variant bookkeeping (Xraft#2's race lives here)."""

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def _send(self, dst: str, payload: Dict[str, Any]) -> bool:
        delivered = self.ctx.send(dst, payload)
        if not delivered:
            self._on_send_failure(dst, payload)
        return delivered

    def _on_send_failure(self, dst: str, payload: Dict[str, Any]) -> None:
        """Hook: PySyncObj#1 raises out of the disconnection path."""

    def _broadcast(self, payload: Dict[str, Any]) -> None:
        for dst in self.peers:
            delivered = self._send(dst, payload)
            if not delivered and self._broadcast_stops_on_failure():
                # WRaft#8: one failed send aborts the whole broadcast.
                break

    def _broadcast_stops_on_failure(self) -> bool:
        return False

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------

    def _replicate_all(self) -> None:
        for peer in self.peers:
            delivered = self._replicate_to(peer)
            if not delivered and self._broadcast_stops_on_failure():
                break

    def _replicate_to(self, peer: str, retry: bool = False) -> bool:
        next_index = self.next_index[peer]
        if self.has_compaction and next_index <= self.snapshot_index:
            return self._send_snapshot(peer)
        prev = next_index - 1
        prev_term = self.term_at(prev) or 0
        entries = self.entries_from(next_index)
        entries = self._select_entries(peer, entries, retry)
        delivered = self._send(
            peer,
            {
                "type": "AppendEntries",
                "term": self.current_term,
                "prevLogIndex": prev,
                "prevLogTerm": prev_term,
                "entries": entries,
                "icommit": self.commit_index,
                "retry": retry,
            },
        )
        self._after_send_append(peer, entries)
        return delivered

    def _select_entries(
        self, peer: str, entries: List[Dict[str, Any]], retry: bool
    ) -> List[Dict[str, Any]]:
        """Hook: WRaft#5 sends empty entries on retries."""
        return entries

    def _after_send_append(self, peer: str, entries: List[Dict[str, Any]]) -> None:
        """Hook: PySyncObj's aggressive next-index optimization."""

    def _send_snapshot(self, peer: str) -> bool:
        """Hook point for WRaft#2 (AppendEntries instead of snapshot)."""
        return self._send(
            peer,
            {
                "type": "InstallSnapshot",
                "term": self.current_term,
                "lastIndex": self.snapshot_index,
                "lastTerm": self.snapshot_term,
                "icommit": self.commit_index,
            },
        )

    def compact(self) -> bool:
        """Engine-triggered log compaction (the WRaft-family module)."""
        if not self.has_compaction or self.commit_index <= self.snapshot_index:
            return False
        term = self.term_at(self.commit_index)
        self.log = self.entries_from(self.commit_index + 1)
        self.snapshot_index = self.commit_index
        self.snapshot_term = term
        self._persist_log()
        self._persist_snapshot()
        return True

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def on_message(self, src: str, message: Dict[str, Any]) -> None:
        handlers = {
            "RequestVote": self._on_request_vote,
            "RequestVoteResponse": self._on_request_vote_response,
            "AppendEntries": self._on_append_entries,
            "AppendEntriesResponse": self._on_append_entries_response,
            "InstallSnapshot": self._on_install_snapshot,
            "InstallSnapshotResponse": self._on_install_snapshot_response,
        }
        handler = handlers.get(message["type"])
        if handler is None:
            raise ValueError(f"unknown message type: {message['type']}")
        handler(src, message)
        if self._leaks_messages():
            self._retained.append(dict(message))  # WRaft#6: never released

    def _leaks_messages(self) -> bool:
        return False

    def resource_stats(self) -> Dict[str, int]:
        return {"retained_messages": len(self._retained)}

    # -- RequestVote --------------------------------------------------------------

    def _on_request_vote(self, src: str, m: Dict[str, Any]) -> None:
        if m["prevote"]:
            self._on_prevote_request(src, m)
            return
        if self._leader_vote_override(src, m):
            return
        self._observe_term(m["term"])
        up_to_date = (m["lastLogTerm"], m["lastLogIndex"]) >= (
            self.last_term(),
            self.last_index(),
        )
        grant = (
            m["term"] == self.current_term
            and self.voted_for in (NOBODY, src)
            and self.role in (FOLLOWER, PRECANDIDATE)
            and up_to_date
        )
        if grant:
            self.voted_for = src
            self._persist_term_vote()
        self._send(
            src,
            {
                "type": "RequestVoteResponse",
                "term": self.current_term,
                "granted": grant,
                "prevote": False,
            },
        )

    def _leader_vote_override(self, src: str, m: Dict[str, Any]) -> bool:
        """Hook: DaosRaft#1 (a leader grants without stepping down)."""
        return False

    def _on_prevote_request(self, src: str, m: Dict[str, Any]) -> None:
        grant = (
            m["term"] > self.current_term
            and self.role != LEADER
            and (m["lastLogTerm"], m["lastLogIndex"])
            >= (self.last_term(), self.last_index())
        )
        self._send(
            src,
            {
                "type": "RequestVoteResponse",
                "term": m["term"],
                "granted": grant,
                "prevote": True,
            },
        )

    def _on_request_vote_response(self, src: str, m: Dict[str, Any]) -> None:
        if m["prevote"]:
            self._on_prevote_response(src, m)
            return
        if m["term"] > self.current_term:
            self._observe_term(m["term"])
            return
        if m["term"] != self.current_term and not self._accept_stale_votes():
            return
        if self.role != CANDIDATE or not m["granted"]:
            return
        self.votes_granted.add(src)
        if len(self.votes_granted) >= self.quorum():
            self._become_leader()

    def _accept_stale_votes(self) -> bool:
        """Hook: Xraft#1 counts grants from older election rounds."""
        return False

    def _on_prevote_response(self, src: str, m: Dict[str, Any]) -> None:
        if self.role != PRECANDIDATE:
            return
        if m["term"] != self.current_term + 1 or not m["granted"]:
            return
        self.pre_votes.add(src)
        if len(self.pre_votes) >= self.quorum():
            self._become_candidate()

    # -- AppendEntries ----------------------------------------------------------------

    def _on_append_entries(self, src: str, m: Dict[str, Any]) -> None:
        if m["term"] < self.current_term:
            self._reply_append(src, False, self._reject_hint(m))
            return
        self._observe_term(m["term"])
        if self.role != FOLLOWER:
            self._set_role(FOLLOWER)

        prev = m["prevLogIndex"]
        entries = [dict(e) for e in m["entries"]]
        if prev < self.snapshot_index:
            overlap = self.snapshot_index - prev
            entries = entries[overlap:]
            prev = self.snapshot_index
        prev_term = self.term_at(prev)
        matched = prev == 0 or (prev_term is not None and prev_term == m["prevLogTerm"])
        if not matched:
            self._reply_append(src, False, self._reject_hint(m))
            return
        self._append_to_log(prev, entries)
        target = self._follower_commit_target(m["icommit"], prev, len(entries))
        self._set_follower_commit(target)
        self._reply_append(src, True, self._success_hint(prev, entries))

    def _reply_append(self, src: str, success: bool, inext: int) -> None:
        self._send(
            src,
            {
                "type": "AppendEntriesResponse",
                "term": self.current_term,
                "success": success,
                "inext": inext,
            },
        )

    def _append_to_log(self, prev: int, entries: List[Dict[str, Any]]) -> None:
        base = prev - self.snapshot_index
        changed = False
        for offset, incoming in enumerate(entries):
            pos = base + offset
            if pos < len(self.log):
                if self.log[pos]["term"] == incoming["term"]:
                    continue
                del self.log[pos:]
                self.log.append(incoming)
                changed = True
            else:
                self.log.append(incoming)
                changed = True
        if changed:
            self._persist_log()

    def _follower_commit_target(self, icommit: int, prev: int, n_entries: int) -> int:
        return min(icommit, prev + n_entries)

    def _set_follower_commit(self, target: int) -> None:
        if target > self.commit_index:
            old = self.commit_index
            self.commit_index = target
            self._on_commit_advance(old, target)

    def _success_hint(self, prev: int, entries: List[Dict[str, Any]]) -> int:
        return prev + len(entries) + 1

    def _reject_hint(self, m: Dict[str, Any]) -> int:
        return max(1, min(self.last_index() + 1, m["prevLogIndex"]))

    # -- AppendEntriesResponse ------------------------------------------------------------

    def _on_append_entries_response(self, src: str, m: Dict[str, Any]) -> None:
        if m["term"] > self.current_term:
            self._observe_term(m["term"])
            return
        if self._stale_term_overwrite(src, m):
            return
        if self.role != LEADER or m["term"] != self.current_term:
            self._on_ignored_response(src, m)
            return
        if m["success"]:
            new_match = m["inext"] - 1
            match = self._update_match(self.match_index[src], new_match)
            self.match_index[src] = match
            self.next_index[src] = self._next_on_success(match, m["inext"])
            self._advance_commit()
        else:
            self.next_index[src] = self._next_on_reject(src, m["inext"])
            self._replicate_to(src, retry=True)

    def _on_ignored_response(self, src: str, m: Dict[str, Any]) -> None:
        """Hook: RaftOS#3 crashes here with a KeyError."""

    def _stale_term_overwrite(self, src: str, m: Dict[str, Any]) -> bool:
        """Hook: WRaft#4 assigns a stale term."""
        return False

    def _update_match(self, old: int, new: int) -> int:
        return max(old, new)

    def _next_on_success(self, match: int, inext: int) -> int:
        return max(match + 1, inext)

    def _next_on_reject(self, peer: str, hint: int) -> int:
        return max(self.match_index[peer] + 1, min(hint, self.last_index() + 1))

    # -- commitment ------------------------------------------------------------------------

    def _commit_term_check(self) -> bool:
        return True

    def _commit_break_on_old_term(self) -> bool:
        return False

    def _advance_commit(self) -> None:
        best = self.commit_index
        for index in range(self.commit_index + 1, self.last_index() + 1):
            replicas = 1 + sum(1 for p in self.peers if self.match_index[p] >= index)
            if replicas < self.quorum():
                break
            if self._commit_term_check() and self.term_at(index) != self.current_term:
                if self._commit_break_on_old_term():
                    break
                continue
            best = index
        if best != self.commit_index:
            old = self.commit_index
            self.commit_index = best
            self._log_state()
            self._on_commit_advance(old, best)

    def _on_commit_advance(self, old: int, new: int) -> None:
        """Hook: apply committed entries (the KV layer)."""

    # -- snapshots ---------------------------------------------------------------------------

    def _on_install_snapshot(self, src: str, m: Dict[str, Any]) -> None:
        if m["term"] < self.current_term:
            self._send(
                src,
                {
                    "type": "InstallSnapshotResponse",
                    "term": self.current_term,
                    "success": False,
                    "lastIndex": self.last_index(),
                },
            )
            return
        self._observe_term(m["term"])
        if self.role != FOLLOWER:
            self._set_role(FOLLOWER)
        if m["lastIndex"] <= self.snapshot_index:
            self._send(
                src,
                {
                    "type": "InstallSnapshotResponse",
                    "term": self.current_term,
                    "success": True,
                    "lastIndex": self.last_index(),
                },
            )
            return
        if self._reject_snapshot_on_conflict(m):
            # WRaft#3: the snapshot is refused because local entries
            # conflict; the follower lags until the next snapshot.
            self._send(
                src,
                {
                    "type": "InstallSnapshotResponse",
                    "term": self.current_term,
                    "success": False,
                    "lastIndex": self.last_index(),
                },
            )
            return
        suffix: List[Dict[str, Any]] = []
        local_term = self.term_at(m["lastIndex"])
        if local_term is not None and local_term == m["lastTerm"]:
            suffix = self.entries_from(m["lastIndex"] + 1)
        old_commit = self.commit_index
        self.snapshot_index = m["lastIndex"]
        self.snapshot_term = m["lastTerm"]
        self.log = suffix
        self.commit_index = max(old_commit, m["lastIndex"])
        self._persist_log()
        self._persist_snapshot()
        if self.commit_index > old_commit:
            self._on_commit_advance(old_commit, self.commit_index)
        self._send(
            src,
            {
                "type": "InstallSnapshotResponse",
                "term": self.current_term,
                "success": True,
                "lastIndex": m["lastIndex"],
            },
        )

    def _reject_snapshot_on_conflict(self, m: Dict[str, Any]) -> bool:
        """Hook: WRaft#3."""
        return False

    def _on_install_snapshot_response(self, src: str, m: Dict[str, Any]) -> None:
        if m["term"] > self.current_term:
            self._observe_term(m["term"])
            return
        if self.role != LEADER or m["term"] != self.current_term:
            return
        if not m["success"]:
            return
        match = self._update_match(self.match_index[src], m["lastIndex"])
        self.match_index[src] = match
        self.next_index[src] = match + 1
        self._advance_commit()

    # ------------------------------------------------------------------
    # state observation (§A.4)
    # ------------------------------------------------------------------

    def extract_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {
            "role": self.role,
            "currentTerm": self.current_term,
            "votedFor": self.voted_for,
            "log": tuple({"term": e["term"], "val": e["val"]} for e in self.log),
            "commitIndex": self.commit_index,
            "nextIndex": dict(self.next_index),
            "matchIndex": dict(self.match_index),
            "votesGranted": frozenset(self.votes_granted),
        }
        if self.has_prevote:
            state["preVotes"] = frozenset(self.pre_votes)
        if self.has_compaction:
            state["snapshotIndex"] = self.snapshot_index
            state["snapshotTerm"] = self.snapshot_term
        return state
