"""WRaft implementation (Table 2 bugs #1–#9).

Mirrors :mod:`repro.specs.raft.wraft` (UDP semantics, log compaction) and
adds the implementation-only bugs the paper found during conformance
checking:

``W3``  The follower rejects the leader's snapshot when its log
        conflicts, lagging behind until the next snapshot.
``W6``  Memory leak: handled messages are retained forever.
``W8``  A failed send prematurely stops the heartbeat broadcast.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .raft_common import RaftNode

__all__ = ["WRaftNode"]


class WRaftNode(RaftNode):
    system_name = "wraft"
    network_kind = "udp"
    has_compaction = True
    supported_bugs = frozenset({"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"})

    def _follower_commit_target(self, icommit: int, prev: int, n_entries: int) -> int:
        if "W1" in self.bugs:
            return min(icommit, self.last_index())  # bug (Figure 7)
        return super()._follower_commit_target(icommit, prev, n_entries)

    def _send_snapshot(self, peer: str) -> bool:
        if "W2" not in self.bugs:
            return super()._send_snapshot(peer)
        # Bug: the compacted range is "replicated" with a plain (and
        # necessarily empty) AppendEntries (Figure 7's AE1).
        next_index = self.next_index[peer]
        prev = next_index - 1
        return self._send(
            peer,
            {
                "type": "AppendEntries",
                "term": self.current_term,
                "prevLogIndex": prev,
                "prevLogTerm": self.term_at(prev) or 0,
                "entries": self.entries_from(next_index),
                "icommit": self.commit_index,
                "retry": False,
            },
        )

    def _stale_term_overwrite(self, src: str, m: Dict[str, Any]) -> bool:
        if "W4" in self.bugs and m["term"] < self.current_term:
            self.current_term = m["term"]  # bug: unchecked assignment
            self._persist_term_vote()
            return True
        return False

    def _select_entries(
        self, peer: str, entries: List[Dict[str, Any]], retry: bool
    ) -> List[Dict[str, Any]]:
        if "W5" in self.bugs and retry:
            return []  # bug: the retry forgets to load entries
        return entries

    def _next_on_reject(self, peer: str, hint: int) -> int:
        if "W7" in self.bugs:
            return hint
        return super()._next_on_reject(peer, hint)

    def _reject_snapshot_on_conflict(self, m: Dict[str, Any]) -> bool:
        if "W3" not in self.bugs:
            return False
        local_term = self.term_at(m["lastIndex"])
        return local_term is not None and local_term != m["lastTerm"]

    def _leaks_messages(self) -> bool:
        return "W6" in self.bugs

    def _broadcast_stops_on_failure(self) -> bool:
        return "W8" in self.bugs
