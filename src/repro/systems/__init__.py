"""Runnable implementations of the eight target systems (§4.2).

Each implementation mirrors its specification twin event-for-event and
carries the same seeded bugs, plus the implementation-only bugs found
during conformance checking.
"""

from typing import Callable, Dict

from .base import NodeContext, SystemCrash, SystemNode
from .daosraft import DaosRaftNode
from .pysyncobj import PySyncObjNode
from .raft_common import RaftNode
from .raftos import RaftOSNode
from .redisraft import RedisRaftNode
from .wraft import WRaftNode
from .xraft import XraftNode
from .xraft_kv import XraftKVNode
from .zookeeper import ZooKeeperNode

#: system name -> node factory
SYSTEMS: Dict[str, Callable] = {
    "pysyncobj": PySyncObjNode,
    "wraft": WRaftNode,
    "redisraft": RedisRaftNode,
    "daosraft": DaosRaftNode,
    "raftos": RaftOSNode,
    "xraft": XraftNode,
    "xraft-kv": XraftKVNode,
    "zookeeper": ZooKeeperNode,
}

__all__ = [
    "DaosRaftNode",
    "NodeContext",
    "PySyncObjNode",
    "RaftNode",
    "RaftOSNode",
    "RedisRaftNode",
    "SYSTEMS",
    "SystemCrash",
    "SystemNode",
    "WRaftNode",
    "XraftKVNode",
    "XraftNode",
    "ZooKeeperNode",
]
