"""RedisRaft implementation: WRaft downstream with PreVote, old bugs fixed."""

from __future__ import annotations

from .wraft import WRaftNode

__all__ = ["RedisRaftNode"]


class RedisRaftNode(WRaftNode):
    system_name = "redisraft"
    has_prevote = True
    # W2/W4/W6/W8 were fixed downstream; W1/W5/W7 still apply.
    supported_bugs = frozenset({"W1", "W5", "W7"})
