"""ZooKeeper implementation (Table 2 bug ZooKeeper#1).

The imperative twin of :mod:`repro.specs.zab`: fast leader election,
discovery, synchronization and broadcast, handled one message per event
(as in the paper's adaptation, worker-thread interleavings are not
modeled — Figure 3's receiver enqueues and the processing happens in the
same event).

``ZK1`` selects the v3.4.3 vote comparator that ignores the proposer
epoch (ZOOKEEPER-1419); without it the comparator is the fixed,
epoch-aware total order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .base import NodeContext, SystemNode

__all__ = ["ZooKeeperNode"]

LOOKING = "LOOKING"
FOLLOWING = "FOLLOWING"
LEADING = "LEADING"

ELECTION = "ELECTION"
DISCOVERY = "DISCOVERY"
SYNC = "SYNC"
BROADCAST = "BROADCAST"

NOBODY = ""
ELECTION_TIMER = "election"


class ZooKeeperNode(SystemNode):
    system_name = "zookeeper"
    network_kind = "tcp"
    supported_bugs = frozenset({"ZK1"})

    def __init__(self, ctx: NodeContext, bugs: Sequence[str] = ()):
        super().__init__(ctx, bugs)
        self.zb_role = LOOKING
        self.phase = ELECTION
        self.logical_clock = 0
        self.current_vote: Dict[str, Any] = {}
        self.recv_votes: Dict[str, Dict[str, Any]] = {}
        self.accepted_epoch = 0
        self.current_epoch = 0
        self.history: List[Dict[str, Any]] = []
        self.last_committed = 0
        self.leader_of = NOBODY
        self.follower_infos: set = set()
        self.epoch_acks: set = set()
        self.sync_acks: set = set()
        self.txn_acks: Dict[Tuple[int, int], set] = {}
        self.txn_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.accepted_epoch = self.ctx.load("acceptedEpoch", 0)
        self.current_epoch = self.ctx.load("currentEpoch", 0)
        self.history = [dict(t) for t in self.ctx.load("history", ())]
        self.last_committed = min(
            self.ctx.load("lastCommitted", 0), len(self.history)
        )
        self.zb_role = LOOKING
        self.phase = ELECTION
        self.logical_clock = 0
        self.current_vote = self._self_vote(round_=0)
        self.recv_votes = {}
        self.leader_of = NOBODY
        self.follower_infos = set()
        self.epoch_acks = set()
        self.sync_acks = set()
        self.txn_acks = {}
        self.txn_counter = 0
        self.ctx.set_timer(ELECTION_TIMER)
        self._log_state()

    def _log_state(self) -> None:
        self.ctx.log(
            f"state role={self.zb_role} phase={self.phase}"
            f" epoch={self.current_epoch} committed={self.last_committed}"
        )

    def _last_zxid(self) -> Tuple[int, int]:
        return tuple(self.history[-1]["zxid"]) if self.history else (0, 0)

    def _self_vote(self, round_: int) -> Dict[str, Any]:
        return {
            "leader": self.node_id,
            "zxid": self._last_zxid(),
            "epoch": self.current_epoch,
            "round": round_,
        }

    def quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    # ------------------------------------------------------------------
    # the vote comparator (ZooKeeper#1 lives here)
    # ------------------------------------------------------------------

    def _beats(self, new: Dict[str, Any], cur: Dict[str, Any]) -> bool:
        if "ZK1" in self.bugs:
            return (tuple(new["zxid"]), new["leader"]) > (
                tuple(cur["zxid"]),
                cur["leader"],
            )
        return (new["epoch"], tuple(new["zxid"]), new["leader"]) > (
            cur["epoch"],
            tuple(cur["zxid"]),
            cur["leader"],
        )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def on_timeout(self, kind: str) -> None:
        if kind != ELECTION_TIMER:
            raise ValueError(f"unknown timer: {kind}")
        self._enter_election()

    def _enter_election(self) -> None:
        self.logical_clock += 1
        self.zb_role = LOOKING
        self.phase = ELECTION
        self.current_vote = self._self_vote(self.logical_clock)
        self.recv_votes = {
            self.node_id: {"vote": dict(self.current_vote), "state": LOOKING}
        }
        self.leader_of = NOBODY
        self.follower_infos = set()
        self.epoch_acks = set()
        self.sync_acks = set()
        self.txn_acks = {}
        self._log_state()
        self._broadcast_notification()

    def _broadcast_notification(self) -> None:
        message = self._notification()
        for dst in self.peers:
            self.ctx.send(dst, message)

    def _notification(self) -> Dict[str, Any]:
        return {
            "type": "Notification",
            "vote": dict(self.current_vote),
            "round": self.logical_clock,
            "state": self.zb_role,
        }

    def on_client_request(self, op: Any) -> Any:
        if self.zb_role != LEADING or self.phase != BROADCAST:
            return {"ok": False, "error": "not a broadcasting leader"}
        value = op["value"] if isinstance(op, dict) else op
        zxid = (self.current_epoch, self.txn_counter + 1)
        txn = {"zxid": zxid, "val": value}
        self.history.append(txn)
        self.txn_counter = zxid[1]
        self.txn_acks[zxid] = {self.node_id}
        self._persist_history()
        for dst in self.peers:
            self.ctx.send(dst, {"type": "Propose", "txn": dict(txn)})
        return {"ok": True, "zxid": list(zxid)}

    def _persist_history(self) -> None:
        self.ctx.persist("history", tuple(dict(t) for t in self.history))
        self.ctx.persist("lastCommitted", self.last_committed)

    def on_message(self, src: str, message: Dict[str, Any]) -> None:
        handlers = {
            "Notification": self._on_notification,
            "FollowerInfo": self._on_follower_info,
            "LeaderInfo": self._on_leader_info,
            "AckEpoch": self._on_ack_epoch,
            "NewLeader": self._on_new_leader,
            "AckLeader": self._on_ack_leader,
            "UpToDate": self._on_up_to_date,
            "Propose": self._on_propose,
            "Ack": self._on_ack,
            "Commit": self._on_commit,
        }
        handler = handlers.get(message["type"])
        if handler is None:
            raise ValueError(f"unknown ZAB message: {message['type']}")
        handler(src, message)

    # ------------------------------------------------------------------
    # fast leader election
    # ------------------------------------------------------------------

    def _on_notification(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != LOOKING:
            if m["state"] == LOOKING:
                self.ctx.send(src, self._notification())
            return

        if m["state"] == LOOKING:
            if m["round"] > self.logical_clock:
                self.logical_clock = m["round"]
                if self._beats(m["vote"], self.current_vote):
                    self.current_vote = dict(m["vote"])
                self.recv_votes = {
                    self.node_id: {"vote": dict(self.current_vote), "state": LOOKING},
                    src: {"vote": dict(m["vote"]), "state": m["state"]},
                }
                self._broadcast_notification()
            elif m["round"] < self.logical_clock:
                self.ctx.send(src, self._notification())
                return
            else:
                adopted = False
                if self._beats(m["vote"], self.current_vote):
                    self.current_vote = dict(m["vote"])
                    adopted = True
                self.recv_votes[src] = {"vote": dict(m["vote"]), "state": m["state"]}
                self.recv_votes[self.node_id] = {
                    "vote": dict(self.current_vote),
                    "state": LOOKING,
                }
                if adopted:
                    self._broadcast_notification()
        else:
            self.recv_votes[src] = {"vote": dict(m["vote"]), "state": m["state"]}

        self._try_decide()

    def _try_decide(self) -> None:
        leader = self.current_vote["leader"]
        backers = {
            peer
            for peer, record in self.recv_votes.items()
            if record["vote"]["leader"] == leader
        }
        if len(backers) < self.quorum():
            return
        if not self._check_leader(leader):
            return
        if leader == self.node_id:
            self._become_leading()
        else:
            self._become_following(leader)

    def _check_leader(self, leader: str) -> bool:
        # The fixed CheckLeader (Figure 4's green line): electing oneself
        # needs no round check.
        if leader == self.node_id:
            return True
        record = self.recv_votes.get(leader)
        if record is None:
            return False
        return record["state"] in (LOOKING, LEADING)

    def _become_leading(self) -> None:
        self.zb_role = LEADING
        self.phase = DISCOVERY
        self.leader_of = self.node_id
        self.accepted_epoch += 1
        self.ctx.persist("acceptedEpoch", self.accepted_epoch)
        self.follower_infos = {self.node_id}
        self.epoch_acks = {self.node_id}
        self.sync_acks = {self.node_id}
        self._log_state()

    def _become_following(self, leader: str) -> None:
        self.zb_role = FOLLOWING
        self.phase = DISCOVERY
        self.leader_of = leader
        self._log_state()
        self.ctx.send(
            leader, {"type": "FollowerInfo", "acceptedEpoch": self.accepted_epoch}
        )

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------

    def _on_follower_info(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != LEADING:
            return
        epoch = max(self.accepted_epoch, m["acceptedEpoch"] + 1)
        self.accepted_epoch = epoch
        self.ctx.persist("acceptedEpoch", epoch)
        self.follower_infos.add(src)
        self.ctx.send(src, {"type": "LeaderInfo", "epoch": epoch})

    def _on_leader_info(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != FOLLOWING or self.leader_of != src:
            return
        if m["epoch"] < self.accepted_epoch:
            self._enter_election()
            return
        self.accepted_epoch = m["epoch"]
        self.ctx.persist("acceptedEpoch", m["epoch"])
        self.ctx.send(
            src,
            {
                "type": "AckEpoch",
                "currentEpoch": self.current_epoch,
                "lastZxid": list(self._last_zxid()),
            },
        )

    def _on_ack_epoch(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != LEADING or self.phase != DISCOVERY:
            return
        self.epoch_acks.add(src)
        self.ctx.send(
            src,
            {
                "type": "NewLeader",
                "epoch": self.accepted_epoch,
                "history": [dict(t) for t in self.history],
            },
        )
        if len(self.epoch_acks) >= self.quorum():
            self.phase = SYNC
            self._log_state()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def _on_new_leader(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != FOLLOWING or self.leader_of != src:
            return
        if m["epoch"] < self.accepted_epoch:
            self._enter_election()
            return
        self.accepted_epoch = max(self.accepted_epoch, m["epoch"])
        self.ctx.persist("acceptedEpoch", self.accepted_epoch)
        self.current_epoch = m["epoch"]
        self.ctx.persist("currentEpoch", m["epoch"])
        self.history = [dict(t) for t in m["history"]]
        self.last_committed = min(self.last_committed, len(self.history))
        self._persist_history()
        self.ctx.send(src, {"type": "AckLeader", "epoch": m["epoch"]})

    def _on_ack_leader(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != LEADING:
            return
        self.sync_acks.add(src)
        if len(self.sync_acks) >= self.quorum() and self.phase != BROADCAST:
            self.phase = BROADCAST
            self.current_epoch = self.accepted_epoch
            self.ctx.persist("currentEpoch", self.current_epoch)
            self.last_committed = len(self.history)
            self.txn_counter = 0
            self._persist_history()
            self._log_state()
            for peer in self.peers:
                if self._is_my_follower(peer):
                    self.ctx.send(
                        peer, {"type": "UpToDate", "epoch": self.current_epoch}
                    )

    def _is_my_follower(self, peer: str) -> bool:
        # The leader only pushes phase messages to peers that registered
        # with it (sent FOLLOWERINFO).
        return peer in self.follower_infos

    def _on_up_to_date(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != FOLLOWING or self.leader_of != src:
            return
        self.phase = BROADCAST
        self.last_committed = len(self.history)
        self._persist_history()
        self._log_state()

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------

    def _on_propose(self, src: str, m: Dict[str, Any]) -> None:
        if self.leader_of != src or self.zb_role != FOLLOWING:
            return
        txn = dict(m["txn"])
        txn["zxid"] = tuple(txn["zxid"])
        self.history.append(txn)
        self._persist_history()
        self.ctx.send(src, {"type": "Ack", "zxid": list(txn["zxid"])})

    def _on_ack(self, src: str, m: Dict[str, Any]) -> None:
        if self.zb_role != LEADING:
            return
        zxid = tuple(m["zxid"])
        ackers = self.txn_acks.setdefault(zxid, set())
        ackers.update({src, self.node_id})
        if len(ackers) >= self.quorum():
            position = self._zxid_position(zxid)
            if position is not None and position > self.last_committed:
                self.last_committed = position
                self._persist_history()
                self._log_state()
                for peer in self.peers:
                    if self._is_my_follower(peer):
                        self.ctx.send(peer, {"type": "Commit", "zxid": list(zxid)})

    def _zxid_position(self, zxid: Tuple[int, int]) -> Optional[int]:
        for position, txn in enumerate(self.history, start=1):
            if tuple(txn["zxid"]) == zxid:
                return position
        return None

    def _on_commit(self, src: str, m: Dict[str, Any]) -> None:
        if self.leader_of != src:
            return
        position = self._zxid_position(tuple(m["zxid"]))
        if position is None or position <= self.last_committed:
            return
        self.last_committed = position
        self._persist_history()
        self._log_state()

    # ------------------------------------------------------------------
    # state observation
    # ------------------------------------------------------------------

    def extract_state(self) -> Dict[str, Any]:
        return {
            "zbRole": self.zb_role,
            "phase": self.phase,
            "logicalClock": self.logical_clock,
            "currentVote": {
                "leader": self.current_vote["leader"],
                "zxid": tuple(self.current_vote["zxid"]),
                "epoch": self.current_vote["epoch"],
                "round": self.current_vote["round"],
            },
            "recvVotes": {
                peer: {
                    "vote": {
                        "leader": record["vote"]["leader"],
                        "zxid": tuple(record["vote"]["zxid"]),
                        "epoch": record["vote"]["epoch"],
                        "round": record["vote"]["round"],
                    },
                    "state": record["state"],
                }
                for peer, record in self.recv_votes.items()
            },
            "acceptedEpoch": self.accepted_epoch,
            "currentEpoch": self.current_epoch,
            "history": tuple(
                {"zxid": tuple(t["zxid"]), "val": t["val"]} for t in self.history
            ),
            "lastCommitted": self.last_committed,
            "leaderOf": self.leader_of,
            "followerInfos": frozenset(self.follower_infos),
            "epochAcks": frozenset(self.epoch_acks),
            "syncAcks": frozenset(self.sync_acks),
            "txnAcks": {
                zxid: frozenset(ackers) for zxid, ackers in self.txn_acks.items()
            },
            "txnCounter": self.txn_counter,
        }
