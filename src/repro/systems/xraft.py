"""Xraft implementation (Table 2 bugs Xraft#1, Xraft#2).

Mirrors :mod:`repro.specs.raft.xraft` (TCP, PreVote) and adds the
implementation-only bug:

``X2``  An unhandled concurrent-modification exception: a client request
        arriving while a previous request is still replicating trips the
        thread race (found by conformance checking).
"""

from __future__ import annotations

from .raft_common import RaftNode

__all__ = ["XraftNode"]


class XraftNode(RaftNode):
    system_name = "xraft"
    network_kind = "tcp"
    has_prevote = True
    supported_bugs = frozenset({"X1", "X2"})

    def _accept_stale_votes(self) -> bool:
        return "X1" in self.bugs

    def _after_client_request(self, value: str) -> None:
        if "X2" in self.bugs and self.commit_index < self.last_index() - 1:
            # The race: the new request mutates the replication state the
            # in-flight request's task is still iterating.
            raise RuntimeError(
                "ConcurrentModificationException in replication state"
            )
