"""The target-system process model.

Each target system is implemented as a :class:`SystemNode`: an
event-driven process whose *only* interaction with the outside world goes
through a :class:`NodeContext` — the surface the runtime's interceptor
controls (§A.1).  The engine drives nodes exclusively through the
node-level events the paper's specs model: message delivery, timeouts,
client requests, crashes and restarts.

``extract_state`` returns the node's protocol state under the *spec
variable names* so the conformance checker can compare the two levels
directly (§A.4).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Protocol, Sequence, Tuple

__all__ = ["NodeContext", "SystemNode", "SystemCrash"]


class SystemCrash(Exception):
    """An unhandled exception escaping a target-system handler.

    The engine treats it like the process aborting (the by-product bugs
    found during conformance checking, e.g. PySyncObj#1, RaftOS#3,
    Xraft#2).
    """

    def __init__(self, node_id: str, event: str, cause: BaseException):
        super().__init__(f"{node_id} crashed handling {event}: {cause!r}")
        self.node_id = node_id
        self.event = event
        self.cause = cause


class NodeContext(Protocol):
    """What a target system may do: the intercepted syscall surface."""

    node_id: str
    peers: Tuple[str, ...]

    def send(self, dst: str, payload: Dict[str, Any]) -> bool: ...

    def now_ns(self) -> int: ...

    def set_timer(self, kind: str) -> None: ...

    def cancel_timer(self, kind: str) -> None: ...

    def persist(self, key: str, value: Any) -> None: ...

    def load(self, key: str, default: Any = None) -> Any: ...

    def log(self, line: str) -> None: ...


class SystemNode(abc.ABC):
    """Base class for target-system processes."""

    def __init__(self, ctx: NodeContext, bugs: Sequence[str] = ()):
        self.ctx = ctx
        self.bugs = frozenset(bugs)

    @property
    def node_id(self) -> str:
        return self.ctx.node_id

    @property
    def peers(self) -> Tuple[str, ...]:
        return self.ctx.peers

    # -- the event surface the engine drives ------------------------------------

    @abc.abstractmethod
    def on_start(self) -> None:
        """Process start/restart: recover persistent state, arm timers."""

    @abc.abstractmethod
    def on_message(self, src: str, message: Dict[str, Any]) -> None:
        """A message delivered by the engine."""

    @abc.abstractmethod
    def on_timeout(self, kind: str) -> None:
        """A timer fired (the engine advanced the virtual clock past it)."""

    @abc.abstractmethod
    def on_client_request(self, op: Any) -> Any:
        """A client request (the paper converts these from shell commands)."""

    # -- state observation (§A.4) ---------------------------------------------------

    @abc.abstractmethod
    def extract_state(self) -> Dict[str, Any]:
        """Protocol state under spec variable names, for conformance."""

    def observed_state(self, observed=None) -> Dict[str, Any]:
        """:meth:`extract_state` projected to an observed-variable subset.

        Trace validation snapshots this after every logged event — the
        per-event ``obs`` field of the emitted log.  ``None`` keeps
        every extracted variable.
        """
        state = self.extract_state()
        if observed is None:
            return state
        keep = frozenset(observed)
        return {var: value for var, value in state.items() if var in keep}

    def resource_stats(self) -> Dict[str, int]:
        """Resource accounting (detects leaks like WRaft#6)."""
        return {}
