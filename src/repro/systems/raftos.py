"""RaftOS implementation (Table 2 bugs #1–#4).

Mirrors :mod:`repro.specs.raft.raftos` (UDP semantics) and adds the
implementation-only bug:

``R3``  KeyError while handling an AppendEntries response that arrives
        when the node is no longer (or not yet) leader — the handler
        touches the match-index map before checking its role (found by
        conformance checking).
"""

from __future__ import annotations

from typing import Any, Dict, List

from .raft_common import LEADER, RaftNode

__all__ = ["RaftOSNode"]


class RaftOSNode(RaftNode):
    system_name = "raftos"
    network_kind = "udp"
    supported_bugs = frozenset({"R1", "R2", "R3", "R4"})

    def _update_match(self, old: int, new: int) -> int:
        if "R1" in self.bugs:
            return new  # bug: plain assignment
        return super()._update_match(old, new)

    def _append_to_log(self, prev: int, entries: List[Dict[str, Any]]) -> None:
        if "R2" not in self.bugs:
            super()._append_to_log(prev, entries)
            return
        # Bug: truncate-then-append without checking for a match.
        base = prev - self.snapshot_index
        new_log = self.log[:base] + [dict(e) for e in entries]
        if new_log != self.log:
            self.log = new_log
            self._persist_log()

    def _commit_break_on_old_term(self) -> bool:
        return "R4" in self.bugs

    def _on_ignored_response(self, src: str, m: Dict[str, Any]) -> None:
        if "R3" in self.bugs and self.role != LEADER:
            # Bug: the stale-response path indexes a map that only
            # exists while leading.
            raise KeyError(src)
