"""PySyncObj implementation (Table 2 bugs #1–#5).

Mirrors :mod:`repro.specs.raft.pysyncobj`, including the aggressive
next-index optimization; adds the implementation-only bug:

``P1``  Unhandled exception during disconnection: a failed send on a
        broken connection escapes the reconnect path and crashes the
        node (found by conformance checking).
"""

from __future__ import annotations

from typing import Any, Dict, List

from .raft_common import RaftNode

__all__ = ["PySyncObjNode"]


class PySyncObjNode(RaftNode):
    system_name = "pysyncobj"
    network_kind = "tcp"
    supported_bugs = frozenset({"P1", "P2", "P3", "P4", "P5"})

    def _after_send_append(self, peer: str, entries: List[Dict[str, Any]]) -> None:
        # The aggressive optimization: assume everything replicates.
        self.next_index[peer] = self.last_index() + 1

    def _on_send_failure(self, dst: str, payload: Dict[str, Any]) -> None:
        if "P1" in self.bugs:
            raise ConnectionError(
                f"unhandled disconnection while sending to {dst}"
            )

    def _set_follower_commit(self, target: int) -> None:
        if "P2" not in self.bugs:
            super()._set_follower_commit(target)
            return
        old = self.commit_index
        if target == old:
            return
        self.commit_index = target  # bug: no forward-only check
        if target > old:
            self._on_commit_advance(old, target)

    def _success_hint(self, prev: int, entries: List[Dict[str, Any]]) -> int:
        if self.bugs & {"P3", "P4"} and entries:
            return prev + len(entries)  # bug: off by one (Figure 6)
        return super()._success_hint(prev, entries)

    def _update_match(self, old: int, new: int) -> int:
        if "P4" in self.bugs:
            return new  # bug: no monotonicity check
        return super()._update_match(old, new)

    def _next_on_success(self, match: int, inext: int) -> int:
        if "P3" in self.bugs:
            return inext  # bug: no clamp above the match index
        return super()._next_on_success(match, inext)

    def _commit_term_check(self) -> bool:
        return "P5" not in self.bugs
