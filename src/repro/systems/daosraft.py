"""DaosRaft implementation: WRaft downstream with PreVote plus DaosRaft#1."""

from __future__ import annotations

from typing import Any, Dict

from .raft_common import LEADER
from .wraft import WRaftNode

__all__ = ["DaosRaftNode"]


class DaosRaftNode(WRaftNode):
    system_name = "daosraft"
    has_prevote = True
    supported_bugs = frozenset({"W1", "W5", "W7", "D1"})

    def _leader_vote_override(self, src: str, m: Dict[str, Any]) -> bool:
        if "D1" not in self.bugs:
            return False
        if self.role != LEADER or m["term"] <= self.current_term:
            return False
        # Bug: the term advances and the vote may be granted, but the
        # step-down is missing (fixed upstream as "reject request vote
        # if self is leader").
        up_to_date = (m["lastLogTerm"], m["lastLogIndex"]) >= (
            self.last_term(),
            self.last_index(),
        )
        self.current_term = m["term"]
        if up_to_date:
            self.voted_for = src
        self._persist_term_vote()
        self._send(
            src,
            {
                "type": "RequestVoteResponse",
                "term": m["term"],
                "granted": up_to_date,
                "prevote": False,
            },
        )
        return True
