"""Xraft-KV implementation (Table 2 bug Xraft-KV#1).

The key-value store on top of the Xraft core (without PreVote, per the
paper).  Put operations replicate through the log; Get operations are
served from the leader's applied state machine.

The correct system confirms leadership with a ReadIndex-style round
before serving a read; that round is abstracted as a guard at the
specification level (see :mod:`repro.specs.raft.xraft_kv`), so the
implementation's read path simply serves the applied value once the
engine delivers the read event.  With ``XKV1`` the read is served
unconditionally — a deposed leader returns stale data.
"""

from __future__ import annotations

from typing import Any, Dict

from .raft_common import LEADER, RaftNode

__all__ = ["XraftKVNode", "UNWRITTEN"]

UNWRITTEN = ""


class XraftKVNode(RaftNode):
    system_name = "xraft-kv"
    network_kind = "tcp"
    has_prevote = False
    supported_bugs = frozenset({"XKV1"})

    def __init__(self, ctx, bugs=()):
        super().__init__(ctx, bugs)
        self.applied_value = UNWRITTEN

    def on_start(self) -> None:
        super().on_start()
        # The state machine is volatile; it is rebuilt as the commit
        # index re-advances after restart.
        self.applied_value = UNWRITTEN

    def _on_commit_advance(self, old: int, new: int) -> None:
        for index in range(old + 1, new + 1):
            pos = index - self.snapshot_index - 1
            if 0 <= pos < len(self.log):
                self.applied_value = self.log[pos]["val"]
        self.ctx.log(f"applied value={self.applied_value} commit={new}")

    def on_client_request(self, op: Any) -> Any:
        if isinstance(op, dict) and op.get("op") == "get":
            if self.role != LEADER:
                return {"ok": False, "error": "not leader"}
            return {"ok": True, "value": self.applied_value}
        value = op["value"] if isinstance(op, dict) else op
        return super().on_client_request({"value": value})

    def extract_state(self) -> Dict[str, Any]:
        state = super().extract_state()
        state["appliedValue"] = self.applied_value
        return state
