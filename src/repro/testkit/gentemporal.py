"""The temporal fuzzer: grade lasso detection against a planted oracle.

A liveness verdict is even easier to get silently wrong than a safety
one — a fair-cycle finder that misses cycles reports "holds" forever,
one that ignores fairness reports phantom lassos.  So the lasso engine
(:mod:`repro.temporal`) gets the differential treatment: seeded random
specs (:mod:`~repro.testkit.genspec`), temporal properties *planted*
over their signature census with oracle-known ground truth, and exact
grading across the engine matrix.

* :func:`plant_temporal_properties` draws ◇ / □◇ / ⤳ properties whose
  predicates target state signatures observed in the naive census —
  deep targets for ◇ (a long prefix to grade), initial-signature
  escapes, random ⤳ source/goal pairs — each optionally under randomly
  drawn weak-fairness declarations, all reconstructible from a pure-JSON
  descriptor (:func:`property_from_descriptor`);
* the ground truth comes from :func:`~repro.testkit.oracle.oracle_check_temporal`
  — mutual-reachability SCCs over the concrete state graph, no
  fingerprints, no Tarjan — which pins the verdict *and* the minimal
  prefix length;
* :func:`run_temporal_fuzz` grades every cell — serial in-memory,
  DiskStore written then reopened read-only
  (:class:`~repro.persist.DiskStoreReader`), symmetry reduction when the
  spec is symmetric, and a durable parallel run reloaded from its worker
  checkpoints — demanding the oracle verdict, the oracle prefix length,
  a lasso that independently revalidates
  (:func:`~repro.testkit.oracle.oracle_validate_lasso`), byte-stable
  JSON round-trips, and byte-identical lassos across stores.  A
  fingerprint-only store must refuse with
  :class:`~repro.core.engine.TracelessStoreError`.  Any disagreement
  lands as a replayable JSON artifact
  (:func:`replay_temporal_artifact`).  Everything derives from the sweep
  seed — the same seed replays the identical matrix.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random
import tempfile
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import CompactStore, FingerprintOnlyStore, TracelessStoreError
from ..core.explorer import BFSExplorer
from ..core.spec import Spec, WeakFairness
from ..persist import (
    DiskStore,
    DiskStoreReader,
    RunDir,
    atomic_write_json,
    load_parallel_resume,
    read_json,
)
from ..persist.checkpoint import load_worker_checkpoint
from ..persist.runner import run_check
from ..temporal import LassoTrace, check_graph, materialize_graph
from ..temporal.properties import (
    TemporalProperty,
    always_eventually,
    eventually,
    leads_to,
)
from .genspec import GeneratedSpec, GenParams, generate_spec, sample_params, signature
from .oracle import (
    OracleTemporalGraph,
    OracleTemporalVerdict,
    oracle_check_temporal,
    oracle_temporal_graph,
    oracle_validate_lasso,
)

__all__ = [
    "TEMPORAL_ARTIFACT_KIND",
    "PlantedProperty",
    "TemporalFuzzFailure",
    "TemporalFuzzReport",
    "plant_temporal_properties",
    "property_from_descriptor",
    "replay_temporal_artifact",
    "run_temporal_fuzz",
]

TEMPORAL_ARTIFACT_KIND = "testkit-temporal-disagreement"

#: Specs whose census exceeds this are skipped: the quadratic
#: mutual-reachability oracle is the point (simple enough to audit), and
#: the parameter sweep produces plenty of specs under the cap.
_STATE_CAP = 1500

#: Same spill pressure the differential matrix uses: a tiny memory
#: budget forces the disk store through its segment machinery even on
#: small generated specs.
_MEMORY_BUDGET = 16


# ---------------------------------------------------------------------------
# property planting
# ---------------------------------------------------------------------------


def _sig_key(sig: Any) -> Tuple:
    """Canonical comparable form of a signature (tuples or JSON lists)."""
    return (tuple(sig[0]), sig[1])


def _sig_json(sig: Any) -> List:
    return [list(sig[0]), sig[1]]


@dataclasses.dataclass
class PlantedProperty:
    """One planted property: the live object plus its JSON descriptor."""

    descriptor: Dict[str, Any]
    prop: TemporalProperty

    @property
    def name(self) -> str:
        return self.prop.name


def property_from_descriptor(descriptor: Dict[str, Any]) -> TemporalProperty:
    """Rebuild a planted property from its pure-JSON descriptor."""
    kind = descriptor["kind"]
    name = descriptor["name"]
    fairness = tuple(
        WeakFairness.of(f"wf{i}", *actions)
        for i, actions in enumerate(descriptor.get("fairness") or ())
    )
    if kind == "leads_to":
        source = _sig_key(descriptor["source"])
        goal = _sig_key(descriptor["goal"])
        return leads_to(
            lambda state: _sig_key(signature(state)) == source,
            lambda state: _sig_key(signature(state)) == goal,
            name=name,
            fairness=fairness,
        )
    target = _sig_key(descriptor["target"])
    negate = bool(descriptor.get("negate"))
    factory = eventually if kind == "eventually" else always_eventually

    def predicate(state):
        return (_sig_key(signature(state)) == target) != negate

    return factory(predicate, name=name, fairness=fairness)


def _draw_fairness(
    rng: random.Random, action_names: Sequence[str]
) -> List[List[str]]:
    """Zero, one, or two weak-fairness sets over random spec actions."""
    if not action_names or rng.random() < 0.5:
        return []
    sets: List[List[str]] = []
    for _ in range(rng.randrange(1, 3)):
        k = rng.randrange(1, min(3, len(action_names)) + 1)
        sets.append(sorted(rng.sample(list(action_names), k)))
    return sets


def plant_temporal_properties(
    generated: GeneratedSpec,
    graph: OracleTemporalGraph,
    rng: random.Random,
) -> List[PlantedProperty]:
    """Plant one property per kind over the spec's signature census.

    Targets are signatures the census actually reaches, with the ◇
    target drawn from the deepest quartile so a violation carries a
    non-trivial minimal prefix to grade.  The rng draws are a fixed
    sequence per property, so the same sweep seed plants the same
    properties.
    """
    spec = generated.spec(invariants=False)
    action_names = sorted(action.name for action in spec.actions())
    sig_depth: Dict[Tuple, int] = {}
    sig_repr: Dict[Tuple, List] = {}
    for state, depth in zip(graph.states, graph.depths):
        key = _sig_key(signature(state))
        if key not in sig_depth or depth < sig_depth[key]:
            sig_depth[key] = depth
        sig_repr.setdefault(key, _sig_json(signature(state)))
    by_depth = sorted(sig_depth, key=lambda key: (sig_depth[key], key))
    init_sig = _sig_key(signature(graph.states[graph.inits[0]]))

    def pick(keys: Sequence[Tuple]) -> List:
        return sig_repr[keys[rng.randrange(len(keys))]]

    planted: List[PlantedProperty] = []

    # ◇(sig == T): T from the deepest quartile of the census.
    deep = by_depth[max(0, len(by_depth) - max(1, len(by_depth) // 4)):]
    planted.append(
        {
            "kind": "eventually",
            "name": "ev-target",
            "target": pick(deep),
            "negate": False,
            "fairness": _draw_fairness(rng, action_names),
        }
    )
    # ◇(sig != init): does every fair behavior escape the initial signature?
    planted.append(
        {
            "kind": "eventually",
            "name": "ev-escape-init",
            "target": sig_repr[init_sig],
            "negate": True,
            "fairness": _draw_fairness(rng, action_names),
        }
    )
    # □◇(sig == T): T anywhere in the census.
    planted.append(
        {
            "kind": "always_eventually",
            "name": "ae-target",
            "target": pick(by_depth),
            "negate": False,
            "fairness": _draw_fairness(rng, action_names),
        }
    )
    # (sig == A) ⤳ (sig == B), A and B distinct where possible.
    source = pick(by_depth)
    goal = pick(by_depth)
    if len(by_depth) > 1:
        while _sig_key(goal) == _sig_key(source):
            goal = pick(by_depth)
    planted.append(
        {
            "kind": "leads_to",
            "name": "lt-pair",
            "source": source,
            "goal": goal,
            "fairness": _draw_fairness(rng, action_names),
        }
    )
    return [
        PlantedProperty(descriptor, property_from_descriptor(descriptor))
        for descriptor in planted
    ]


# ---------------------------------------------------------------------------
# engine cells
# ---------------------------------------------------------------------------

#: Cell names in grading order (symmetry/workers are conditional).
CELLS = ("serial", "disk", "symmetry", "workers")


def _explore_graph(spec: Spec, store, symmetry: bool = False):
    BFSExplorer(
        spec, store=store, symmetry=symmetry, stop_on_violation=False
    ).run()
    return materialize_graph(spec, store, symmetry=symmetry)


def _cell_graph(generated: GeneratedSpec, cell: str):
    """One exhaustive census through the named engine configuration."""
    spec = generated.spec(invariants=False)
    if cell == "serial":
        return _explore_graph(spec, CompactStore()), spec
    if cell == "symmetry":
        return _explore_graph(spec, CompactStore(), symmetry=True), spec
    if cell == "disk":
        with tempfile.TemporaryDirectory(prefix="sandtable-temporal-") as tmp:
            path = os.path.join(tmp, "store")
            store = DiskStore(path, memory_budget=_MEMORY_BUDGET)
            try:
                BFSExplorer(spec, store=store, stop_on_violation=False).run()
            finally:
                store.close()
            # The post-hoc seam under test: reopen the finished store
            # read-only and materialize from its logs.
            return materialize_graph(spec, DiskStoreReader(path)), spec
    if cell == "workers":
        with tempfile.TemporaryDirectory(prefix="sandtable-temporal-") as tmp:
            run_dir = os.path.join(tmp, "run")
            # checkpoint_states=1 commits at every round boundary, so
            # the final committed checkpoint holds the complete census.
            run_check(
                spec,
                run_dir,
                workers=2,
                stop_on_violation=False,
                checkpoint_states=1,
                memory_budget=_MEMORY_BUDGET,
            )
            resume = load_parallel_resume(RunDir.open(run_dir))
            shards = []
            for path in resume.worker_files:
                shard = CompactStore()
                load_worker_checkpoint(path, shard)
                shards.append(shard)
            return materialize_graph(spec, shards), spec
    raise ValueError(f"unknown temporal fuzz cell {cell!r}")


# ---------------------------------------------------------------------------
# the grading sweep
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class TemporalFuzzFailure:
    """One graded cell whose result disagreed with the temporal oracle."""

    spec_seed: str
    params: GenParams
    prop: Optional[Dict[str, Any]]  # descriptor; None for per-spec cells
    cell: str
    message: str

    def describe(self) -> str:
        name = self.prop["name"] if self.prop else "-"
        return f"{self.spec_seed} {name} [{self.cell}]: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": TEMPORAL_ARTIFACT_KIND,
            "spec_seed": self.spec_seed,
            "params": self.params.to_dict(),
            "property": self.prop,
            "cell": self.cell,
            "message": self.message,
        }


@dataclasses.dataclass
class TemporalFuzzReport:
    """The sweep outcome: graded cells, ground-truth mix, and failures."""

    specs: int
    seed: str
    cells: Dict[str, int]
    skipped: Dict[str, int]
    violated: int
    holds: int
    failures: List[TemporalFuzzFailure]
    artifacts: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def graded(self) -> int:
        return sum(self.cells.values())

    def describe(self) -> str:
        lines = [
            f"temporal fuzz: {self.specs} specs (seed {self.seed!r}),"
            f" {self.graded} cells graded"
            f" ({self.violated} violated / {self.holds} holding truths),"
            f" {sum(self.skipped.values())} skipped,"
            f" {len(self.failures)} failures"
        ]
        for cell in sorted(self.cells):
            skip = self.skipped.get(cell, 0)
            lines.append(
                f"  {cell:<10} {self.cells[cell]:>4} graded"
                + (f" ({skip} skipped)" if skip else "")
            )
        for failure in self.failures[:20]:
            lines.append(f"  FAIL {failure.describe()}")
        for path in self.artifacts:
            lines.append(f"  artifact: {path}")
        return "\n".join(lines)


def _grade_property(
    spec: Spec,
    cell: str,
    graph,
    prop: TemporalProperty,
    truth: OracleTemporalVerdict,
) -> Tuple[Optional[str], Optional[str]]:
    """Check one property on one cell graph: (failure message, lasso JSON)."""
    result = check_graph(graph, prop)
    if result.holds == truth.violated:
        engine = "holds" if result.holds else "violated"
        oracle = "violated" if truth.violated else "holds"
        return f"engine says {engine}, oracle says {oracle}", None
    if result.lasso is None:
        return None, None
    lasso = result.lasso
    if lasso.prefix_length != truth.min_prefix:
        return (
            f"prefix length {lasso.prefix_length},"
            f" oracle minimum is {truth.min_prefix}",
            None,
        )
    defect = oracle_validate_lasso(spec, prop, lasso, symmetric=cell == "symmetry")
    if defect is not None:
        return f"lasso invalid: {defect}", None
    text = lasso.to_json()
    if LassoTrace.from_json(text).to_json() != text:
        return "lasso JSON round-trip is not byte-stable", None
    return None, text


def run_temporal_fuzz(
    n_specs: int = 25,
    seed: str = "0",
    out_dir: Optional[os.PathLike] = None,
    serial_only: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> TemporalFuzzReport:
    """Grade the lasso engine over ``n_specs`` generated specs.

    Per spec: four planted properties (◇ target, ◇ init-escape, □◇, ⤳)
    graded through every cell — serial, disk-reopened, symmetry (when
    the spec is symmetric), parallel-from-worker-checkpoints (unless
    ``serial_only`` or fork is unavailable) — plus one traceless-store
    rejection cell.  Zero tolerance: any verdict, prefix-length, lasso
    validity, or byte-stability disagreement is a failure, written as a
    replayable artifact when ``out_dir`` is given.
    """
    cells: Dict[str, int] = {}
    skipped: Dict[str, int] = {}
    failures: List[TemporalFuzzFailure] = []
    artifacts: List[str] = []
    violated = holds = 0
    workers_possible = (
        not serial_only and "fork" in multiprocessing.get_all_start_methods()
    )

    def fail(
        spec_seed: str,
        params: GenParams,
        prop: Optional[Dict[str, Any]],
        cell: str,
        message: str,
    ) -> None:
        failure = TemporalFuzzFailure(spec_seed, params, prop, cell, message)
        failures.append(failure)
        if out_dir is not None:
            artifacts.append(_save_artifact(out_dir, failure))

    for index in range(n_specs):
        spec_seed = f"{seed}-temporal-{index}"
        params = sample_params(random.Random(f"{seed}-tparams-{index}"))
        generated = generate_spec(spec_seed, params)
        spec = generated.spec(invariants=False)
        if progress is not None:
            progress(f"[{index + 1}/{n_specs}] {spec_seed}")

        oracle_graph = oracle_temporal_graph(spec)
        if len(oracle_graph.states) > _STATE_CAP:
            skipped["oversize"] = skipped.get("oversize", 0) + 1
            continue
        rng = random.Random(f"{seed}:temporal:{index}")
        planted = plant_temporal_properties(generated, oracle_graph, rng)
        truths = {
            item.name: oracle_check_temporal(spec, item.prop, oracle_graph)
            for item in planted
        }
        for truth in truths.values():
            if truth.violated:
                violated += 1
            else:
                holds += 1

        # -- traceless: the fingerprint-only store must refuse ----------
        cells["traceless"] = cells.get("traceless", 0) + 1
        try:
            materialize_graph(spec, FingerprintOnlyStore())
            fail(
                spec_seed,
                params,
                None,
                "traceless",
                "materialize_graph accepted a fingerprint-only store",
            )
        except TracelessStoreError:
            pass

        active = ["serial", "disk"]
        if generated.symmetric:
            active.append("symmetry")
        if workers_possible:
            active.append("workers")
        reference_json: Dict[str, str] = {}  # property -> serial lasso bytes
        for cell in active:
            graph, cell_spec = _cell_graph(generated, cell)
            if graph.unreached:
                fail(
                    spec_seed,
                    params,
                    None,
                    cell,
                    f"{graph.unreached} stored states unreachable in replay",
                )
                continue
            if graph.boundary_edges:
                fail(
                    spec_seed,
                    params,
                    None,
                    cell,
                    f"{graph.boundary_edges} boundary edges on an exhaustive run",
                )
                continue
            if cell != "symmetry" and len(graph) != len(oracle_graph.states):
                fail(
                    spec_seed,
                    params,
                    None,
                    cell,
                    f"census {len(graph)} states, oracle has"
                    f" {len(oracle_graph.states)}",
                )
                continue
            for item in planted:
                cells[cell] = cells.get(cell, 0) + 1
                message, lasso_json = _grade_property(
                    cell_spec, cell, graph, item.prop, truths[item.name]
                )
                if message is not None:
                    fail(spec_seed, params, item.descriptor, cell, message)
                    continue
                if lasso_json is None:
                    continue
                # Symmetry picks orbit representatives, so its concrete
                # lasso may legitimately differ; every other cell must
                # emit byte-identical JSON.
                if cell == "symmetry":
                    continue
                if item.name not in reference_json:
                    reference_json[item.name] = lasso_json
                elif reference_json[item.name] != lasso_json:
                    fail(
                        spec_seed,
                        params,
                        item.descriptor,
                        cell,
                        "lasso JSON differs from the serial cell's",
                    )

    return TemporalFuzzReport(
        specs=n_specs,
        seed=seed,
        cells=cells,
        skipped=skipped,
        violated=violated,
        holds=holds,
        failures=failures,
        artifacts=artifacts,
    )


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------


def _save_artifact(out_dir: os.PathLike, failure: TemporalFuzzFailure) -> str:
    os.makedirs(out_dir, exist_ok=True)
    name = failure.prop["name"] if failure.prop else "spec"
    path = os.path.join(
        os.fspath(out_dir),
        f"temporal-{failure.spec_seed.replace(':', '_')}-{failure.cell}-{name}.json",
    )
    atomic_write_json(path, failure.to_dict())
    return path


def replay_temporal_artifact(path: os.PathLike) -> Dict[str, Any]:
    """Regenerate a temporal disagreement's spec and re-run its cell.

    Returns the fresh comparison: the oracle verdict, the engine
    verdict, and (when a lasso was found) its prefix length and
    validation defect — everything needed to see whether the
    disagreement still reproduces.
    """
    raw = read_json(path)
    if raw.get("kind") != TEMPORAL_ARTIFACT_KIND:
        raise ValueError(
            f"{os.fspath(path)} is not a {TEMPORAL_ARTIFACT_KIND} artifact"
        )
    params = GenParams.from_dict(raw["params"])
    generated = generate_spec(raw["spec_seed"], params)
    spec = generated.spec(invariants=False)
    cell = raw["cell"]
    if cell == "traceless":
        try:
            materialize_graph(spec, FingerprintOnlyStore())
            refused = False
        except TracelessStoreError:
            refused = True
        return {"cell": cell, "traceless_refused": refused}
    descriptor = raw.get("property")
    graph, cell_spec = _cell_graph(
        generated, cell if cell in CELLS else "serial"
    )
    out: Dict[str, Any] = {
        "cell": cell,
        "graph_states": len(graph),
        "unreached": graph.unreached,
        "boundary_edges": graph.boundary_edges,
    }
    if descriptor is not None:
        prop = property_from_descriptor(descriptor)
        truth = oracle_check_temporal(spec, prop)
        result = check_graph(graph, prop)
        out.update(
            oracle_violated=truth.violated,
            oracle_min_prefix=truth.min_prefix,
            engine_violated=not result.holds,
            prefix_length=(
                result.lasso.prefix_length if result.lasso is not None else None
            ),
            lasso_defect=(
                oracle_validate_lasso(
                    cell_spec, prop, result.lasso, symmetric=cell == "symmetry"
                )
                if result.lasso is not None
                else None
            ),
        )
    return out
