"""Differential fuzzing: every engine configuration against the oracle.

For each generated spec the harness runs two phases:

* **census** — the spec *without* its planted invariant, explored
  exhaustively by every configuration in the matrix: serial BFS over
  each state store (in-memory, compact, sharded, disk), symmetry
  reduction on, sharded parallel BFS with 2 and 3 workers (with and
  without symmetry), a durable run that is killed at a checkpoint
  and resumed, and *interpreted* counterparts of the serial, symmetry,
  worker, and kill-and-resume cells (``compiled=False``, i.e. the
  uncompiled ``Spec.successors`` pipeline — so the compiled hot path is
  differentially graded against the interpreted one on every sweep).
  Every configuration must agree with the oracle on the
  distinct-state count, the enumerated-transition count, the diameter,
  and the ``exhausted`` stop reason (symmetry-reduced runs are graded
  against the oracle's quotient counts).
* **violation** — the spec *with* the planted invariant,
  ``stop_on_violation=True``.  Configurations differ legitimately in how
  much they explore before stopping (parallel BFS finishes its round),
  so this phase compares only what BFS minimality guarantees: the
  ``violation`` stop reason, the violated invariant's name, and the
  counterexample depth, which must equal the planted minimal depth
  exactly.

Both phases also carry **fast** (traceless fingerprint-only store, with
bounded re-search of any violation), **POR** (partial-order-reduced
compile) and combined cells.  A fast cell's re-searched counterexample
must be *byte-identical* (as sorted JSON) to the trace of a plain
serial full-store run of the same spec under the same symmetry/POR
settings.  POR census cells must still match the oracle exactly — an
invariant-free spec has an empty prune set by construction — while
**exhaustive** cells re-run the violation-phase spec with
``stop_on_violation=False`` and grade the full census of the (possibly
POR-reduced) space against the oracle with the statically pruned
actions excluded, plus the minimal violation depth.

Any mismatch — including an exception escaping a configuration — is a
:class:`Disagreement` carrying the spec seed, generator params, and
config: everything needed to regenerate the identical spec and re-run
the one failing cell.  With an output directory each disagreement is
also written as a JSON artifact (via the same crash-safe writer as
:mod:`repro.persist`), and :func:`replay_artifact` turns such a file
back into a live re-run.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import random
import tempfile
import threading
import warnings
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.compile import por_prune_set
from ..core.engine import CompactStore, SearchResult, ShardedStateStore, StopReason
from ..core.explorer import BFSExplorer, bfs_explore
from ..core.state import CODEC_VERSION
from ..obs.metrics import ACTION_FIRES, MetricsRegistry
from ..persist.diskstore import DiskStore
from ..persist.rundir import atomic_write_json, read_json
from ..persist.runner import run_check
from .genspec import GeneratedSpec, GenParams, generate_spec, sample_params
from .oracle import OracleResult, oracle_explore

__all__ = [
    "MatrixConfig",
    "Disagreement",
    "DifferentialReport",
    "build_matrix",
    "check_spec",
    "run_differential",
    "replay_artifact",
    "ARTIFACT_KIND",
]

ARTIFACT_KIND = "testkit-disagreement"

#: Durable configs use tiny budgets so even ~100-state specs exercise
#: checkpointing, memory-set spills, and the kill→resume path.
_CHECKPOINT_STATES = 7
_MEMORY_BUDGET = 16


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclasses.dataclass(frozen=True)
class MatrixConfig:
    """One cell of the configuration matrix."""

    name: str
    phase: str  # "census" | "violation"
    workers: int = 1
    store: str = "memory"  # "memory" | "compact" | "sharded" | "disk"
    symmetry: bool = False
    durable: bool = False  # kill at a checkpoint, then resume
    compiled: bool = True  # False = interpreted Spec.successors pipeline
    fast: bool = False  # traceless store + bounded re-search
    por: bool = False  # partial-order-reduced compile
    exhaustive: bool = False  # violation-phase spec, stop_on_violation=False
    transport: str = "fork"  # "fork" | "socket" (repro.dist worker agents)
    dist_kill: bool = False  # kill one socket agent mid-run; spare adopts

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "MatrixConfig":
        return cls(**raw)


def build_matrix(
    generated: GeneratedSpec,
    parallel: bool = True,
    fast: bool = False,
    por: bool = False,
) -> List[MatrixConfig]:
    """The configuration matrix for one generated spec.

    Symmetry cells appear only for symmetric specs, worker cells only
    when ``parallel`` is requested and the platform can fork, and
    violation cells only when a violation was actually planted.

    ``fast``/``por`` *force* the corresponding reducer onto every cell
    (dropping cells whose store or pipeline is incompatible: fast mode
    needs a traceless-capable store, POR needs the compiled pipeline) —
    the hammer behind ``sandtable selftest --fast/--por``.
    """
    census: List[MatrixConfig] = [
        MatrixConfig("census/serial-memory", "census"),
        MatrixConfig("census/serial-interpreted", "census", compiled=False),
        MatrixConfig("census/serial-compact", "census", store="compact"),
        MatrixConfig("census/serial-sharded", "census", store="sharded"),
        MatrixConfig("census/serial-disk", "census", store="disk"),
        MatrixConfig("census/durable-resume", "census", store="disk", durable=True),
        MatrixConfig(
            "census/interpreted-resume",
            "census",
            store="disk",
            durable=True,
            compiled=False,
        ),
        MatrixConfig("census/fast-serial", "census", fast=True),
        MatrixConfig("census/fast-disk", "census", store="disk", fast=True),
        MatrixConfig(
            "census/fast-resume", "census", store="disk", durable=True, fast=True
        ),
        MatrixConfig("census/por-serial", "census", por=True),
        MatrixConfig("census/fast-por-serial", "census", fast=True, por=True),
    ]
    if generated.symmetric:
        census.append(MatrixConfig("census/serial-symmetry", "census", symmetry=True))
        census.append(
            MatrixConfig(
                "census/interpreted-symmetry", "census", symmetry=True, compiled=False
            )
        )
        census.append(
            MatrixConfig("census/fast-symmetry", "census", symmetry=True, fast=True)
        )
    if parallel and _fork_available():
        census.append(MatrixConfig("census/workers-2", "census", workers=2))
        census.append(MatrixConfig("census/workers-3", "census", workers=3))
        census.append(
            MatrixConfig(
                "census/interpreted-workers-2", "census", workers=2, compiled=False
            )
        )
        census.append(
            MatrixConfig("census/fast-workers-2", "census", workers=2, fast=True)
        )
        if generated.symmetric:
            census.append(
                MatrixConfig("census/workers-2-symmetry", "census", workers=2, symmetry=True)
            )
        # Socket-distributed cells: the same owner-computes exchange
        # over repro.dist worker agents (in-process threads here), and a
        # kill-one-agent cell where a warm spare adopts the dead shard.
        census.append(
            MatrixConfig("census/dist-2", "census", workers=2, transport="socket")
        )
        census.append(
            MatrixConfig(
                "census/fast-dist-2", "census", workers=2, transport="socket", fast=True
            )
        )
        census.append(
            MatrixConfig(
                "census/dist-kill",
                "census",
                workers=2,
                transport="socket",
                dist_kill=True,
            )
        )

    matrix = census
    if generated.planted is not None:
        matrix = matrix + [
            MatrixConfig("violation/serial-memory", "violation"),
            MatrixConfig("violation/serial-interpreted", "violation", compiled=False),
            MatrixConfig("violation/serial-disk", "violation", store="disk"),
            MatrixConfig(
                "violation/durable-resume", "violation", store="disk", durable=True
            ),
            MatrixConfig("violation/fast-serial", "violation", fast=True),
            MatrixConfig("violation/fast-disk", "violation", store="disk", fast=True),
            MatrixConfig(
                "violation/fast-resume",
                "violation",
                store="disk",
                durable=True,
                fast=True,
            ),
            MatrixConfig("violation/por-serial", "violation", por=True),
            MatrixConfig(
                "violation/por-resume",
                "violation",
                store="disk",
                durable=True,
                por=True,
            ),
            MatrixConfig("violation/fast-por-serial", "violation", fast=True, por=True),
            MatrixConfig("violation/exhaustive-serial", "violation", exhaustive=True),
            MatrixConfig(
                "violation/fast-exhaustive", "violation", fast=True, exhaustive=True
            ),
            MatrixConfig(
                "violation/por-exhaustive", "violation", por=True, exhaustive=True
            ),
            MatrixConfig(
                "violation/fast-exhaustive-resume",
                "violation",
                store="disk",
                durable=True,
                fast=True,
                exhaustive=True,
            ),
        ]
        if generated.symmetric:
            matrix.append(
                MatrixConfig("violation/serial-symmetry", "violation", symmetry=True)
            )
            matrix.append(
                MatrixConfig(
                    "violation/fast-symmetry", "violation", symmetry=True, fast=True
                )
            )
        if parallel and _fork_available():
            matrix.append(MatrixConfig("violation/workers-2", "violation", workers=2))
            matrix.append(
                MatrixConfig(
                    "violation/fast-workers-2", "violation", workers=2, fast=True
                )
            )
            matrix.append(
                MatrixConfig(
                    "violation/por-workers-2", "violation", workers=2, por=True
                )
            )
            matrix.append(
                MatrixConfig(
                    "violation/dist-2", "violation", workers=2, transport="socket"
                )
            )
            matrix.append(
                MatrixConfig(
                    "violation/dist-kill",
                    "violation",
                    workers=2,
                    transport="socket",
                    dist_kill=True,
                )
            )
    if fast or por:
        forced: List[MatrixConfig] = []
        seen = set()
        for cfg in matrix:
            if fast and cfg.store in ("compact", "sharded"):
                continue  # no traceless variant of these stores
            if por and not cfg.compiled:
                continue  # POR needs the compiled pipeline
            cfg = dataclasses.replace(cfg, fast=cfg.fast or fast, por=cfg.por or por)
            # Forcing collapses cells (serial-memory forced fast ==
            # fast-serial); keep one per distinct configuration.
            key = dataclasses.replace(cfg, name="")
            if key in seen:
                continue
            seen.add(key)
            forced.append(cfg)
        matrix = forced
    return matrix


@dataclasses.dataclass
class Disagreement:
    """One engine-vs-oracle mismatch, replayable from its fields alone."""

    spec_seed: str
    params: GenParams
    config: MatrixConfig
    field: str
    expected: Any
    actual: Any

    def describe(self) -> str:
        return (
            f"spec {self.spec_seed} [{self.config.name}]: {self.field}"
            f" expected {self.expected!r}, got {self.actual!r}"
        )

    def to_dict(self, oracle: Optional[OracleResult] = None) -> Dict[str, Any]:
        payload = {
            "kind": ARTIFACT_KIND,
            "codec_version": CODEC_VERSION,
            "spec_seed": self.spec_seed,
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "field": self.field,
            "expected": self.expected,
            "actual": self.actual,
        }
        if oracle is not None:
            payload["oracle"] = oracle.to_dict()
        return payload


@dataclasses.dataclass
class DifferentialReport:
    """Outcome of one fuzzing sweep."""

    specs: int = 0
    configs_run: int = 0
    disagreements: List[Disagreement] = dataclasses.field(default_factory=list)
    artifacts: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def describe(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENTS"
        lines = [
            f"selftest: {self.specs} specs x matrix"
            f" = {self.configs_run} configurations, {verdict}"
        ]
        for item in self.disagreements:
            lines.append(f"  {item.describe()}")
        for path in self.artifacts:
            lines.append(f"  artifact: {path}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# running one configuration
# ---------------------------------------------------------------------------


class _Interrupted(RuntimeError):
    """Raised from the checkpoint hook to simulate a mid-run kill."""


def _kill_after(n: int) -> Callable[[Any], None]:
    count = 0

    def hook(_info: Any) -> None:
        nonlocal count
        count += 1
        if count >= n:
            raise _Interrupted(f"killed at checkpoint {count}")

    return hook


def _run_config(
    generated: GeneratedSpec, config: MatrixConfig
) -> Tuple[SearchResult, MetricsRegistry]:
    """Execute one matrix cell; return its result and its metrics registry.

    Every cell runs instrumented, so the per-action coverage counters
    (``engine.action_fires``) are themselves under differential test:
    census cells must partition the oracle's transition count by action
    exactly, in every engine configuration.
    """
    spec = generated.spec(invariants=config.phase == "violation")
    stop = config.phase == "violation" and not config.exhaustive
    registry = MetricsRegistry()
    if config.durable:
        with tempfile.TemporaryDirectory(prefix="sandtable-selftest-") as tmp:
            run_dir = os.path.join(tmp, "run")
            try:
                return (
                    run_check(
                        spec,
                        run_dir,
                        symmetry=config.symmetry,
                        stop_on_violation=stop,
                        compiled=config.compiled,
                        fast=config.fast,
                        por=config.por,
                        checkpoint_states=_CHECKPOINT_STATES,
                        memory_budget=_MEMORY_BUDGET,
                        on_checkpoint=_kill_after(2),
                        metrics=registry,
                    ),
                    registry,
                )
            except _Interrupted:
                pass
            # The resumed session starts with an empty registry, exactly
            # like a fresh process would; the checkpoint restore must
            # rebuild the cumulative counters on its own.
            resumed = MetricsRegistry()
            return (
                run_check(
                    spec,
                    run_dir,
                    resume=True,
                    symmetry=config.symmetry,
                    stop_on_violation=stop,
                    compiled=config.compiled,
                    fast=config.fast,
                    por=config.por,
                    checkpoint_states=_CHECKPOINT_STATES,
                    memory_budget=_MEMORY_BUDGET,
                    metrics=resumed,
                ),
                resumed,
            )
    if config.workers > 1 and config.transport == "socket":
        return _run_socket_config(generated, config, spec, stop, registry)
    if config.workers > 1:
        return (
            bfs_explore(
                spec,
                workers=config.workers,
                symmetry=config.symmetry,
                stop_on_violation=stop,
                metrics=registry,
                compiled=config.compiled,
                fast=config.fast,
                por=config.por,
            ),
            registry,
        )
    if config.store == "disk":
        with tempfile.TemporaryDirectory(prefix="sandtable-selftest-") as tmp:
            store = DiskStore(
                os.path.join(tmp, "store"),
                memory_budget=_MEMORY_BUDGET,
                traceless=config.fast,
                metrics=registry,
            )
            try:
                return (
                    BFSExplorer(
                        spec,
                        symmetry=config.symmetry,
                        stop_on_violation=stop,
                        store=store,
                        metrics=registry,
                        compiled=config.compiled,
                        fast=config.fast,
                        por=config.por,
                    ).run(),
                    registry,
                )
            finally:
                store.close()
    store = {
        "memory": lambda: None,
        "compact": CompactStore,
        "sharded": lambda: ShardedStateStore(8),
    }[config.store]()
    return (
        BFSExplorer(
            spec,
            symmetry=config.symmetry,
            stop_on_violation=stop,
            store=store,
            metrics=registry,
            compiled=config.compiled,
            fast=config.fast,
            por=config.por,
        ).run(),
        registry,
    )


#: Ops into a session before the fault-injected agent vanishes: late
#: enough that real exchange (and, durably, a checkpoint commit) has
#: happened, early enough that recovery still has work left to redo.
_DIST_KILL_AFTER_OPS = 6


def _run_socket_config(
    generated: GeneratedSpec,
    config: MatrixConfig,
    spec: Any,
    stop: bool,
    registry: MetricsRegistry,
) -> Tuple[SearchResult, MetricsRegistry]:
    """One socket-transport cell: in-process worker agents over TCP.

    The agents run :class:`~repro.dist.agent.WorkerAgent` on loopback
    (threads, ephemeral ports) and resolve the spec from its *testkit
    reference* — so the spec-fingerprint handshake, the codec-bytes wire
    batches, and (for ``dist_kill``) the kill→reassign→rollback path are
    all under differential test against the oracle.
    """
    from ..dist.agent import WorkerAgent
    from ..dist.specref import testkit_ref
    from ..dist.transport import SocketTransport

    ref = testkit_ref(
        generated.seed, generated.params, invariants=config.phase == "violation"
    )
    agents: List[WorkerAgent] = []
    try:
        for index in range(config.workers):
            die = (
                _DIST_KILL_AFTER_OPS
                if config.dist_kill and index == config.workers - 1
                else None
            )
            agents.append(WorkerAgent(die_after_ops=die))
        if config.dist_kill:
            agents.append(WorkerAgent())  # the warm spare that adopts the shard
        for agent in agents:
            threading.Thread(
                target=agent.serve_forever,
                name=f"sandtable-test-agent-{agent.port}",
                daemon=True,
            ).start()
        transport = SocketTransport([agent.address for agent in agents], ref)
        with warnings.catch_warnings():
            # The reassignment RuntimeWarning is this cell's expected
            # behaviour, not a finding.
            warnings.simplefilter("ignore", RuntimeWarning)
            if config.dist_kill:
                # Durable run: the reassigned shard must roll back to the
                # last *committed* generation shipped over the wire.
                with tempfile.TemporaryDirectory(
                    prefix="sandtable-selftest-"
                ) as tmp:
                    return (
                        run_check(
                            spec,
                            os.path.join(tmp, "run"),
                            workers=config.workers,
                            transport=transport,
                            symmetry=config.symmetry,
                            stop_on_violation=stop,
                            compiled=config.compiled,
                            fast=config.fast,
                            por=config.por,
                            checkpoint_states=_CHECKPOINT_STATES,
                            metrics=registry,
                        ),
                        registry,
                    )
            return (
                bfs_explore(
                    spec,
                    workers=config.workers,
                    transport=transport,
                    symmetry=config.symmetry,
                    stop_on_violation=stop,
                    metrics=registry,
                    compiled=config.compiled,
                    fast=config.fast,
                    por=config.por,
                ),
                registry,
            )
    finally:
        for agent in agents:
            agent.close()


# ---------------------------------------------------------------------------
# grading results against the oracle
# ---------------------------------------------------------------------------


def _expected_census(
    oracle: OracleResult, config: MatrixConfig
) -> List[Tuple[str, Any]]:
    if config.symmetry:
        return [
            ("states", oracle.orbit_states),
            ("transitions", oracle.orbit_transitions),
            ("max_depth", oracle.orbit_diameter),
        ]
    return [
        ("states", oracle.states),
        ("transitions", oracle.transitions),
        ("max_depth", oracle.diameter),
    ]


def _por_oracle(generated: GeneratedSpec, cache: Dict[Any, Any]) -> OracleResult:
    """Ground truth for a POR-reduced exhaustive run, computed lazily.

    The POR census must equal the census of the spec with the
    statically pruned actions removed — the oracle with those actions
    excluded, computed on the *invariant-carrying* spec (the prune set
    depends on the invariants' declared reads).
    """
    if "por-oracle" not in cache:
        spec = generated.spec(invariants=True)
        cache["por-oracle"] = oracle_explore(
            spec, exclude_actions=por_prune_set(spec)
        )
    return cache["por-oracle"]


def _reference_trace(
    generated: GeneratedSpec, config: MatrixConfig, cache: Dict[Any, Any]
) -> str:
    """Sorted-JSON counterexample of a plain serial full-store run.

    One reference per (symmetry, por) combination: the fast cells'
    bounded re-search must reproduce this trace byte-for-byte.
    """
    key = ("reference-trace", config.symmetry, config.por)
    if key not in cache:
        reference = BFSExplorer(
            generated.spec(invariants=True),
            symmetry=config.symmetry,
            por=config.por,
            stop_on_violation=True,
        ).run()
        if reference.violation is None:
            cache[key] = "<reference full-store run found no violation>"
        else:
            cache[key] = json.dumps(
                reference.violation.trace.to_dict(), sort_keys=True
            )
    return cache[key]


def _parallel_reference_trace(
    generated: GeneratedSpec, config: MatrixConfig, cache: Dict[Any, Any]
) -> str:
    """Sorted-JSON counterexample of a fork-parallel run of the same cell.

    The socket transport must be *invisible*: a distributed violation
    cell has to reconstruct the byte-identical minimal trace the fork
    transport produces for the same worker count (serial is not the
    right reference — parallel BFS finishes its round, so it may stop on
    a different same-depth counterexample than a serial sweep).
    """
    key = ("parallel-ref", config.workers, config.symmetry, config.por)
    if key not in cache:
        reference = bfs_explore(
            generated.spec(invariants=True),
            workers=config.workers,
            symmetry=config.symmetry,
            por=config.por,
            stop_on_violation=True,
        )
        if reference.violation is None:
            cache[key] = "<reference fork-parallel run found no violation>"
        else:
            cache[key] = json.dumps(
                reference.violation.trace.to_dict(), sort_keys=True
            )
    return cache[key]


def _grade(
    generated: GeneratedSpec,
    config: MatrixConfig,
    oracle: OracleResult,
    result: SearchResult,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional[Dict[Any, Any]] = None,
) -> List[Disagreement]:
    def mismatch(field: str, expected: Any, actual: Any) -> Disagreement:
        return Disagreement(
            spec_seed=generated.seed,
            params=generated.params,
            config=config,
            field=field,
            expected=expected,
            actual=actual,
        )

    def grade_violation() -> None:
        # BFS minimality is the contract: the violated invariant's name
        # and the exact planted minimal depth, in every configuration.
        planted = generated.planted
        assert planted is not None
        violation = result.violation
        if violation is None:
            found.append(mismatch("violation", planted.invariant, None))
            return
        if violation.invariant != planted.invariant:
            found.append(mismatch("invariant", planted.invariant, violation.invariant))
        if violation.depth != planted.depth:
            found.append(mismatch("violation_depth", planted.depth, violation.depth))
        if config.fast:
            # Fast cells must have *resolved* their traceless violation
            # through bounded re-search into the byte-identical trace a
            # plain serial full-store run produces.
            if getattr(violation.trace, "pending", False):
                found.append(mismatch("trace", "researched Trace", "PendingTrace"))
            elif cache is not None:
                expected = _reference_trace(generated, config, cache)
                actual = json.dumps(violation.trace.to_dict(), sort_keys=True)
                if actual != expected:
                    found.append(mismatch("trace_bytes", expected, actual))
        elif config.transport == "socket" and cache is not None and _fork_available():
            # Full-store socket cells (including the kill-and-reassign
            # one) must reconstruct the byte-identical trace the fork
            # transport produces for the same worker count.
            expected = _parallel_reference_trace(generated, config, cache)
            actual = json.dumps(violation.trace.to_dict(), sort_keys=True)
            if actual != expected:
                found.append(mismatch("trace_bytes", expected, actual))

    found: List[Disagreement] = []
    if config.phase == "census" or config.exhaustive:
        # Census contract (also for exhaustive violation-phase cells,
        # which sweep the full space despite the planted invariant).
        # POR prunes nothing from an invariant-free census spec, so only
        # exhaustive POR cells grade against the excluded-action oracle.
        expected_oracle = oracle
        if config.exhaustive and config.por and cache is not None:
            expected_oracle = _por_oracle(generated, cache)
        if result.stop_reason != StopReason.EXHAUSTED:
            found.append(
                mismatch("stop_reason", str(StopReason.EXHAUSTED), str(result.stop_reason))
            )
        actuals = {
            "states": result.stats.distinct_states,
            "transitions": result.stats.transitions,
            "max_depth": result.stats.max_depth,
        }
        for field, expected in _expected_census(expected_oracle, config):
            if actuals[field] != expected:
                found.append(mismatch(field, expected, actuals[field]))
        if registry is not None:
            # Coverage counters must partition the transition count by
            # action, exactly — the same accounting as the oracle's
            # (statically pruned actions appear at zero on both sides).
            expected_fires = (
                expected_oracle.orbit_action_fires
                if config.symmetry
                else expected_oracle.action_fires
            )
            actual_fires = dict(registry.counts(ACTION_FIRES))
            if actual_fires != expected_fires:
                found.append(mismatch("action_fires", expected_fires, actual_fires))
        if config.exhaustive:
            grade_violation()
        return found

    # violation phase, stop_on_violation=True: stats are not graded.
    if result.stop_reason != StopReason.VIOLATION or result.violation is None:
        found.append(
            mismatch("stop_reason", str(StopReason.VIOLATION), str(result.stop_reason))
        )
        return found
    grade_violation()
    return found


def check_spec(
    generated: GeneratedSpec,
    parallel: bool = True,
    configs: Optional[List[MatrixConfig]] = None,
    fast: bool = False,
    por: bool = False,
) -> Tuple[OracleResult, List[Disagreement]]:
    """Run one generated spec through the matrix; return oracle + mismatches.

    A configuration that raises is reported as a ``field="error"``
    disagreement rather than aborting the sweep — a crash in one store
    is exactly the kind of bug the harness exists to surface.
    ``fast``/``por`` force the reducers across the matrix (see
    :func:`build_matrix`).
    """
    oracle = oracle_explore(
        generated.spec(invariants=False), compute_orbits=generated.symmetric
    )
    # Lazily computed shared ground truth: the POR-excluded oracle and
    # the per-(symmetry, por) reference counterexample traces.
    cache: Dict[Any, Any] = {}
    disagreements: List[Disagreement] = []
    if configs is None:
        configs = build_matrix(generated, parallel, fast=fast, por=por)
    for config in configs:
        try:
            result, registry = _run_config(generated, config)
        except Exception as exc:  # noqa: BLE001 — every escape is a finding
            disagreements.append(
                Disagreement(
                    spec_seed=generated.seed,
                    params=generated.params,
                    config=config,
                    field="error",
                    expected="SearchResult",
                    actual=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        disagreements.extend(
            _grade(generated, config, oracle, result, registry, cache)
        )
    return oracle, disagreements


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def run_differential(
    n_specs: int,
    seed: Any = 0,
    out_dir: Optional[os.PathLike] = None,
    parallel: bool = True,
    progress: Optional[Callable[[int, GeneratedSpec, int], None]] = None,
    metrics: Optional[MetricsRegistry] = None,
    fast: bool = False,
    por: bool = False,
) -> DifferentialReport:
    """Fuzz ``n_specs`` random specs through the full matrix.

    Spec ``i`` of sweep ``seed`` is always generated from the derived
    seed ``"{seed}:{i}"`` with params drawn from a dedicated parameter
    RNG — so any disagreement is reproducible from its artifact alone,
    and ``run_differential(n, s)`` covers a superset of the specs of
    ``run_differential(m, s)`` for ``n >= m``.

    With ``metrics`` the sweep keeps running totals (``selftest.specs``,
    ``selftest.configs``, ``selftest.disagreements``) for the CLI's
    ``--stats-out`` sink.  ``fast``/``por`` force the reducers across
    the matrix (``sandtable selftest --fast/--por``).
    """
    report = DifferentialReport()
    params_rng = random.Random(f"params:{seed}")
    for index in range(n_specs):
        params = sample_params(params_rng)
        generated = generate_spec(f"{seed}:{index}", params)
        configs = build_matrix(generated, parallel, fast=fast, por=por)
        oracle, disagreements = check_spec(generated, parallel, configs)
        report.specs += 1
        report.configs_run += len(configs)
        if metrics is not None:
            metrics.inc("selftest.specs")
            metrics.inc("selftest.configs", len(configs))
            metrics.inc("selftest.disagreements", len(disagreements))
        if disagreements:
            report.disagreements.extend(disagreements)
            if out_dir is not None:
                for item in disagreements:
                    report.artifacts.append(_save_artifact(out_dir, item, oracle))
        if progress is not None:
            progress(index, generated, len(disagreements))
    return report


def _save_artifact(
    out_dir: os.PathLike, item: Disagreement, oracle: OracleResult
) -> str:
    os.makedirs(out_dir, exist_ok=True)
    stem = item.config.name.replace("/", "-")
    path = os.path.join(
        os.fspath(out_dir),
        f"disagreement-{item.spec_seed.replace(':', '_')}-{stem}-{item.field}.json",
    )
    atomic_write_json(path, item.to_dict(oracle))
    return path


def replay_artifact(path: os.PathLike) -> Tuple[Disagreement, List[Disagreement]]:
    """Regenerate the spec of a disagreement artifact and re-run its cell.

    Returns the original disagreement and the fresh mismatches from the
    re-run (empty when the disagreement no longer reproduces, e.g. after
    the engine bug it exposed was fixed).
    """
    raw = read_json(path)
    if raw.get("kind") != ARTIFACT_KIND:
        raise ValueError(f"{os.fspath(path)} is not a {ARTIFACT_KIND} artifact")
    params = GenParams.from_dict(raw["params"])
    config = MatrixConfig.from_dict(raw["config"])
    original = Disagreement(
        spec_seed=raw["spec_seed"],
        params=params,
        config=config,
        field=raw["field"],
        expected=raw["expected"],
        actual=raw["actual"],
    )
    generated = generate_spec(raw["spec_seed"], params)
    _, fresh = check_spec(generated, parallel=True, configs=[config])
    return original, fresh
