"""The reference explorer: deliberately simple ground truth.

The engine under test deduplicates through 64-bit fingerprints of a
canonical codec, reconstructs traces from parent chains, shards the
frontier across processes, and spills visited sets to disk.  The oracle
does none of that: it is a plain breadth-first search over a dict keyed
by the states themselves (``Rec`` equality/hash), entirely independent
of the codec, of fingerprinting, and of the engine's store/strategy
machinery.  If the two disagree, one of them is wrong — and the oracle
is small enough to audit by eye.

The oracle reproduces the engine's *accounting conventions* exactly, so
results are comparable field by field:

* ``states`` counts deduplicated states, including initial states and
  states that fail the state constraint (the engine records a child
  before checking the constraint on pop);
* ``transitions`` counts every enabled transition enumerated from every
  expanded (constraint-passing) state — duplicates included, exactly as
  the engine counts before its ``seen`` check;
* ``diameter`` is the maximum BFS depth over all recorded states — the
  engine's ``max_depth`` for an exhausted run;
* ``min_violation_depth`` is the trace depth of the shallowest
  invariant violation: state invariants at the state's first-record
  depth, transition invariants at parent depth + 1, only along edges
  from constraint-passing states.  BFS minimality means every engine
  configuration must report exactly this depth (and one of
  ``violation_invariants``) when it stops on a violation.

For specs with symmetry sets the oracle also computes the quotient
ground truth — ``orbit_states``, ``orbit_transitions``,
``orbit_diameter`` — by grouping the full reachable space into orbits
with :func:`repro.core.state.substitute` (no fingerprints involved).
Orbit depth equals the minimum full-space depth over the orbit's
members, and, because generated invariants and constraints are
symmetric, the minimal violation depth is the same with and without
reduction.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.spec import Spec
from ..core.state import Rec, substitute
from ..core.symmetry import permutations_of_sets

__all__ = ["OracleResult", "oracle_explore"]


@dataclasses.dataclass
class OracleResult:
    """Ground truth for one spec: full-space and (optional) quotient."""

    states: int
    transitions: int
    diameter: int
    pruned: int
    min_violation_depth: Optional[int]
    violation_invariants: Tuple[str, ...]
    orbit_states: Optional[int] = None
    orbit_transitions: Optional[int] = None
    orbit_diameter: Optional[int] = None
    #: per-action partition of ``transitions`` (every spec action appears,
    #: never-fired actions at 0) — the ground truth the engines'
    #: ``engine.action_fires`` coverage counters are graded against.
    action_fires: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: per-action partition of ``orbit_transitions`` (symmetry runs).
    orbit_action_fires: Optional[Dict[str, int]] = None
    #: state -> minimal BFS depth (the raw census; not serialized)
    depths: Dict[Rec, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "diameter": self.diameter,
            "pruned": self.pruned,
            "min_violation_depth": self.min_violation_depth,
            "violation_invariants": list(self.violation_invariants),
            "orbit_states": self.orbit_states,
            "orbit_transitions": self.orbit_transitions,
            "orbit_diameter": self.orbit_diameter,
            "action_fires": dict(self.action_fires),
            "orbit_action_fires": (
                dict(self.orbit_action_fires)
                if self.orbit_action_fires is not None
                else None
            ),
        }


def oracle_explore(
    spec: Spec,
    compute_orbits: bool = False,
    exclude_actions: Iterable[str] = (),
) -> OracleResult:
    """Exhaustively explore ``spec`` the simple way.

    Unlike the engine the oracle never stops at the first violation: it
    completes the census and reports the *minimal* violation depth, so a
    single oracle run grades both the stop-on-violation and the
    exhaustive configurations.

    ``exclude_actions`` names actions whose transitions are skipped
    entirely (not counted, not followed) — the ground truth for grading
    a partial-order-reduced run, whose census equals the census of the
    spec with its pruned actions removed.  Excluded actions still appear
    (at zero) in ``action_fires``.
    """
    invariants = list(spec.invariants())
    transition_invariants = list(spec.transition_invariants())
    excluded = frozenset(exclude_actions)

    depths: Dict[Rec, int] = {}
    violations: List[Tuple[int, str]] = []  # (trace depth, invariant name)

    def check_state(state: Rec, depth: int) -> None:
        for inv in invariants:
            if not inv.holds(state):
                violations.append((depth, inv.name))

    level: List[Rec] = []
    for init in spec.init_states():
        if init in depths:
            continue
        depths[init] = 0
        check_state(init, 0)
        level.append(init)

    transitions = 0
    pruned = 0
    depth = 0
    # Per-action partition of the transition count, seeded so an action
    # that never fires still appears (at zero) in the ground truth.
    action_fires: Dict[str, int] = {action.name: 0 for action in spec.actions()}
    while level:
        next_level: List[Rec] = []
        for state in level:
            if not spec.state_constraint(state):
                pruned += 1
                continue
            for transition in spec.successors(state):
                if transition.action in excluded:
                    continue
                transitions += 1
                action_fires[transition.action] = (
                    action_fires.get(transition.action, 0) + 1
                )
                for inv in transition_invariants:
                    if not inv.holds(state, transition):
                        violations.append((depth + 1, inv.name))
                child = transition.target
                if child in depths:
                    continue
                depths[child] = depth + 1
                check_state(child, depth + 1)
                next_level.append(child)
        level = next_level
        depth += 1

    diameter = max(depths.values()) if depths else 0
    min_violation_depth: Optional[int] = None
    violated: Tuple[str, ...] = ()
    if violations:
        min_violation_depth = min(depth for depth, _ in violations)
        violated = tuple(
            sorted({name for depth, name in violations if depth == min_violation_depth})
        )

    result = OracleResult(
        states=len(depths),
        transitions=transitions,
        diameter=diameter,
        pruned=pruned,
        min_violation_depth=min_violation_depth,
        violation_invariants=violated,
        action_fires=action_fires,
        depths=depths,
    )
    if compute_orbits and spec.symmetry_sets():
        _compute_orbits(spec, result, excluded)
    return result


def _compute_orbits(
    spec: Spec, result: OracleResult, excluded: frozenset = frozenset()
) -> None:
    """Fill in the quotient ground truth for symmetry-reduced runs.

    Soundness requires the spec's constraint and invariants to be
    symmetric under the declared sets (the same requirement the engine
    places on symmetry reduction): then each reachable orbit is explored
    once, at the minimum depth of its members, and every member
    enumerates the same number of successors.
    """
    maps = list(permutations_of_sets(spec.symmetry_sets()))
    orbit_depth: Dict[frozenset, int] = {}
    orbit_member: Dict[frozenset, Rec] = {}
    for state, depth in result.depths.items():
        orbit = frozenset(substitute(state, mapping) for mapping in maps)
        if depth < orbit_depth.get(orbit, depth + 1):
            orbit_depth[orbit] = depth
        orbit_member.setdefault(orbit, state)

    orbit_transitions = 0
    orbit_action_fires: Dict[str, int] = {action.name: 0 for action in spec.actions()}
    for orbit, member in orbit_member.items():
        if not spec.state_constraint(member):
            continue
        for transition in spec.successors(member):
            if transition.action in excluded:
                continue
            orbit_transitions += 1
            orbit_action_fires[transition.action] = (
                orbit_action_fires.get(transition.action, 0) + 1
            )

    result.orbit_states = len(orbit_depth)
    result.orbit_transitions = orbit_transitions
    result.orbit_diameter = max(orbit_depth.values()) if orbit_depth else 0
    result.orbit_action_fires = orbit_action_fires
