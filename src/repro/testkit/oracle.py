"""The reference explorer: deliberately simple ground truth.

The engine under test deduplicates through 64-bit fingerprints of a
canonical codec, reconstructs traces from parent chains, shards the
frontier across processes, and spills visited sets to disk.  The oracle
does none of that: it is a plain breadth-first search over a dict keyed
by the states themselves (``Rec`` equality/hash), entirely independent
of the codec, of fingerprinting, and of the engine's store/strategy
machinery.  If the two disagree, one of them is wrong — and the oracle
is small enough to audit by eye.

The oracle reproduces the engine's *accounting conventions* exactly, so
results are comparable field by field:

* ``states`` counts deduplicated states, including initial states and
  states that fail the state constraint (the engine records a child
  before checking the constraint on pop);
* ``transitions`` counts every enabled transition enumerated from every
  expanded (constraint-passing) state — duplicates included, exactly as
  the engine counts before its ``seen`` check;
* ``diameter`` is the maximum BFS depth over all recorded states — the
  engine's ``max_depth`` for an exhausted run;
* ``min_violation_depth`` is the trace depth of the shallowest
  invariant violation: state invariants at the state's first-record
  depth, transition invariants at parent depth + 1, only along edges
  from constraint-passing states.  BFS minimality means every engine
  configuration must report exactly this depth (and one of
  ``violation_invariants``) when it stops on a violation.

For specs with symmetry sets the oracle also computes the quotient
ground truth — ``orbit_states``, ``orbit_transitions``,
``orbit_diameter`` — by grouping the full reachable space into orbits
with :func:`repro.core.state.substitute` (no fingerprints involved).
Orbit depth equals the minimum full-space depth over the orbit's
members, and, because generated invariants and constraints are
symmetric, the minimal violation depth is the same with and without
reduction.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.spec import Spec, WeakFairness
from ..core.state import Rec, substitute
from ..core.symmetry import permutations_of_sets

__all__ = [
    "OracleResult",
    "OracleTemporalGraph",
    "OracleTemporalVerdict",
    "oracle_check_temporal",
    "oracle_explore",
    "oracle_temporal_graph",
    "oracle_validate_lasso",
]


@dataclasses.dataclass
class OracleResult:
    """Ground truth for one spec: full-space and (optional) quotient."""

    states: int
    transitions: int
    diameter: int
    pruned: int
    min_violation_depth: Optional[int]
    violation_invariants: Tuple[str, ...]
    orbit_states: Optional[int] = None
    orbit_transitions: Optional[int] = None
    orbit_diameter: Optional[int] = None
    #: per-action partition of ``transitions`` (every spec action appears,
    #: never-fired actions at 0) — the ground truth the engines'
    #: ``engine.action_fires`` coverage counters are graded against.
    action_fires: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: per-action partition of ``orbit_transitions`` (symmetry runs).
    orbit_action_fires: Optional[Dict[str, int]] = None
    #: state -> minimal BFS depth (the raw census; not serialized)
    depths: Dict[Rec, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "diameter": self.diameter,
            "pruned": self.pruned,
            "min_violation_depth": self.min_violation_depth,
            "violation_invariants": list(self.violation_invariants),
            "orbit_states": self.orbit_states,
            "orbit_transitions": self.orbit_transitions,
            "orbit_diameter": self.orbit_diameter,
            "action_fires": dict(self.action_fires),
            "orbit_action_fires": (
                dict(self.orbit_action_fires)
                if self.orbit_action_fires is not None
                else None
            ),
        }


def oracle_explore(
    spec: Spec,
    compute_orbits: bool = False,
    exclude_actions: Iterable[str] = (),
) -> OracleResult:
    """Exhaustively explore ``spec`` the simple way.

    Unlike the engine the oracle never stops at the first violation: it
    completes the census and reports the *minimal* violation depth, so a
    single oracle run grades both the stop-on-violation and the
    exhaustive configurations.

    ``exclude_actions`` names actions whose transitions are skipped
    entirely (not counted, not followed) — the ground truth for grading
    a partial-order-reduced run, whose census equals the census of the
    spec with its pruned actions removed.  Excluded actions still appear
    (at zero) in ``action_fires``.
    """
    invariants = list(spec.invariants())
    transition_invariants = list(spec.transition_invariants())
    excluded = frozenset(exclude_actions)

    depths: Dict[Rec, int] = {}
    violations: List[Tuple[int, str]] = []  # (trace depth, invariant name)

    def check_state(state: Rec, depth: int) -> None:
        for inv in invariants:
            if not inv.holds(state):
                violations.append((depth, inv.name))

    level: List[Rec] = []
    for init in spec.init_states():
        if init in depths:
            continue
        depths[init] = 0
        check_state(init, 0)
        level.append(init)

    transitions = 0
    pruned = 0
    depth = 0
    # Per-action partition of the transition count, seeded so an action
    # that never fires still appears (at zero) in the ground truth.
    action_fires: Dict[str, int] = {action.name: 0 for action in spec.actions()}
    while level:
        next_level: List[Rec] = []
        for state in level:
            if not spec.state_constraint(state):
                pruned += 1
                continue
            for transition in spec.successors(state):
                if transition.action in excluded:
                    continue
                transitions += 1
                action_fires[transition.action] = (
                    action_fires.get(transition.action, 0) + 1
                )
                for inv in transition_invariants:
                    if not inv.holds(state, transition):
                        violations.append((depth + 1, inv.name))
                child = transition.target
                if child in depths:
                    continue
                depths[child] = depth + 1
                check_state(child, depth + 1)
                next_level.append(child)
        level = next_level
        depth += 1

    diameter = max(depths.values()) if depths else 0
    min_violation_depth: Optional[int] = None
    violated: Tuple[str, ...] = ()
    if violations:
        min_violation_depth = min(depth for depth, _ in violations)
        violated = tuple(
            sorted({name for depth, name in violations if depth == min_violation_depth})
        )

    result = OracleResult(
        states=len(depths),
        transitions=transitions,
        diameter=diameter,
        pruned=pruned,
        min_violation_depth=min_violation_depth,
        violation_invariants=violated,
        action_fires=action_fires,
        depths=depths,
    )
    if compute_orbits and spec.symmetry_sets():
        _compute_orbits(spec, result, excluded)
    return result


def _compute_orbits(
    spec: Spec, result: OracleResult, excluded: frozenset = frozenset()
) -> None:
    """Fill in the quotient ground truth for symmetry-reduced runs.

    Soundness requires the spec's constraint and invariants to be
    symmetric under the declared sets (the same requirement the engine
    places on symmetry reduction): then each reachable orbit is explored
    once, at the minimum depth of its members, and every member
    enumerates the same number of successors.
    """
    maps = list(permutations_of_sets(spec.symmetry_sets()))
    orbit_depth: Dict[frozenset, int] = {}
    orbit_member: Dict[frozenset, Rec] = {}
    for state, depth in result.depths.items():
        orbit = frozenset(substitute(state, mapping) for mapping in maps)
        if depth < orbit_depth.get(orbit, depth + 1):
            orbit_depth[orbit] = depth
        orbit_member.setdefault(orbit, state)

    orbit_transitions = 0
    orbit_action_fires: Dict[str, int] = {action.name: 0 for action in spec.actions()}
    for orbit, member in orbit_member.items():
        if not spec.state_constraint(member):
            continue
        for transition in spec.successors(member):
            if transition.action in excluded:
                continue
            orbit_transitions += 1
            orbit_action_fires[transition.action] = (
                orbit_action_fires.get(transition.action, 0) + 1
            )

    result.orbit_states = len(orbit_depth)
    result.orbit_transitions = orbit_transitions
    result.orbit_diameter = max(orbit_depth.values()) if orbit_depth else 0
    result.orbit_action_fires = orbit_action_fires


# ---------------------------------------------------------------------------
# the temporal oracle: naive fair-cycle (lasso) ground truth
# ---------------------------------------------------------------------------
#
# The engine's lasso finder (repro.temporal) materializes a
# fingerprint-keyed graph from a state store and runs an iterative Tarjan
# followed by a product BFS.  The oracle shares none of that: it keeps
# the full successor adjacency keyed by the states themselves, groups
# strongly connected components by *mutual reachability* (one plain DFS
# per node — quadratic, auditable, and algorithmically unrelated to
# Tarjan), and answers only the two questions the grading needs: is the
# property violated, and what is the minimal prefix length to a fair
# cycle.  Both tools implement the same semantics — weak fairness over a
# lasso, stutter self-loops at unexpanded sinks only (the TLC
# convention) — so any disagreement is a bug in one of them.


@dataclasses.dataclass
class OracleTemporalGraph:
    """The full reachable successor graph, states kept concrete.

    ``succ[i]`` lists ``(action, j)`` edges out of ``states[i]``; a
    constraint-pruned state keeps an empty list, exactly like the
    engine's materialized graph.  Indices are discovery (BFS) order —
    an implementation convenience, not a fingerprint.
    """

    states: List[Rec]
    succ: List[List[Tuple[str, int]]]
    inits: List[int]
    depths: List[int]


@dataclasses.dataclass
class OracleTemporalVerdict:
    """Ground truth for one temporal property over one spec."""

    violated: bool
    #: BFS length of the shortest prefix reaching a fair SCC (the exact
    #: ``LassoTrace.prefix_length`` every engine cell must report), or
    #: None when the property holds.
    min_prefix: Optional[int]
    fair_sccs: int
    states: int


def oracle_temporal_graph(spec: Spec) -> OracleTemporalGraph:
    """Exhaustively build the reachable successor graph, the simple way."""
    index: Dict[Rec, int] = {}
    states: List[Rec] = []
    succ: List[List[Tuple[str, int]]] = []
    depths: List[int] = []
    inits: List[int] = []
    queue: deque = deque()
    for init in spec.init_states():
        if init in index:
            continue
        index[init] = len(states)
        states.append(init)
        succ.append([])
        depths.append(0)
        inits.append(index[init])
        queue.append(index[init])
    while queue:
        i = queue.popleft()
        if not spec.state_constraint(states[i]):
            continue
        out = succ[i]
        for transition in spec.successors(states[i]):
            j = index.get(transition.target)
            if j is None:
                j = len(states)
                index[transition.target] = j
                states.append(transition.target)
                succ.append([])
                depths.append(depths[i] + 1)
                queue.append(j)
            out.append((transition.action, j))
    return OracleTemporalGraph(states=states, succ=succ, inits=inits, depths=depths)


def _wf_enabled(spec: Spec, state: Rec, wf: WeakFairness) -> bool:
    """Raw enabledness of a weak-fairness set, straight off the spec."""
    if wf.enabled is not None:
        return bool(wf.enabled(state))
    return any(t.action in wf.actions for t in spec.successors(state))


def _mutual_reach_classes(
    nodes: List[int], adj: Dict[int, List[int]]
) -> Tuple[List[List[int]], Dict[int, int], Dict[int, set]]:
    """SCCs by mutual reachability: one DFS per node, no Tarjan.

    ``reach[u]`` is everything reachable from ``u`` by at least one
    edge, so ``u in reach[u]`` holds exactly when ``u`` lies on a cycle.
    """
    reach: Dict[int, set] = {}
    for u in nodes:
        seen: set = set()
        stack = list(adj[u])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(adj[v])
        reach[u] = seen
    classes: List[List[int]] = []
    comp: Dict[int, int] = {}
    for u in nodes:
        if u in comp:
            continue
        members = [u] + [
            v for v in reach[u] if v != u and u in reach[v] and v not in comp
        ]
        for v in members:
            comp[v] = len(classes)
        classes.append(sorted(members))
    return classes, comp, reach


def oracle_check_temporal(
    spec: Spec,
    prop: Any,
    graph: Optional[OracleTemporalGraph] = None,
) -> OracleTemporalVerdict:
    """Naively decide a temporal property over the full reachable graph.

    Implements the same lasso semantics as :func:`repro.temporal.check_graph`
    — avoid region per property kind, weak-fairness witnesses per SCC,
    stutter loops only at sinks, minimal prefix by product BFS — with
    none of its machinery (no fingerprints, no store, no Tarjan).
    """
    g = graph if graph is not None else oracle_temporal_graph(spec)
    fairness = tuple(prop.effective_fairness(spec))
    kind = prop.kind
    p_of = [bool(prop.predicate(s)) for s in g.states]
    if kind == "leads_to":
        q_of = [bool(prop.goal(s)) for s in g.states]
        region = {i for i, q in enumerate(q_of) if not q}
    else:
        q_of = []
        region = {i for i, p in enumerate(p_of) if not p}

    adj = {
        i: sorted({j for _a, j in g.succ[i] if j in region}) for i in region
    }
    classes, comp, reach = _mutual_reach_classes(sorted(region), adj)

    fair: set = set()
    scc_has_p: Dict[int, bool] = {}
    for ci, members in enumerate(classes):
        stutter = len(members) == 1 and not g.succ[members[0]]
        cyclic = len(members) > 1 or members[0] in reach[members[0]]
        if not cyclic and not stutter:
            continue
        member_set = set(members)
        ok = True
        for wf in fairness:
            if stutter:
                if _wf_enabled(spec, g.states[members[0]], wf):
                    ok = False
                    break
                continue
            if any(not _wf_enabled(spec, g.states[i], wf) for i in members):
                continue
            if any(
                action in wf.actions and j in member_set
                for i in members
                for action, j in g.succ[i]
            ):
                continue
            ok = False
            break
        if not ok:
            continue
        fair.add(ci)
        scc_has_p[ci] = any(p_of[i] for i in members)

    if not fair:
        return OracleTemporalVerdict(False, None, 0, len(g.states))

    # Minimal prefix: BFS over the <state, pending-obligation> product,
    # mirroring the engine's root/region restrictions per property kind.
    if kind == "eventually":
        roots = [i for i in g.inits if not p_of[i]]
        allowed = region
    else:
        roots = list(g.inits)
        allowed = None  # every explored state

    def pending_of(i: int, prev: int) -> int:
        if kind != "leads_to":
            return 0
        if q_of[i]:
            return 0
        if p_of[i]:
            return 1
        return prev

    def hit(i: int, pending: int) -> bool:
        ci = comp.get(i)
        if ci is None or ci not in fair:
            return False
        return kind != "leads_to" or pending == 1 or scc_has_p[ci]

    seen: set = set()
    level = []
    for i in roots:
        key = (i, pending_of(i, 0))
        if key not in seen:
            seen.add(key)
            level.append(key)
    distance = 0
    while level:
        if any(hit(i, pending) for i, pending in level):
            return OracleTemporalVerdict(True, distance, len(fair), len(g.states))
        next_level = []
        for i, pending in level:
            for _action, j in g.succ[i]:
                if allowed is not None and j not in allowed:
                    continue
                key = (j, pending_of(j, pending))
                if key not in seen:
                    seen.add(key)
                    next_level.append(key)
        level = next_level
        distance += 1
    # Fair SCCs exist but none is reachable under the property's root
    # and region restrictions: the property holds.
    return OracleTemporalVerdict(False, None, len(fair), len(g.states))


def oracle_validate_lasso(
    spec: Spec,
    prop: Any,
    lasso: Any,
    symmetric: bool = False,
) -> Optional[str]:
    """Independently validate an engine-emitted lasso; None when sound.

    Checks, straight off the spec with no engine machinery: every step
    is a genuine transition; the cycle closes (up to a symmetry
    permutation when ``symmetric``); prefix and cycle respect the
    property's avoid region; a ``leads_to`` obligation is actually
    outstanding; and the cycle satisfies every weak-fairness
    declaration.  Returns a human-readable defect description otherwise.
    """
    states = list(lasso.trace.states())
    labels = [step.action for step in lasso.trace.steps]
    for k, label in enumerate(labels):
        prev, nxt = states[k], states[k + 1]
        if not any(
            t.action == label and t.target == nxt for t in spec.successors(prev)
        ):
            return f"step {k} ({label}) is not a spec transition"

    cs = lasso.cycle_start
    if not 0 <= cs < len(states):
        return f"cycle_start {cs} out of range for {len(states)} states"
    if lasso.stuttering:
        # Stuttering forever is a legal behavior at ANY state — fairness
        # is the only thing that can forbid it, and the per-WF check
        # below rejects a stutter where a fair action stays enabled.  In
        # particular a budget-truncated graph may stutter at a state
        # whose unexplored successors are all non-fair actions; that is
        # still a genuine counterexample.
        if cs != len(states) - 1:
            return "stuttering lasso carries explicit cycle steps"
    else:
        first, last = states[cs], states[-1]
        if symmetric:
            maps = list(permutations_of_sets(spec.symmetry_sets()))
            if all(last != substitute(first, mapping) for mapping in maps):
                return "cycle does not close, even up to symmetry"
        elif first != last:
            return "cycle does not close"

    kind = prop.kind
    predicate = prop.predicate
    if kind == "eventually":
        if any(predicate(s) for s in states):
            return "an eventually-lasso passes through a P-state"
    elif kind == "always_eventually":
        if any(predicate(s) for s in states[cs:]):
            return "cycle contains a P-state"
    else:
        goal = prop.goal
        if any(goal(s) for s in states[cs:]):
            return "cycle contains a Q-state"
        pending = 0
        for s in states:
            if goal(s):
                pending = 0
            elif predicate(s):
                pending = 1
        if pending != 1 and not any(predicate(s) for s in states[cs:]):
            return "no outstanding P-obligation along the lasso"

    for wf in prop.effective_fairness(spec):
        if lasso.stuttering:
            if _wf_enabled(spec, states[-1], wf):
                return f"stuttering unfair: {wf.name} stays enabled"
            continue
        if any(labels[k] in wf.actions for k in range(cs, len(labels))):
            continue
        if any(not _wf_enabled(spec, states[k], wf) for k in range(cs, len(states))):
            continue
        return f"cycle unfair: {wf.name} enabled throughout, never fires"
    return None
