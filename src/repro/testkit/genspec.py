"""Seeded random specifications: fuzz inputs for the model checker.

The testkit checks the checker, so its inputs must be specifications
whose ground truth is computable by something much simpler than the
engine under test.  This module generates small-scope state machines
from a seed:

* **shape** — ``n_nodes`` nodes each holding a local value in
  ``range(local_states)`` plus one shared global value in
  ``range(global_states)``; the reachable space is bounded by
  ``local_states ** n_nodes * global_states``, so every generated spec
  is exhaustively explorable in milliseconds;
* **actions** — random *per-node* rules (one node reads and rewrites its
  own value), *pair* rules (an ordered pair of nodes models a message:
  the source's value drives an update of the destination's), and
  *global* rules (the shared value alone).  Every rule is a lookup table
  drawn from the seed, with up to ``branching`` nondeterministic update
  options per enabled cell — branching is what makes the frontier wide
  enough to exercise dedup, sharding, and level synchrony;
* **symmetry** — the same table is applied to every node (and every
  ordered pair), so permuting node identities commutes with every
  action: declaring the node set as a symmetry group is sound *by
  construction*, which is what lets the differential harness run the
  same spec with symmetry reduction on and off;
* **planted violation** — a state invariant over the *node-symmetric
  signature* ``(sorted local values, global value)``.  The generator
  explores the reachable space once (via :mod:`repro.testkit.oracle`)
  and plants the invariant on a signature whose minimal BFS depth is
  known exactly, so every configuration of the engine must report a
  violation at precisely that depth.  Signatures are invariant under
  node permutation, so the planted invariant stays sound under symmetry
  reduction.

Generation is fully deterministic: the same ``(seed, params)`` pair
produces byte-identical tables, the same planted signature, and
therefore the same ground truth, in every process and under every
``PYTHONHASHSEED`` — a disagreement artifact that records just the seed
and params is a complete reproducer.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.spec import Action, Invariant, Spec
from ..core.state import Rec

__all__ = [
    "GenParams",
    "PlantedViolation",
    "GeneratedSpec",
    "RandomSpec",
    "signature",
    "generate_spec",
    "sample_params",
]

#: Invariant name used for every planted violation.
PLANTED_INVARIANT = "NoPlantedSignature"


@dataclasses.dataclass(frozen=True)
class GenParams:
    """Tunable knobs for one generated specification.

    ``n_channels`` adds independent top-level ``chan{i}`` variables with
    their own *channel* actions, each declaring exact read/write sets —
    the fuzz surface for partial-order reduction.  An *uncoupled*
    channel action touches only its channel (statically prunable when
    nothing else reads it); a *coupled* one (probability ``couple_p``)
    also reads and writes ``glob``, which makes it a survivor and — via
    the prune fixpoint — protects every other action on the same
    channel.  The defaults generate no channels, so existing seeds keep
    their exact historical state spaces.
    """

    n_nodes: int = 3
    local_states: int = 3
    global_states: int = 3
    n_local_actions: int = 2
    n_pair_actions: int = 1
    n_global_actions: int = 1
    branching: int = 2
    enable_p: float = 0.55
    symmetric: bool = True
    plant_violation: bool = True
    n_channels: int = 0
    channel_states: int = 2
    n_channel_actions: int = 0
    couple_p: float = 0.25

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "GenParams":
        return cls(**raw)


@dataclasses.dataclass(frozen=True)
class PlantedViolation:
    """The planted state invariant and its ground-truth minimal depth."""

    signature: Tuple[Tuple[int, ...], int]
    depth: int
    invariant: str = PLANTED_INVARIANT


def signature(state: Rec) -> Tuple[Tuple[int, ...], int]:
    """The node-symmetric signature of a generated-spec state.

    ``(sorted local values, global value)`` is invariant under any
    permutation of node identities, so predicates over it are sound
    invariants for symmetry-reduced exploration.
    """
    return (tuple(sorted(state["locals"].values())), state["glob"])


class RandomSpec(Spec):
    """A table-driven state machine produced by :func:`generate_spec`."""

    name = "testkit-random"

    def __init__(
        self,
        params: GenParams,
        local_tables: List[dict],
        pair_tables: List[dict],
        global_tables: List[dict],
        planted: Optional[PlantedViolation] = None,
        channel_tables: Optional[List[tuple]] = None,
    ):
        self.params = params
        self.nodes = tuple(f"n{i}" for i in range(1, params.n_nodes + 1))
        self.local_tables = local_tables
        self.pair_tables = pair_tables
        self.global_tables = global_tables
        #: (channel index, coupled, table) triples — see :class:`GenParams`.
        self.channel_tables = channel_tables or []
        self.planted = planted
        self._action_list = self._build_actions()

    # -- the state machine ---------------------------------------------------

    def init_states(self) -> Iterable[Rec]:
        state = {"locals": Rec({node: 0 for node in self.nodes}), "glob": 0}
        for index in range(self.params.n_channels):
            state[f"chan{index}"] = 0
        yield Rec(state)

    def actions(self):
        return self._action_list

    def _build_actions(self) -> List[Action]:
        # Every generated action declares exact top-level read/write
        # sets: table rules are pure functions of the variables below,
        # so the declarations are sound by construction — which is what
        # lets the differential harness run these specs under
        # partial-order reduction and grade the result.
        actions: List[Action] = []
        base = ("locals", "glob")
        for index, table in enumerate(self.local_tables):
            actions.append(
                Action(
                    f"Local{index}",
                    self._local_fn(table),
                    kind="internal",
                    reads=base,
                    writes=base,
                )
            )
        for index, table in enumerate(self.pair_tables):
            actions.append(
                Action(
                    f"Pair{index}",
                    self._pair_fn(table),
                    kind="message",
                    reads=base,
                    writes=base,
                )
            )
        for index, table in enumerate(self.global_tables):
            actions.append(
                Action(
                    f"Global{index}",
                    self._global_fn(table),
                    kind="client",
                    reads=("glob",),
                    writes=("glob",),
                )
            )
        for index, (channel, coupled, table) in enumerate(self.channel_tables):
            key = f"chan{channel}"
            touched = (key, "glob") if coupled else (key,)
            actions.append(
                Action(
                    f"Chan{index}",
                    self._channel_fn(key, coupled, table),
                    kind="internal",
                    reads=touched,
                    writes=touched,
                )
            )
        return actions

    def _local_fn(self, table: dict):
        nodes = self.nodes

        def fn(state: Rec):
            locals_ = state["locals"]
            glob = state["glob"]
            for node in nodes:
                options = table.get((locals_[node], glob), ())
                for branch, (new_local, new_glob) in enumerate(options):
                    yield (
                        (node,),
                        state.update(
                            locals=locals_.set(node, new_local), glob=new_glob
                        ),
                        f"b{branch}",
                    )

        return fn

    def _pair_fn(self, table: dict):
        nodes = self.nodes

        def fn(state: Rec):
            locals_ = state["locals"]
            glob = state["glob"]
            for src in nodes:
                for dst in nodes:
                    if src == dst:
                        continue
                    options = table.get((locals_[src], locals_[dst], glob), ())
                    for branch, (new_dst, new_glob) in enumerate(options):
                        yield (
                            (src, dst),
                            state.update(
                                locals=locals_.set(dst, new_dst), glob=new_glob
                            ),
                            f"b{branch}",
                        )

        return fn

    def _global_fn(self, table: dict):
        def fn(state: Rec):
            options = table.get(state["glob"], ())
            for branch, new_glob in enumerate(options):
                yield ((), state.set("glob", new_glob), f"b{branch}")

        return fn

    def _channel_fn(self, key: str, coupled: bool, table: dict):
        if coupled:

            def fn(state: Rec):
                options = table.get((state[key], state["glob"]), ())
                for branch, (new_chan, new_glob) in enumerate(options):
                    yield (
                        (),
                        state.update({key: new_chan, "glob": new_glob}),
                        f"b{branch}",
                    )

        else:

            def fn(state: Rec):
                options = table.get(state[key], ())
                for branch, new_chan in enumerate(options):
                    yield ((), state.set(key, new_chan), f"b{branch}")

        return fn

    # -- properties ----------------------------------------------------------

    def invariants(self):
        if self.planted is None:
            return ()
        bad_sig = self.planted.signature

        def no_planted_signature(state: Rec) -> bool:
            return signature(state) != bad_sig

        # The signature reads exactly these variables; declaring them
        # keeps channel actions independent of the invariant, which is
        # what makes them POR-prunable.
        return (
            Invariant(
                self.planted.invariant,
                no_planted_signature,
                reads=("locals", "glob"),
            ),
        )

    def symmetry_sets(self):
        return (self.nodes,) if self.params.symmetric else ()


@dataclasses.dataclass
class GeneratedSpec:
    """One generated fuzz input: seed, params, tables, and ground truth.

    ``planted`` is ``None`` when no violation could be planted (the
    reachable space has a single depth level); callers skip the
    violation phase for such specs.
    """

    seed: str
    params: GenParams
    local_tables: List[dict]
    pair_tables: List[dict]
    global_tables: List[dict]
    planted: Optional[PlantedViolation]
    channel_tables: List[tuple] = dataclasses.field(default_factory=list)

    def spec(self, invariants: bool = True) -> RandomSpec:
        """Instantiate the spec, with or without the planted invariant."""
        return RandomSpec(
            self.params,
            self.local_tables,
            self.pair_tables,
            self.global_tables,
            planted=self.planted if invariants else None,
            channel_tables=self.channel_tables,
        )

    @property
    def symmetric(self) -> bool:
        return self.params.symmetric and self.params.n_nodes > 1


def _draw_options(rng: random.Random, params: GenParams, draw_one) -> tuple:
    """Zero or more distinct update options for one table cell."""
    if rng.random() >= params.enable_p:
        return ()
    count = rng.randint(1, params.branching)
    options = []
    for _ in range(count):
        option = draw_one()
        if option not in options:
            options.append(option)
    return tuple(options)


def _draw_tables(rng: random.Random, params: GenParams):
    L, G = params.local_states, params.global_states

    def local_update():
        return (rng.randrange(L), rng.randrange(G))

    def global_update():
        return rng.randrange(G)

    local_tables = []
    for _ in range(params.n_local_actions):
        table = {}
        for local in range(L):
            for glob in range(G):
                options = _draw_options(rng, params, local_update)
                if options:
                    table[(local, glob)] = options
        local_tables.append(table)

    pair_tables = []
    for _ in range(params.n_pair_actions):
        table = {}
        for src in range(L):
            for dst in range(L):
                for glob in range(G):
                    options = _draw_options(rng, params, local_update)
                    if options:
                        table[(src, dst, glob)] = options
        pair_tables.append(table)

    global_tables = []
    for _ in range(params.n_global_actions):
        table = {}
        for glob in range(G):
            options = _draw_options(rng, params, global_update)
            if options:
                table[glob] = options
        global_tables.append(table)

    # Channel draws come strictly after the historical ones, and only
    # when channels are enabled — existing (seed, params) pairs keep
    # their byte-identical tables.
    channel_tables = []
    if params.n_channels > 0 and params.n_channel_actions > 0:
        C = params.channel_states

        def channel_update():
            return rng.randrange(C)

        def coupled_update():
            return (rng.randrange(C), rng.randrange(G))

        for _ in range(params.n_channel_actions):
            channel = rng.randrange(params.n_channels)
            coupled = rng.random() < params.couple_p
            table = {}
            if coupled:
                for chan in range(C):
                    for glob in range(G):
                        options = _draw_options(rng, params, coupled_update)
                        if options:
                            table[(chan, glob)] = options
            else:
                for chan in range(C):
                    options = _draw_options(rng, params, channel_update)
                    if options:
                        table[chan] = options
            channel_tables.append((channel, coupled, table))

    return local_tables, pair_tables, global_tables, channel_tables


def generate_spec(seed: Any, params: Optional[GenParams] = None) -> GeneratedSpec:
    """Generate one random spec (and plant its violation) from ``seed``.

    Deterministic: the same ``(seed, params)`` always produces the same
    tables and the same planted signature, independent of process,
    platform, and hash seed.
    """
    params = params or GenParams()
    rng = random.Random(str(seed))
    local_tables, pair_tables, global_tables, channel_tables = _draw_tables(
        rng, params
    )
    generated = GeneratedSpec(
        seed=str(seed),
        params=params,
        local_tables=local_tables,
        pair_tables=pair_tables,
        global_tables=global_tables,
        planted=None,
        channel_tables=channel_tables,
    )
    if params.plant_violation:
        generated.planted = _plant_violation(rng, generated)
    return generated


def _plant_violation(
    rng: random.Random, generated: GeneratedSpec
) -> Optional[PlantedViolation]:
    """Pick a reachable signature at depth >= 1 and record its depth.

    The minimal depth comes from the oracle's census of the invariant-free
    spec: the planted signature's depth is the minimum BFS depth of any
    state carrying it, which is exactly the depth every engine
    configuration must report for the counterexample.
    """
    from .oracle import oracle_explore  # deferred: oracle imports nothing of ours

    census = oracle_explore(generated.spec(invariants=False))
    by_signature: Dict[Tuple[Tuple[int, ...], int], int] = {}
    for state, depth in census.depths.items():
        sig = signature(state)
        if depth < by_signature.get(sig, depth + 1):
            by_signature[sig] = depth
    eligible = [(sig, depth) for sig, depth in by_signature.items() if depth >= 1]
    if not eligible:
        return None
    # Prefer deeper plants: a violation several levels down exercises
    # trace reconstruction and level synchrony harder than a depth-1 one.
    max_depth = max(depth for _, depth in eligible)
    threshold = max(1, max_depth - 1)
    deep = [item for item in eligible if item[1] >= threshold]
    sig, depth = deep[rng.randrange(len(deep))]
    return PlantedViolation(signature=sig, depth=depth)


def sample_params(rng: random.Random) -> GenParams:
    """Draw one parameter point for a fuzzing sweep.

    Bounded so the largest reachable space stays in the low hundreds of
    states: big enough to exercise dedup/sharding/spills, small enough
    that a full engine matrix per spec stays fast.
    """
    n_nodes = rng.choice((2, 2, 3, 3))
    local_states = rng.choice((2, 3)) if n_nodes == 3 else rng.choice((2, 3, 4))
    global_states = rng.choice((2, 3, 4))
    n_local_actions = rng.choice((1, 2, 3))
    n_pair_actions = rng.choice((0, 1, 1, 2))
    n_global_actions = rng.choice((0, 1))
    branching = rng.choice((1, 2, 2, 3))
    enable_p = rng.choice((0.4, 0.5, 0.6, 0.7))
    symmetric = rng.random() < 0.85
    # Channel draws are appended after the historical ones so the same
    # sweep seed keeps every pre-channel parameter unchanged.
    n_channels = rng.choice((0, 0, 1, 2))
    n_channel_actions = rng.choice((1, 2)) if n_channels else 0
    channel_states = rng.choice((2, 3)) if n_channels else 2
    couple_p = rng.choice((0.0, 0.25, 0.5)) if n_channels else 0.25
    return GenParams(
        n_nodes=n_nodes,
        local_states=local_states,
        global_states=global_states,
        n_local_actions=n_local_actions,
        n_pair_actions=n_pair_actions,
        n_global_actions=n_global_actions,
        branching=branching,
        enable_p=enable_p,
        symmetric=symmetric,
        plant_violation=True,
        n_channels=n_channels,
        channel_states=channel_states,
        n_channel_actions=n_channel_actions,
        couple_p=couple_p,
    )
