"""The log fuzzer: grade ``validate-trace`` against planted divergences.

A trace-validation verdict is easy to get silently wrong in either
direction — a matcher that accepts everything "conforms", one that
explores too narrowly "diverges".  So the validator gets the same
treatment the checker itself got in :mod:`~repro.testkit.differential`:
seeded random specs, logs with **known ground truth**, and exact
grading.

* :func:`walk_log` random-walks a generated spec
  (:func:`~repro.testkit.genspec.generate_spec`) recording one event per
  transition with an observed-variable projection — by construction a
  *clean* log that must conform;
* the mutators plant a divergence at a known index ``k``: **corrupt**
  (rewrite one observed value at event ``k`` within its domain),
  **reorder** (swap adjacent events of different nodes — within a
  node's concurrency window, so per-node sequence numbers stay
  monotonic), **drop** (remove event ``k``), **phantom** (insert a
  duplicated event at ``k``);
* a mutation may still be explainable by a *different* spec behavior,
  so every mutant is vetted by :func:`naive_validate` — an independent,
  deliberately naive per-event frontier search (the
  :mod:`~repro.testkit.oracle` idiom: plain state sets, no fingerprints,
  no engine) whose first-divergence index is the **oracle truth**; the
  log prefix before ``k`` is untouched walk output, so the oracle index
  is always ``>= k``;
* :func:`run_log_fuzz` grades the real validator across specs ×
  observed-variable projections × mutation kinds, round-tripping every
  log through the JSONL serialization: clean logs must conform, planted
  logs must diverge at exactly the oracle index with an unsaturated
  frontier, and a **stutter** cell (drop one internal event, validate
  with stuttering allowed) must agree with the oracle's stuttering
  verdict.  Everything is derived from the sweep seed — rerunning with
  the same seed replays the identical matrix.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.state import Rec
from ..tracecheck.logfmt import (
    LogEvent,
    LogHeader,
    observe,
    parse_lines,
    render_lines,
)
from ..tracecheck.matcher import validate_log
from .genspec import GeneratedSpec, GenParams, generate_spec, sample_params

__all__ = [
    "MUTATION_KINDS",
    "LogFuzzFailure",
    "LogFuzzReport",
    "PlantedLog",
    "naive_validate",
    "plant_divergence",
    "run_log_fuzz",
    "walk_log",
]

#: The planted-divergence mutation kinds, in grading order.
MUTATION_KINDS: Tuple[str, ...] = ("corrupt", "reorder", "drop", "phantom")


# ---------------------------------------------------------------------------
# clean-log generation
# ---------------------------------------------------------------------------


def walk_log(
    generated: GeneratedSpec,
    rng: random.Random,
    length: int = 10,
    observed: Optional[Sequence[str]] = None,
) -> List[LogEvent]:
    """A clean event log: one random walk of the generated spec.

    Every event records the transition's action name, full argument
    tuple, owning node (the first argument when it is a node id), and
    the ``observed`` projection of the post-state.  The walk itself is a
    witness behavior, so the log conforms by construction.
    """
    spec = generated.spec(invariants=False)
    kinds = {action.name: action.kind for action in spec.actions()}
    state = next(iter(spec.init_states()))
    if observed is None:
        observed = tuple(state.keys())
    nodes = frozenset(spec.nodes)
    events: List[LogEvent] = []
    for _ in range(length):
        transitions = list(spec.successors(state))
        if not transitions:
            break
        transition = transitions[rng.randrange(len(transitions))]
        node = (
            transition.args[0]
            if transition.args and transition.args[0] in nodes
            else ""
        )
        events.append(
            LogEvent(
                node=node,
                kind=kinds[transition.action],
                name=transition.action,
                args=tuple(transition.args),
                obs=observe(transition.target, node, observed),
            )
        )
        state = transition.target
    return events


# ---------------------------------------------------------------------------
# the naive reference validator (the oracle)
# ---------------------------------------------------------------------------


def _project(state: Rec, var: str, node: str) -> Any:
    value = state[var]
    if node and isinstance(value, Rec) and node in value:
        return value[node]
    return value


def _explains(kinds: Dict[str, str], transition: Any, event: LogEvent) -> bool:
    if event.name is not None:
        if transition.action != event.name:
            return False
    elif event.kind and kinds.get(transition.action) != event.kind:
        return False
    if event.args:
        if tuple(transition.args[: len(event.args)]) != tuple(event.args):
            return False
    target = transition.target
    for var, want in event.obs.items():
        if var not in target or _project(target, var, event.node) != want:
            return False
    return True


def naive_validate(
    spec: Any,
    events: Sequence[LogEvent],
    stutter_depth: int = 0,
    stutter_kinds: Sequence[str] = ("internal",),
) -> Tuple[bool, Optional[int]]:
    """Ground-truth validation: ``(conforms, first_divergence_index)``.

    Deliberately naive, mirroring :func:`~repro.testkit.oracle.oracle_explore`:
    per-event frontiers of plain states deduplicated by equality — no
    engine, no fingerprints, no breadth cap — so the real matcher and
    this function share no code on the answer path.
    """
    kinds = {action.name: action.kind for action in spec.actions()}
    stutter = frozenset(
        name for name, kind in kinds.items() if kind in set(stutter_kinds)
    )
    frontier: List[Rec] = list(spec.init_states())
    for index, event in enumerate(events):
        matched: List[Rec] = []
        seen_next: set = set()
        for origin in frontier:
            layer: List[Tuple[Rec, int]] = [(origin, 0)]
            seen_stutter = {origin}
            while layer:
                state, depth = layer.pop()
                for transition in spec.successors(state):
                    if _explains(kinds, transition, event):
                        if transition.target not in seen_next:
                            seen_next.add(transition.target)
                            matched.append(transition.target)
                    if (
                        depth < stutter_depth
                        and transition.action in stutter
                        and transition.target not in seen_stutter
                    ):
                        seen_stutter.add(transition.target)
                        layer.append((transition.target, depth + 1))
        if not matched:
            return False, index
        frontier = matched
    return True, None


# ---------------------------------------------------------------------------
# mutation planting
# ---------------------------------------------------------------------------


def _copy_event(event: LogEvent) -> LogEvent:
    return LogEvent(
        node=event.node,
        kind=event.kind,
        name=event.name,
        args=tuple(event.args),
        obs=dict(event.obs),
        seq=event.seq,
    )


def _var_domain(params: GenParams, var: str) -> int:
    if var == "locals":
        return params.local_states
    if var == "glob":
        return params.global_states
    if var.startswith("chan"):
        return params.channel_states
    return 0


def _mutate_corrupt(
    params: GenParams, events: Sequence[LogEvent], rng: random.Random
) -> Optional[Tuple[List[LogEvent], int]]:
    candidates = [
        index
        for index, event in enumerate(events)
        if any(
            isinstance(value, int) and _var_domain(params, var) >= 2
            for var, value in event.obs.items()
        )
    ]
    if not candidates:
        return None
    k = candidates[rng.randrange(len(candidates))]
    event = _copy_event(events[k])
    vars_ = [
        var
        for var, value in event.obs.items()
        if isinstance(value, int) and _var_domain(params, var) >= 2
    ]
    var = vars_[rng.randrange(len(vars_))]
    domain = _var_domain(params, var)
    old = event.obs[var]
    event.obs[var] = (old + 1 + rng.randrange(domain - 1)) % domain
    return [*events[:k], event, *events[k + 1 :]], k


def _mutate_reorder(
    params: GenParams, events: Sequence[LogEvent], rng: random.Random
) -> Optional[Tuple[List[LogEvent], int]]:
    # Swapping two adjacent events of *different* nodes stays within
    # each node's concurrency window: per-node sequence numbers remain
    # monotonic, so the mutant is schema-valid and the divergence (if
    # any) is semantic, not syntactic.
    candidates = [
        index
        for index in range(len(events) - 1)
        if events[index].node != events[index + 1].node
    ]
    if not candidates:
        return None
    k = candidates[rng.randrange(len(candidates))]
    out = [_copy_event(event) for event in events]
    out[k], out[k + 1] = out[k + 1], out[k]
    return out, k


def _mutate_drop(
    params: GenParams, events: Sequence[LogEvent], rng: random.Random
) -> Optional[Tuple[List[LogEvent], int]]:
    # Dropping the final event leaves a clean prefix, which conforms by
    # construction — only earlier positions can plant a divergence.
    if len(events) < 2:
        return None
    k = rng.randrange(len(events) - 1)
    return [*events[:k], *events[k + 1 :]], k


def _mutate_phantom(
    params: GenParams, events: Sequence[LogEvent], rng: random.Random
) -> Optional[Tuple[List[LogEvent], int]]:
    if not events:
        return None
    j = rng.randrange(len(events))
    k = rng.randrange(len(events) + 1)
    out = [_copy_event(event) for event in events]
    out.insert(k, _copy_event(events[j]))
    return out, k


_MUTATORS: Dict[str, Callable] = {
    "corrupt": _mutate_corrupt,
    "reorder": _mutate_reorder,
    "drop": _mutate_drop,
    "phantom": _mutate_phantom,
}


@dataclasses.dataclass
class PlantedLog:
    """One vetted mutant: the events, where it was planted, and truth."""

    kind: str
    events: List[LogEvent]
    planted_index: int
    oracle_index: int


def plant_divergence(
    spec: Any,
    params: GenParams,
    events: Sequence[LogEvent],
    kind: str,
    rng: random.Random,
    tries: int = 24,
    stutter_depth: int = 0,
) -> Optional[PlantedLog]:
    """Mutate until the oracle confirms a genuine divergence.

    A mutation can land on a log the spec still explains (a reordering
    of independent events, a phantom that is genuinely enabled); those
    are *not* divergences, so they are redrawn.  Returns ``None`` when
    the log offers no mutation sites or every try stayed consistent.
    """
    mutate = _MUTATORS[kind]
    for _ in range(tries):
        out = mutate(params, events, rng)
        if out is None:
            return None
        mutated, planted = out
        conforms, index = naive_validate(spec, mutated, stutter_depth)
        if not conforms:
            return PlantedLog(kind, mutated, planted, index)
    return None


# ---------------------------------------------------------------------------
# the grading sweep
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class LogFuzzFailure:
    """One graded cell whose verdict disagreed with the ground truth."""

    spec_seed: str
    projection: Tuple[str, ...]
    cell: str
    message: str

    def describe(self) -> str:
        return (
            f"{self.spec_seed} proj={'/'.join(self.projection) or '-'}"
            f" [{self.cell}]: {self.message}"
        )


@dataclasses.dataclass
class LogFuzzReport:
    """The sweep outcome: graded cell counts, skips, and failures."""

    specs: int
    seed: str
    cells: Dict[str, int]
    skipped: Dict[str, int]
    failures: List[LogFuzzFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def graded(self) -> int:
        return sum(self.cells.values())

    def describe(self) -> str:
        lines = [
            f"log fuzz: {self.specs} specs (seed {self.seed!r}),"
            f" {self.graded} cells graded,"
            f" {sum(self.skipped.values())} skipped,"
            f" {len(self.failures)} failures"
        ]
        for cell in sorted(self.cells):
            skip = self.skipped.get(cell, 0)
            lines.append(
                f"  {cell:<10} {self.cells[cell]:>4} graded"
                + (f" ({skip} skipped)" if skip else "")
            )
        for failure in self.failures[:20]:
            lines.append(f"  FAIL {failure.describe()}")
        return "\n".join(lines)


def _projections(params: GenParams) -> List[Tuple[str, ...]]:
    full = ["locals", "glob"] + [f"chan{i}" for i in range(params.n_channels)]
    projections = [tuple(full), ("locals",), ("glob",)]
    return projections


def _round_trip(
    spec_name: str, observed: Tuple[str, ...], events: Sequence[LogEvent]
) -> Any:
    """Serialize and reparse, so grading exercises the JSONL layer too."""
    header = LogHeader(spec=spec_name, observed=observed)
    return parse_lines(render_lines(header, events))


def run_log_fuzz(
    n_specs: int = 25,
    seed: str = "0",
    length: int = 10,
    max_frontier: int = 4096,
    compiled: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> LogFuzzReport:
    """Grade the validator over ``n_specs`` generated specs.

    Per spec and observed-variable projection: one clean log (must
    conform), one planted mutant per kind in :data:`MUTATION_KINDS`
    (must diverge at exactly the oracle index, with the frontier below
    its cap), and one stuttering cell.  Zero tolerance: any disagreement
    is a failure.
    """
    cells: Dict[str, int] = {}
    skipped: Dict[str, int] = {}
    failures: List[LogFuzzFailure] = []

    def fail(spec_seed: str, projection: Tuple[str, ...], cell: str, message: str) -> None:
        failures.append(LogFuzzFailure(spec_seed, projection, cell, message))

    for index in range(n_specs):
        spec_seed = f"{seed}-log-{index}"
        params = sample_params(random.Random(f"{seed}-params-{index}"))
        generated = generate_spec(spec_seed, params)
        spec = generated.spec(invariants=False)
        if progress is not None:
            progress(f"[{index + 1}/{n_specs}] {spec_seed}")
        for projection in _projections(params):
            rng = random.Random(f"{seed}:walk:{index}:{'/'.join(projection)}")
            events = walk_log(generated, rng, length=length, observed=projection)
            if not events:
                skipped["clean"] = skipped.get("clean", 0) + 1
                continue
            log = _round_trip("testkit-random", projection, events)

            # -- clean: must conform (validator and oracle agree) -------
            report = validate_log(
                spec, log, max_frontier=max_frontier, compiled=compiled
            )
            cells["clean"] = cells.get("clean", 0) + 1
            if not report.conforms:
                fail(
                    spec_seed,
                    projection,
                    "clean",
                    f"clean log rejected at #{report.divergence_index}",
                )
            conforms, oracle_index = naive_validate(spec, log.events)
            if not conforms:
                fail(
                    spec_seed,
                    projection,
                    "clean",
                    f"oracle rejected a clean walk at #{oracle_index} (testkit bug)",
                )

            # -- planted mutants: must diverge at the oracle index ------
            for kind in MUTATION_KINDS:
                planted = plant_divergence(
                    spec, params, events, kind, rng
                )
                if planted is None:
                    skipped[kind] = skipped.get(kind, 0) + 1
                    continue
                if planted.oracle_index < planted.planted_index:
                    fail(
                        spec_seed,
                        projection,
                        kind,
                        f"oracle index {planted.oracle_index} precedes the"
                        f" planted index {planted.planted_index} (testkit bug)",
                    )
                    continue
                mutant_log = _round_trip(
                    "testkit-random", projection, planted.events
                )
                report = validate_log(
                    spec, mutant_log, max_frontier=max_frontier, compiled=compiled
                )
                cells[kind] = cells.get(kind, 0) + 1
                if report.conforms:
                    fail(
                        spec_seed,
                        projection,
                        kind,
                        f"planted divergence at #{planted.planted_index}"
                        f" (oracle #{planted.oracle_index}) was accepted",
                    )
                elif report.frontier_limited:
                    fail(
                        spec_seed,
                        projection,
                        kind,
                        f"frontier cap {max_frontier} saturated; verdict unreliable",
                    )
                elif report.divergence_index != planted.oracle_index:
                    fail(
                        spec_seed,
                        projection,
                        kind,
                        f"diverged at #{report.divergence_index}, oracle says"
                        f" #{planted.oracle_index}",
                    )

            # -- stuttering: drop one internal event, allow one stutter -
            internal = [
                position
                for position, event in enumerate(events)
                if event.kind == "internal"
            ]
            if not internal:
                skipped["stutter"] = skipped.get("stutter", 0) + 1
                continue
            position = internal[rng.randrange(len(internal))]
            stuttered = [*events[:position], *events[position + 1 :]]
            truth, truth_index = naive_validate(spec, stuttered, stutter_depth=1)
            stutter_log = _round_trip("testkit-random", projection, stuttered)
            report = validate_log(
                spec,
                stutter_log,
                stutter_depth=1,
                max_frontier=max_frontier,
                compiled=compiled,
            )
            cells["stutter"] = cells.get("stutter", 0) + 1
            if report.conforms != truth:
                fail(
                    spec_seed,
                    projection,
                    "stutter",
                    f"stutter verdict {report.verdict}, oracle says"
                    f" {'conforms' if truth else f'diverged at #{truth_index}'}",
                )
            elif not truth and not report.frontier_limited and (
                report.divergence_index != truth_index
            ):
                fail(
                    spec_seed,
                    projection,
                    "stutter",
                    f"stutter divergence at #{report.divergence_index},"
                    f" oracle says #{truth_index}",
                )

    return LogFuzzReport(
        specs=n_specs,
        seed=seed,
        cells=cells,
        skipped=skipped,
        failures=failures,
    )
