"""Self-checking toolkit: fuzz the model checker with the model checker.

``repro.testkit`` generates seeded random specifications with known
ground truth (:mod:`~repro.testkit.genspec`), computes that ground truth
with a deliberately naive reference explorer
(:mod:`~repro.testkit.oracle`), and differentially checks every engine
configuration — serial/parallel, all state stores, symmetry on/off,
kill-at-checkpoint→resume — against it
(:mod:`~repro.testkit.differential`).  Exposed on the command line as
``sandtable selftest``.
"""

from .differential import (
    ARTIFACT_KIND,
    DifferentialReport,
    Disagreement,
    MatrixConfig,
    build_matrix,
    check_spec,
    replay_artifact,
    run_differential,
)
from .genlog import (
    MUTATION_KINDS,
    LogFuzzFailure,
    LogFuzzReport,
    PlantedLog,
    naive_validate,
    plant_divergence,
    run_log_fuzz,
    walk_log,
)
from .gentemporal import (
    TEMPORAL_ARTIFACT_KIND,
    PlantedProperty,
    TemporalFuzzFailure,
    TemporalFuzzReport,
    plant_temporal_properties,
    property_from_descriptor,
    replay_temporal_artifact,
    run_temporal_fuzz,
)
from .genspec import (
    PLANTED_INVARIANT,
    GeneratedSpec,
    GenParams,
    PlantedViolation,
    RandomSpec,
    generate_spec,
    sample_params,
    signature,
)
from .oracle import (
    OracleResult,
    OracleTemporalGraph,
    OracleTemporalVerdict,
    oracle_check_temporal,
    oracle_explore,
    oracle_temporal_graph,
    oracle_validate_lasso,
)

__all__ = [
    "ARTIFACT_KIND",
    "DifferentialReport",
    "Disagreement",
    "MatrixConfig",
    "build_matrix",
    "check_spec",
    "replay_artifact",
    "run_differential",
    "PLANTED_INVARIANT",
    "GeneratedSpec",
    "GenParams",
    "PlantedViolation",
    "RandomSpec",
    "generate_spec",
    "sample_params",
    "signature",
    "OracleResult",
    "OracleTemporalGraph",
    "OracleTemporalVerdict",
    "oracle_check_temporal",
    "oracle_explore",
    "oracle_temporal_graph",
    "oracle_validate_lasso",
    "TEMPORAL_ARTIFACT_KIND",
    "PlantedProperty",
    "TemporalFuzzFailure",
    "TemporalFuzzReport",
    "plant_temporal_properties",
    "property_from_descriptor",
    "replay_temporal_artifact",
    "run_temporal_fuzz",
    "MUTATION_KINDS",
    "LogFuzzFailure",
    "LogFuzzReport",
    "PlantedLog",
    "naive_validate",
    "plant_divergence",
    "run_log_fuzz",
    "walk_log",
]
