"""Self-checking toolkit: fuzz the model checker with the model checker.

``repro.testkit`` generates seeded random specifications with known
ground truth (:mod:`~repro.testkit.genspec`), computes that ground truth
with a deliberately naive reference explorer
(:mod:`~repro.testkit.oracle`), and differentially checks every engine
configuration — serial/parallel, all state stores, symmetry on/off,
kill-at-checkpoint→resume — against it
(:mod:`~repro.testkit.differential`).  Exposed on the command line as
``sandtable selftest``.
"""

from .differential import (
    ARTIFACT_KIND,
    DifferentialReport,
    Disagreement,
    MatrixConfig,
    build_matrix,
    check_spec,
    replay_artifact,
    run_differential,
)
from .genlog import (
    MUTATION_KINDS,
    LogFuzzFailure,
    LogFuzzReport,
    PlantedLog,
    naive_validate,
    plant_divergence,
    run_log_fuzz,
    walk_log,
)
from .genspec import (
    PLANTED_INVARIANT,
    GeneratedSpec,
    GenParams,
    PlantedViolation,
    RandomSpec,
    generate_spec,
    sample_params,
    signature,
)
from .oracle import OracleResult, oracle_explore

__all__ = [
    "ARTIFACT_KIND",
    "DifferentialReport",
    "Disagreement",
    "MatrixConfig",
    "build_matrix",
    "check_spec",
    "replay_artifact",
    "run_differential",
    "PLANTED_INVARIANT",
    "GeneratedSpec",
    "GenParams",
    "PlantedViolation",
    "RandomSpec",
    "generate_spec",
    "sample_params",
    "signature",
    "OracleResult",
    "oracle_explore",
    "MUTATION_KINDS",
    "LogFuzzFailure",
    "LogFuzzReport",
    "PlantedLog",
    "naive_validate",
    "plant_divergence",
    "run_log_fuzz",
    "walk_log",
]
