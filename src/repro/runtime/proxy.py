"""The transparent network proxy (§A.2).

All cluster traffic flows through the engine's proxy, which buffers and
manipulates messages without the endpoints noticing (the TPROXY analogue;
senders believe they reached their peers, receivers see the original
sender).

TCP semantics: per-connection FIFO queues, head-only delivery, partition
as the only failure (crossing queues are cleared and connections refused
until heal).  UDP semantics: a list of in-flight datagrams supporting
selective drop, duplication and out-of-order delivery (§A.3).

``snapshot()`` renders the buffered traffic in exactly the representation
the specification's network module uses, so the conformance checker can
compare the two directly (§A.4: "network states can be retrieved from the
network proxy component").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.state import Rec, freeze
from .wire import Frame, decode_payload

__all__ = ["NetworkProxy", "ProxyError"]


class ProxyError(Exception):
    """Raised on invalid proxy manipulations (empty channel, unknown msg)."""


def _pair(a: str, b: str) -> frozenset:
    return frozenset({a, b})


class NetworkProxy:
    """Buffers, delivers and manipulates cluster traffic."""

    def __init__(self, nodes: Sequence[str], kind: str = "tcp"):
        if kind not in ("tcp", "udp"):
            raise ValueError(f"unknown network kind: {kind}")
        self.nodes = tuple(nodes)
        self.kind = kind
        self._queues: Dict[Tuple[str, str], Deque[Frame]] = {
            (src, dst): deque()
            for src in self.nodes
            for dst in self.nodes
            if src != dst
        }
        self._disconnected: set = set()
        self._down: set = set()
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0

    # -- connectivity ------------------------------------------------------------

    def blocked(self, src: str, dst: str) -> bool:
        return _pair(src, dst) in self._disconnected

    def is_partitioned(self) -> bool:
        return bool(self._disconnected)

    # -- traffic -------------------------------------------------------------------

    def enqueue(self, src: str, dst: str, frame: Frame) -> bool:
        """Buffer a frame; returns False if it was lost.

        A partition loses the frame under both semantics.  A crashed
        destination refuses TCP connections (the send is lost), while UDP
        datagrams to it stay in flight and may arrive after its restart.
        """
        if self.blocked(src, dst):
            self.dropped += 1
            return False
        if self.kind == "tcp" and dst in self._down:
            self.dropped += 1
            return False
        self._queues[(src, dst)].append(frame)
        return True

    def deliverable(self) -> List[Tuple[str, str, Frame]]:
        """Frames the engine may deliver right now.

        TCP exposes only queue heads; UDP exposes every datagram.
        """
        available: List[Tuple[str, str, Frame]] = []
        for (src, dst) in sorted(self._queues):
            queue = self._queues[(src, dst)]
            if self.blocked(src, dst):
                continue
            if self.kind == "tcp":
                if queue:
                    available.append((src, dst, queue[0]))
            else:
                available.extend((src, dst, frame) for frame in queue)
        return available

    def pending(self, src: str, dst: str) -> int:
        return len(self._queues[(src, dst)])

    def pending_total(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def deliver(self, src: str, dst: str, frame: Optional[Frame] = None) -> Frame:
        """Remove and return a frame for delivery.

        For TCP the head of the channel is returned (``frame`` must be
        None or equal to it); for UDP any in-flight ``frame`` may be
        chosen (defaults to the oldest).
        """
        queue = self._queues[(src, dst)]
        if not queue:
            raise ProxyError(f"channel {src}->{dst} is empty")
        if self.blocked(src, dst):
            raise ProxyError(f"channel {src}->{dst} is partitioned")
        if self.kind == "tcp" or frame is None:
            taken = queue.popleft()
            if frame is not None and taken != frame:
                raise ProxyError("TCP delivery must take the queue head")
        else:
            try:
                queue.remove(frame)
            except ValueError:
                raise ProxyError(f"datagram not in flight on {src}->{dst}") from None
            taken = frame
        self.delivered += 1
        return taken

    # -- failure injection (§A.3) ------------------------------------------------------

    def drop(self, src: str, dst: str, frame: Optional[Frame] = None) -> Frame:
        """UDP message loss."""
        if self.kind != "udp":
            raise ProxyError("message drop is a UDP failure")
        queue = self._queues[(src, dst)]
        if not queue:
            raise ProxyError(f"channel {src}->{dst} is empty")
        if frame is None:
            taken = queue.popleft()
        else:
            try:
                queue.remove(frame)
            except ValueError:
                raise ProxyError(f"datagram not in flight on {src}->{dst}") from None
            taken = frame
        self.dropped += 1
        return taken

    def duplicate(self, src: str, dst: str, frame: Optional[Frame] = None) -> Frame:
        """UDP message duplication."""
        if self.kind != "udp":
            raise ProxyError("message duplication is a UDP failure")
        queue = self._queues[(src, dst)]
        if not queue:
            raise ProxyError(f"channel {src}->{dst} is empty")
        chosen = queue[0] if frame is None else frame
        if frame is not None and frame not in queue:
            raise ProxyError(f"datagram not in flight on {src}->{dst}")
        queue.append(chosen)
        self.duplicated += 1
        return chosen

    def partition(self, group: Iterable[str]) -> None:
        """Break every connection crossing the group / rest split."""
        inside = frozenset(group)
        outside = frozenset(self.nodes) - inside
        if not inside or not outside:
            raise ProxyError("a partition needs two non-empty sides")
        for a in inside:
            for b in outside:
                self._disconnected.add(_pair(a, b))
                if self.kind == "tcp":
                    # Crossing TCP connections break: buffered data is lost.
                    self._queues[(a, b)].clear()
                    self._queues[(b, a)].clear()
                else:
                    # In-flight datagrams on a dead path are lost too.
                    self._queues[(a, b)].clear()
                    self._queues[(b, a)].clear()
        self.dropped += 0

    def heal(self) -> None:
        self._disconnected.clear()

    def mark_down(self, node: str) -> None:
        """Record a crashed node: its TCP connections break and new ones
        are refused until :meth:`mark_up`."""
        self._down.add(node)
        self.clear_node(node)

    def mark_up(self, node: str) -> None:
        self._down.discard(node)

    def clear_node(self, node: str) -> None:
        """A crashed node's connections break (TCP); datagrams persist (UDP)."""
        if self.kind != "tcp":
            return
        for (src, dst), queue in self._queues.items():
            if node in (src, dst):
                queue.clear()

    # -- conformance snapshot (§A.4) -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The buffered traffic in the spec network module's shape."""
        if self.kind == "tcp":
            channels = Rec(
                {
                    (src, dst): tuple(
                        freeze(decode_payload(f)) for f in self._queues[(src, dst)]
                    )
                    for (src, dst) in self._queues
                }
            )
            messages: object = channels
        else:
            packets = [
                (src, dst, freeze(decode_payload(f)))
                for (src, dst), queue in self._queues.items()
                for f in queue
            ]
            from ..specs.network import _msg_key

            messages = tuple(sorted(packets, key=_msg_key))
        disconnected = frozenset(self._disconnected)
        return {"netMsgs": messages, "netDisconnected": disconnected}
