"""The deterministic execution engine (§4.1, Figure 5, §A.5).

The engine schedules every event in the cluster: it delivers buffered
messages, fires timers by advancing virtual clocks, issues client
requests, and injects failures.  Nothing happens in the cluster unless
the engine commands it, so replaying the same command sequence always
produces the same execution — the property bug confirmation (§3.4) and
conformance checking (§3.2) rely on.

An unhandled exception escaping a target-system handler is treated as
the process aborting (the by-product crash bugs found during conformance
checking); the engine records it and marks the node crashed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.state import Rec, freeze
from ..systems.base import SystemCrash
from .clock import VirtualClock
from .commands import Command
from .latency import LatencyModel
from .node import NodeHost
from .proxy import NetworkProxy, ProxyError
from .wire import decode_payload, encode_payload

__all__ = ["ExecutionEngine", "CommandResult", "EngineError"]

#: advanced past any timer deadline when firing a timeout
TIMER_ADVANCE_NS = 10_000_000_000


class EngineError(Exception):
    """A command could not be executed (not enabled in the cluster)."""


@dataclasses.dataclass
class CommandResult:
    """Outcome of one engine command."""

    command: Command
    ok: bool = True
    detail: Any = None
    crash: Optional[SystemCrash] = None

    @property
    def crashed(self) -> bool:
        return self.crash is not None


class ExecutionEngine:
    """Drives an unmodified cluster deterministically."""

    def __init__(
        self,
        factory: Callable,
        nodes: Sequence[str],
        network_kind: str = "tcp",
        bugs: Sequence[str] = (),
        latency: Optional[LatencyModel] = None,
        emitter: Optional[Any] = None,
    ):
        self.nodes = tuple(nodes)
        #: optional event-log emitter (``repro.tracecheck.RuntimeLogEmitter``):
        #: notified after every successfully executed command.
        self.emitter = emitter
        self.network_kind = network_kind
        self.clock = VirtualClock(self.nodes)
        self.proxy = NetworkProxy(self.nodes, kind=network_kind)
        self.latency = latency or LatencyModel()
        self.sim_seconds = 0.0
        self.events_executed = 0
        self.crashes: List[SystemCrash] = []
        self.hosts: Dict[str, NodeHost] = {
            node: NodeHost(node, self.nodes, factory, self.clock, self.proxy, bugs)
            for node in self.nodes
        }
        # Cluster initialization: start every node (and pay for it).
        self.sim_seconds += self.latency.charge_init()
        for host in self.hosts.values():
            host.start()

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------

    def execute(self, command: Command) -> CommandResult:
        handler = getattr(self, f"_cmd_{command.kind}", None)
        if handler is None:
            raise EngineError(f"unknown command kind: {command.kind}")
        self.sim_seconds += self.latency.charge_event()
        self.events_executed += 1
        try:
            detail = handler(command)
        except SystemCrash as crash:
            self.crashes.append(crash)
            return CommandResult(command, ok=False, crash=crash)
        result = CommandResult(command, detail=detail)
        if self.emitter is not None:
            self.emitter.on_command(self, command, result)
        return result

    def run(self, commands: Sequence[Command]) -> List[CommandResult]:
        return [self.execute(command) for command in commands]

    def _guard_alive(self, node: str) -> NodeHost:
        host = self.hosts[node]
        if not host.alive:
            raise EngineError(f"{node} is not running")
        return host

    def _invoke(self, node: str, event: str, fn: Callable, *args: Any) -> Any:
        """Run a target-system handler; an escaping exception aborts the node."""
        try:
            return fn(*args)
        except Exception as exc:  # noqa: BLE001 — any escape is a crash
            host = self.hosts[node]
            if host.alive:
                host.crash()
            self.proxy.mark_down(node)
            raise SystemCrash(node, event, exc) from exc

    # -- network commands ---------------------------------------------------------

    def _cmd_deliver(self, command: Command) -> Any:
        src, dst = command.src, command.dst
        host = self._guard_alive(dst)
        frame = None
        if command.payload is not None and self.network_kind == "udp":
            frame = encode_payload(command.payload)
        try:
            taken = self.proxy.deliver(src, dst, frame)
        except ProxyError as exc:
            raise EngineError(str(exc)) from exc
        payload = decode_payload(taken)
        self._invoke(dst, f"message from {src}", host.require_proc().on_message, src, payload)
        return payload

    def _cmd_drop(self, command: Command) -> Any:
        frame = (
            encode_payload(command.payload) if command.payload is not None else None
        )
        try:
            return decode_payload(self.proxy.drop(command.src, command.dst, frame))
        except ProxyError as exc:
            raise EngineError(str(exc)) from exc

    def _cmd_duplicate(self, command: Command) -> Any:
        frame = (
            encode_payload(command.payload) if command.payload is not None else None
        )
        try:
            return decode_payload(self.proxy.duplicate(command.src, command.dst, frame))
        except ProxyError as exc:
            raise EngineError(str(exc)) from exc

    def _cmd_partition(self, command: Command) -> None:
        try:
            self.proxy.partition(command.group)
        except ProxyError as exc:
            raise EngineError(str(exc)) from exc

    def _cmd_heal(self, command: Command) -> None:
        self.proxy.heal()

    # -- node commands ------------------------------------------------------------

    def _cmd_timeout(self, command: Command) -> None:
        host = self._guard_alive(command.node)
        if not host.interceptor.timer_armed(command.timer):
            raise EngineError(
                f"timer {command.timer!r} is not armed on {command.node}"
            )
        self.clock.advance_ns(command.node, TIMER_ADVANCE_NS)
        self._invoke(
            command.node,
            f"timeout {command.timer}",
            host.require_proc().on_timeout,
            command.timer,
        )

    def _cmd_client(self, command: Command) -> Any:
        host = self._guard_alive(command.node)
        return self._invoke(
            command.node,
            "client request",
            host.require_proc().on_client_request,
            command.op,
        )

    def _cmd_crash(self, command: Command) -> None:
        host = self._guard_alive(command.node)
        host.crash()
        self.proxy.mark_down(command.node)

    def _cmd_restart(self, command: Command) -> None:
        host = self.hosts[command.node]
        if host.alive:
            raise EngineError(f"{command.node} is already running")
        self.proxy.mark_up(command.node)
        host.start()

    def _cmd_compact(self, command: Command) -> Any:
        host = self._guard_alive(command.node)
        return self._invoke(
            command.node, "compaction", host.require_proc().compact
        )

    def _cmd_advance_clock(self, command: Command) -> int:
        return self.clock.advance_ns(command.node, command.delta_ns)

    # -- state commands (§A.4) --------------------------------------------------------

    def _cmd_get_state(self, command: Command) -> Any:
        if command.node is not None:
            return self.hosts[command.node].extract_state()
        return self.cluster_state()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def cluster_state(self) -> Dict[str, Any]:
        """The whole cluster's state in spec-variable shape."""
        state: Dict[str, Any] = {
            "alive": {node: host.alive for node, host in self.hosts.items()},
            "nodes": {
                node: host.extract_state() for node, host in self.hosts.items()
            },
        }
        state.update(self.proxy.snapshot())
        return state

    def frozen_cluster_state(self) -> Rec:
        """The cluster state as a frozen record (conformance comparisons)."""
        raw = self.cluster_state()
        return Rec(
            alive=freeze(raw["alive"]),
            nodes=freeze(
                {n: s for n, s in raw["nodes"].items() if s is not None}
            ),
            netMsgs=raw["netMsgs"],
            netDisconnected=raw["netDisconnected"],
        )

    def resource_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            node: (host.proc.resource_stats() if host.alive else {})
            for node, host in self.hosts.items()
        }
