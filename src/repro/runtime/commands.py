"""The engine command vocabulary (§4.1, §A.5).

Three families, as in the paper: *network commands* manipulate traffic
(deliver, drop, duplicate, partition, heal), *node commands* control the
target processes (timeout, client, crash, restart, compact,
advance-clock), and *state commands* observe (get-state).  Specification
trace events convert one-to-one into these commands
(:mod:`repro.conformance.converter`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

__all__ = [
    "Command",
    "deliver",
    "timeout",
    "client",
    "crash",
    "restart",
    "partition",
    "heal",
    "drop",
    "duplicate",
    "compact",
    "advance_clock",
    "get_state",
]


@dataclasses.dataclass(frozen=True)
class Command:
    """One deterministic-execution command."""

    kind: str
    node: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    payload: Any = None
    group: Tuple[str, ...] = ()
    timer: str = ""
    op: Any = None
    delta_ns: int = 0

    def describe(self) -> str:
        if self.kind == "deliver":
            return f"deliver {self.src}->{self.dst}"
        if self.kind == "timeout":
            return f"timeout {self.node} {self.timer}"
        if self.kind == "client":
            return f"client {self.node} {self.op!r}"
        if self.kind in ("crash", "restart", "compact"):
            return f"{self.kind} {self.node}"
        if self.kind == "partition":
            return f"partition {'|'.join(self.group)}"
        if self.kind in ("drop", "duplicate"):
            return f"{self.kind} {self.src}->{self.dst}"
        return self.kind


def deliver(src: str, dst: str, payload: Any = None) -> Command:
    """Deliver a buffered message (head for TCP; a chosen datagram for UDP)."""
    return Command("deliver", src=src, dst=dst, payload=payload)


def timeout(node: str, timer: str = "election") -> Command:
    """Advance the node's virtual clock past the named timer and fire it."""
    return Command("timeout", node=node, timer=timer)


def client(node: str, op: Any) -> Command:
    """Issue a client request against a node."""
    return Command("client", node=node, op=op)


def crash(node: str) -> Command:
    """Abort the node without cleanup (the SIGQUIT analogue)."""
    return Command("crash", node=node)


def restart(node: str) -> Command:
    """Start a crashed node; it recovers its persistent state."""
    return Command("restart", node=node)


def partition(group: Tuple[str, ...]) -> Command:
    """Break all connections crossing the group / rest split."""
    return Command("partition", group=tuple(group))


def heal() -> Command:
    return Command("heal")


def drop(src: str, dst: str, payload: Any = None) -> Command:
    """Drop a UDP datagram."""
    return Command("drop", src=src, dst=dst, payload=payload)


def duplicate(src: str, dst: str, payload: Any = None) -> Command:
    """Duplicate a UDP datagram."""
    return Command("duplicate", src=src, dst=dst, payload=payload)


def compact(node: str) -> Command:
    """Trigger log compaction on a node."""
    return Command("compact", node=node)


def advance_clock(node: str, delta_ns: int) -> Command:
    return Command("advance_clock", node=node, delta_ns=delta_ns)


def get_state(node: Optional[str] = None) -> Command:
    return Command("get_state", node=node)
