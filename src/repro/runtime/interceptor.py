"""The interceptor: simulated POSIX interposition (§A.1).

In the paper the interceptor is a shared library preloaded into the
target system's address space via ``LD_PRELOAD``; it overrides libc
syscall wrappers (time, network, logging I/O) and executes commands from
the engine.  Here the same control surface is a Python object handed to
each target-system process: every interaction the process has with the
outside world — reading the clock, sending a message, arming a timer,
persisting data, writing a log line — goes through it, and the engine
observes and controls all of it.

Per-call counters record which "syscalls" the process issued, and the
log-line buffer supports the paper's log-parsing state-extraction path
(§A.1 "states observation").
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Dict, List, Optional, Pattern, Tuple

from .clock import VirtualClock
from .proxy import NetworkProxy
from .wire import encode_payload

__all__ = ["Interceptor"]


class Interceptor:
    """Per-node interposition layer between a target system and the engine."""

    def __init__(
        self,
        node_id: str,
        clock: VirtualClock,
        proxy: NetworkProxy,
        persistent: Dict[str, Any],
    ):
        self.node_id = node_id
        self._clock = clock
        self._proxy = proxy
        self._persistent = persistent
        self.syscalls: Counter = Counter()
        self.timers: Dict[str, bool] = {}
        self.log_lines: List[str] = []
        self.sent_messages = 0
        self.event_seq = 0

    # -- time (clock_gettime / gettimeofday) ------------------------------------

    def gettime_ns(self) -> int:
        self.syscalls["clock_gettime"] += 1
        return self._clock.now_ns(self.node_id)

    # -- network (send/recv wrappers) ----------------------------------------------

    def send(self, dst: str, payload: Any) -> bool:
        """Frame and enqueue a message (the sendto/write override).

        The interceptor adds the message-boundary header; the proxy
        buffers the frame.  Returns False when the send was lost (broken
        connection), which the target system cannot distinguish from a
        successful send — exactly the TCP semantics under partition.
        """
        self.syscalls["sendto"] += 1
        self.sent_messages += 1
        frame = encode_payload(payload)
        return self._proxy.enqueue(self.node_id, dst, frame)

    # -- timers ------------------------------------------------------------------------

    def set_timer(self, kind: str) -> None:
        """Arm a named timer; it fires only via an engine timeout command."""
        self.syscalls["timerfd_settime"] += 1
        self.timers[kind] = True

    def cancel_timer(self, kind: str) -> None:
        self.syscalls["timerfd_settime"] += 1
        self.timers[kind] = False

    def timer_armed(self, kind: str) -> bool:
        return self.timers.get(kind, False)

    # -- durable storage (write/fsync on the journal) ---------------------------------------

    def persist(self, key: str, value: Any) -> None:
        self.syscalls["fsync"] += 1
        self._persistent[key] = value

    def load(self, key: str, default: Any = None) -> Any:
        self.syscalls["read"] += 1
        return self._persistent.get(key, default)

    # -- logging (the state-observation channel) -----------------------------------------------

    def log(self, line: str) -> None:
        """A log write, captured by the logging-fd interception."""
        self.syscalls["write"] += 1
        self.log_lines.append(line)

    def grep_log(self, pattern: str) -> List[Tuple[str, ...]]:
        """Extract state from captured log lines via a regular expression
        (the paper's log-parsing extraction method, §A.1)."""
        compiled: Pattern[str] = re.compile(pattern)
        return [m.groups() for line in self.log_lines for m in [compiled.search(line)] if m]

    def last_logged(self, pattern: str) -> Optional[Tuple[str, ...]]:
        matches = self.grep_log(pattern)
        return matches[-1] if matches else None

    # -- event sequencing (trace validation) ---------------------------------------------

    def next_event_seq(self) -> int:
        """The node's next event sequence number, for emitted event logs.

        Monotonic over the node's whole lifetime — crash/restart does
        *not* reset it (it lives with the host, like the persistent
        dict), so a log's per-node ordering stays checkable across
        failures.
        """
        self.event_seq += 1
        return self.event_seq

    def reset_volatile(self) -> None:
        """Called on crash: timers and buffered log lines vanish with the
        process; persistent storage, syscall statistics, and the event
        sequence counter survive for post-mortem inspection."""
        self.timers = {}
        self.log_lines = []
