"""Implementation-level latency model (the §5.3 substitution).

The paper measures implementation-level trace replay on real clusters:
cluster initialization (cleaning disks, restarting nodes) plus per-event
execution and synchronization sleeps dominate, giving the Table 4
averages (≈2 s/trace for the no-sleep drivers, 4.8 s for RaftOS, 24 s for
Xraft, 28 s for ZooKeeper).

Since this reproduction runs the cluster as in-process simulated POSIX
nodes, those costs are modeled explicitly: each engine boot charges
``init_seconds`` and each executed event charges ``event_seconds`` to a
simulated-time account.  The per-system presets are calibrated against
Table 4 (time = init + depth x event at the paper's average depths), so
the speedup *shape* is preserved.  ``sleep_scale`` optionally converts a
fraction of the simulated cost into real ``time.sleep`` for end-to-end
demonstrations.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict

__all__ = ["LatencyModel", "PRESETS", "preset_for"]


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Simulated implementation-level cost accounting."""

    init_seconds: float = 0.0
    event_seconds: float = 0.0
    sleep_scale: float = 0.0

    def charge_init(self) -> float:
        self._maybe_sleep(self.init_seconds)
        return self.init_seconds

    def charge_event(self) -> float:
        self._maybe_sleep(self.event_seconds)
        return self.event_seconds

    def trace_seconds(self, depth: int) -> float:
        """Predicted wall-clock for one replayed trace of ``depth`` events."""
        return self.init_seconds + depth * self.event_seconds

    def _maybe_sleep(self, seconds: float) -> None:
        if self.sleep_scale > 0 and seconds > 0:
            time.sleep(seconds * self.sleep_scale)


#: per-system presets calibrated against Table 4's average trace times
PRESETS: Dict[str, LatencyModel] = {
    # no-sleep portable driver (§5.3): ~2 s per trace
    "pysyncobj": LatencyModel(init_seconds=1.00, event_seconds=0.020),
    "wraft": LatencyModel(init_seconds=1.56, event_seconds=0.020),
    "redisraft": LatencyModel(init_seconds=0.90, event_seconds=0.020),
    "daosraft": LatencyModel(init_seconds=1.16, event_seconds=0.020),
    # RaftOS sleeps before asynchronous actions
    "raftos": LatencyModel(init_seconds=1.00, event_seconds=0.123),
    # Xraft and ZooKeeper sleep for initialization and synchronization
    "xraft": LatencyModel(init_seconds=20.0, event_seconds=0.114),
    "xraft-kv": LatencyModel(init_seconds=21.0, event_seconds=0.086),
    "zookeeper": LatencyModel(init_seconds=22.0, event_seconds=0.140),
}


def preset_for(system: str) -> LatencyModel:
    return PRESETS[system]
