"""The implementation-level deterministic execution engine (§4.1, App. A)."""

from . import commands
from .clock import VirtualClock
from .commands import Command
from .engine import CommandResult, EngineError, ExecutionEngine
from .interceptor import Interceptor
from .latency import PRESETS, LatencyModel, preset_for
from .node import HostContext, NodeHost
from .proxy import NetworkProxy, ProxyError
from .wire import Frame, WireError, decode_payload, encode_payload

__all__ = [
    "Command",
    "CommandResult",
    "EngineError",
    "ExecutionEngine",
    "Frame",
    "HostContext",
    "Interceptor",
    "LatencyModel",
    "NetworkProxy",
    "NodeHost",
    "PRESETS",
    "ProxyError",
    "VirtualClock",
    "WireError",
    "commands",
    "decode_payload",
    "encode_payload",
    "preset_for",
]
