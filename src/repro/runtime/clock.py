"""Virtual clocks (§A.1).

The engine controls each node's perception of time.  A node reading the
clock (the analogue of intercepted ``clock_gettime``/``gettimeofday``)
receives the virtual time and bumps it by a tiny predefined increment to
preserve monotonicity; timeouts fire only when the engine advances the
clock past a deadline.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["VirtualClock"]

#: the small increment applied on every read, in nanoseconds
READ_INCREMENT_NS = 1


class VirtualClock:
    """Per-node virtual time in nanoseconds, advanced only by the engine."""

    def __init__(self, nodes: Iterable[str]):
        self._now_ns: Dict[str, int] = {node: 0 for node in nodes}
        self.reads: Dict[str, int] = {node: 0 for node in nodes}

    def now_ns(self, node: str) -> int:
        """Read the clock (counts as an intercepted time syscall)."""
        self.reads[node] += 1
        self._now_ns[node] += READ_INCREMENT_NS
        return self._now_ns[node]

    def peek_ns(self, node: str) -> int:
        """Read without the monotonicity bump (engine-internal)."""
        return self._now_ns[node]

    def advance_ns(self, node: str, delta_ns: int) -> int:
        """Engine command: advance a node's time (to fire timeouts)."""
        if delta_ns < 0:
            raise ValueError("virtual time cannot go backwards")
        self._now_ns[node] += delta_ns
        return self._now_ns[node]

    def advance_all_ns(self, delta_ns: int) -> None:
        for node in self._now_ns:
            self.advance_ns(node, delta_ns)

    def reset(self, node: str) -> None:
        """A restarted process reads time from zero reads but the
        machine clock keeps its value; only read statistics reset."""
        self.reads[node] = 0
