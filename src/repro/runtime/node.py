"""Node hosts: one per target-system process (§A.1, §A.3).

A host owns the process object, its interceptor, and its persistent
storage.  Crashing a node discards the process and everything volatile —
exactly the SIGQUIT-without-cleanup semantics the engine injects — while
the persistent dict (the journal/snapshot files) survives for the
restart.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..systems.base import SystemNode
from .clock import VirtualClock
from .interceptor import Interceptor
from .proxy import NetworkProxy

__all__ = ["NodeHost", "HostContext"]


class HostContext:
    """The :class:`NodeContext` a host hands to its process.

    Thin veneer over the interceptor: the process believes it is doing
    syscalls; everything lands in engine-controlled components.
    """

    def __init__(self, node_id: str, peers: Tuple[str, ...], interceptor: Interceptor):
        self.node_id = node_id
        self.peers = peers
        self._interceptor = interceptor

    def send(self, dst: str, payload: Dict[str, Any]) -> bool:
        return self._interceptor.send(dst, payload)

    def now_ns(self) -> int:
        return self._interceptor.gettime_ns()

    def set_timer(self, kind: str) -> None:
        self._interceptor.set_timer(kind)

    def cancel_timer(self, kind: str) -> None:
        self._interceptor.cancel_timer(kind)

    def persist(self, key: str, value: Any) -> None:
        self._interceptor.persist(key, value)

    def load(self, key: str, default: Any = None) -> Any:
        return self._interceptor.load(key, default)

    def log(self, line: str) -> None:
        self._interceptor.log(line)


class NodeHost:
    """Lifecycle management for one target-system node."""

    def __init__(
        self,
        node_id: str,
        all_nodes: Sequence[str],
        factory: Callable[..., SystemNode],
        clock: VirtualClock,
        proxy: NetworkProxy,
        bugs: Sequence[str] = (),
    ):
        self.node_id = node_id
        self.peers = tuple(n for n in all_nodes if n != node_id)
        self.factory = factory
        self.bugs = tuple(bugs)
        self.persistent: Dict[str, Any] = {}
        self.interceptor = Interceptor(node_id, clock, proxy, self.persistent)
        self.proc: Optional[SystemNode] = None
        self.crash_count = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None

    def start(self) -> None:
        if self.alive:
            raise RuntimeError(f"{self.node_id} is already running")
        self.interceptor.reset_volatile()
        ctx = HostContext(self.node_id, self.peers, self.interceptor)
        self.proc = self.factory(ctx, bugs=self.bugs)
        self.proc.on_start()

    def crash(self) -> None:
        """SIGQUIT semantics: no cleanup, volatile state is gone."""
        if not self.alive:
            raise RuntimeError(f"{self.node_id} is not running")
        self.proc = None
        self.crash_count += 1
        self.interceptor.reset_volatile()

    def require_proc(self) -> SystemNode:
        if self.proc is None:
            raise RuntimeError(f"{self.node_id} is not running")
        return self.proc

    def extract_state(self) -> Optional[Dict[str, Any]]:
        if self.proc is None:
            return None
        return self.proc.extract_state()

    def observed_state(self, observed: Optional[Sequence[str]] = None) -> Optional[Dict[str, Any]]:
        """The node's extracted state filtered to an observed-variable
        subset (``None`` keeps everything); ``None`` when crashed."""
        if self.proc is None:
            return None
        return self.proc.observed_state(observed)
