"""Wire framing for intercepted network traffic (§A.1).

When a target system sends a message, the interceptor prepends a header
with message-boundary information so the engine can enqueue whole
messages in the network buffer.  This module implements that framing: a
4-byte big-endian length prefix followed by a canonical JSON payload.

Payloads are plain dicts/lists/scalars; tuples are serialized as JSON
arrays and come back as tuples via :func:`repro.core.state.freeze` when
the conformance checker compares network contents against the spec.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any

__all__ = ["Frame", "encode_payload", "decode_payload", "WireError"]

_HEADER = struct.Struct(">I")
MAX_FRAME_BYTES = 1 << 20


class WireError(Exception):
    """Raised on malformed frames."""


@dataclasses.dataclass(frozen=True)
class Frame:
    """One framed message as buffered by the proxy."""

    data: bytes

    def __len__(self) -> int:
        return len(self.data)


def _canonical(value: Any) -> Any:
    """JSON-friendly canonical form (tuples/frozensets become lists)."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(v) for v in value), key=repr)
    if hasattr(value, "items"):  # Rec and other mappings
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


def encode_payload(payload: Any) -> Frame:
    """Serialize a message payload into a length-prefixed frame."""
    body = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {len(body)} bytes")
    return Frame(_HEADER.pack(len(body)) + body)


def decode_payload(frame: Frame) -> Any:
    """Parse a frame back into its payload, converting lists to tuples.

    Tuple conversion keeps round-tripped payloads structurally identical
    to the frozen message records used by the specifications.
    """
    if len(frame.data) < _HEADER.size:
        raise WireError("truncated frame header")
    (length,) = _HEADER.unpack_from(frame.data)
    body = frame.data[_HEADER.size :]
    if len(body) != length:
        raise WireError(f"frame length mismatch: header {length}, body {len(body)}")
    try:
        parsed = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame body: {exc}") from exc
    return _tupleize(parsed)


def _tupleize(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tupleize(v) for v in value)
    if isinstance(value, dict):
        return {k: _tupleize(v) for k, v in value.items()}
    return value
