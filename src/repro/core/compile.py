"""Compiled specifications: the spec->successor->fingerprint hot path.

Interpreted exploration pays generic-Python prices on every transition:
``Spec.successors`` walks the action list through per-action generator
wrappers, every invariant runs on every state/edge, and every successor
is re-encoded from scratch for fingerprinting.  :func:`compile_spec`
builds a :class:`CompiledSpec` once per run that removes those costs
without changing a single observable result:

* **action snapshot** — the action list is materialized once, with
  per-action metadata (name, kind, declared-or-inferred top-level
  read/write sets) exposed as :attr:`CompiledSpec.action_meta`; this is
  the metadata a partial-order-reduction pass needs;
* **specialized successor loop** — one flat closure over pre-bound
  ``(name, fn, guard)`` entries replaces the per-action
  ``Action.transitions`` wrappers; declared guards short-circuit
  disabled actions before their generator is even entered;
* **incremental invariant checking** — invariants that declare their
  ``reads`` are skipped on successors whose touched-key set (recorded
  by ``Rec.set``/``Rec.update``, see
  :func:`repro.core.state.changed_keys`) is disjoint from the declared
  reads.  For state invariants this is sound by induction whenever the
  parent state was itself checked (the engine only passes ``changed``
  in configurations where that holds); for transition invariants the
  declaration carries the stutter-safety contract documented on
  :class:`repro.core.spec.TransitionInvariant`;
* **delta fingerprinting** — compiled runs lean on the codec's spliced
  encoding (:mod:`repro.core.state`), which assembles a successor's
  canonical bytes from the parent's cached bytes plus the re-encoded
  touched fields.  The bytes are bit-identical to a from-scratch
  encode, so fingerprints, stores, checkpoints, and ``fp % N`` shard
  routing are all unaffected.

A :class:`CompiledSpec` exposes the same ``successors`` /
``state_constraint`` / ``invariants`` surface as the spec it wraps (and
delegates unknown attributes to it), so every consumer is a one-line
change.  The ``SANDTABLE_NO_COMPILE`` environment variable (or the
``--no-compile`` CLI flag) disables compilation everywhere, restoring
the interpreted pipeline byte for byte.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .spec import Action, Invariant, Spec, SpecError, Transition, TransitionInvariant
from .state import Rec
from .state import changed_keys as rec_changed_keys

__all__ = [
    "ActionMeta",
    "CompiledSpec",
    "compile_spec",
    "maybe_compile",
    "compile_disabled",
    "por_prune_set",
]


def compile_disabled() -> bool:
    """True when the ``SANDTABLE_NO_COMPILE`` escape hatch is set."""
    return bool(os.environ.get("SANDTABLE_NO_COMPILE"))


@dataclasses.dataclass(frozen=True)
class ActionMeta:
    """Per-action metadata snapshotted by :func:`compile_spec`.

    ``writes`` is the action's declared write set, or — when the spec
    declares none — a set inferred by sampling the action's successors
    on an initial state (``writes_inferred=True``).  Inferred sets are
    a *sample*, not a guarantee: they inform reporting and future
    reduction passes, and are never used for invariant skipping (which
    relies only on per-transition exact touched keys).
    """

    name: str
    kind: str
    reads: Optional[FrozenSet[Any]]
    writes: Optional[FrozenSet[Any]]
    writes_inferred: bool = False


def _infer_writes(spec: Spec, actions: Sequence[Action]) -> dict:
    """Sample each undeclared action's write set on one initial state."""
    try:
        init = next(iter(spec.init_states()))
    except Exception:
        return {}
    inferred: dict = {}
    for action in actions:
        if action.writes is not None:
            continue
        seen: set = set()
        complete = True
        try:
            for item in action.fn(init):
                target = item[1]
                delta = rec_changed_keys(target, init)
                if delta is None:
                    complete = False
                    break
                seen |= delta
        except Exception:
            complete = False
        if complete:
            inferred[action.name] = frozenset(seen)
    return inferred


class CompiledSpec(Spec):
    """A spec with a compiled successor loop and incremental checking.

    Built by :func:`compile_spec`; behaviourally identical to the
    wrapped spec — same transitions in the same order, same invariant
    verdicts, same fingerprints — only faster.
    """

    def __init__(self, spec: Spec, infer_writes: bool = True, por: bool = False):
        self._source = spec
        self.name = spec.name
        actions = tuple(spec.cached_actions())
        self._action_cache = actions

        inferred = _infer_writes(spec, actions) if infer_writes else {}
        self.action_meta: Tuple[ActionMeta, ...] = tuple(
            ActionMeta(
                name=a.name,
                kind=a.kind,
                reads=a.reads,
                writes=a.writes if a.writes is not None else inferred.get(a.name),
                writes_inferred=a.writes is None and a.name in inferred,
            )
            for a in actions
        )

        # Pre-bound successor entries: the flat loop in successors()
        # reads these tuples instead of going through Action.transitions.
        self._entries = tuple((a.name, a.fn, a.guard) for a in actions)

        self._invariants = tuple(spec.invariants())
        self._tinvariants = tuple(spec.transition_invariants())
        self._inv_entries = tuple(
            (inv.name, inv.fn, inv.reads) for inv in self._invariants
        )
        self._tinv_entries = tuple(
            (inv.name, inv.fn, inv.reads) for inv in self._tinvariants
        )
        #: True when at least one invariant declares a read set — the
        #: engine only bothers computing per-transition changed keys
        #: when there is something to skip.
        self.incremental = any(
            reads is not None for _, _, reads in self._inv_entries
        ) or any(reads is not None for _, _, reads in self._tinv_entries)

        # Pre-bound delegates, so hot callers pay no extra indirection.
        self.init_states = spec.init_states
        self.state_constraint = spec.state_constraint
        self.symmetry_sets = spec.symmetry_sets

        #: Partial-order reduction: when enabled, the statically-safe
        #: prune set is removed from the successor table.  ``actions()``
        #: (and therefore per-action fire counts and coverage) still
        #: reports the full action list — pruned actions show zero fires.
        self.por = bool(por)
        self.por_pruned: FrozenSet[str] = frozenset()
        if por:
            self.por_pruned = self._compute_prune_set()
            if self.por_pruned:
                pruned = self.por_pruned
                self._entries = tuple(
                    entry for entry in self._entries if entry[0] not in pruned
                )

    def _compute_prune_set(self) -> FrozenSet[str]:
        """The greatest set of actions whose removal preserves checking.

        An action ``B`` may be pruned when every occurrence of ``B`` on
        any path can be *stripped*, leaving a shorter valid path whose
        end state agrees with the original outside ``writes(B)``.  That
        holds when (a) ``B``'s write set is declared (inferred sets are
        a sample, never trusted for pruning), (b) ``writes(B)`` is
        disjoint from the read set of every surviving action — an
        undeclared read set counts as reading everything — (c) disjoint
        from the declared reads of every state and transition invariant
        (one opaque invariant blocks all pruning), and (d) disjoint from
        the state constraint's reads (the constraint must be
        unoverridden, or covered by a declared ``constraint_reads``).

        Consequences: a minimal violating path contains no pruned
        actions, so violation reachability *and* exact minimal depth are
        preserved, and the reduced run's census equals the census of the
        spec with those actions removed — which is how the testkit
        oracle grades it.  Rule (b) is a greatest fixpoint: removing an
        action from the candidate set makes it a survivor other
        candidates must be disjoint from, so candidates are re-checked
        until stable.
        """
        # Nothing to preserve means nothing to gain: an invariant-free
        # spec is a census run, and pruning would change the census for
        # no checking benefit.
        if not self._inv_entries and not self._tinv_entries:
            return frozenset()
        checked_reads: set = set()
        for _, _, reads in self._inv_entries + self._tinv_entries:
            if reads is None:
                return frozenset()
            checked_reads |= reads
        source = self._source
        if type(source).state_constraint is not Spec.state_constraint:
            declared = getattr(source, "constraint_reads", None)
            if declared is None:
                return frozenset()
            checked_reads |= set(declared)
        metas = self.action_meta
        pruned = {
            meta.name
            for meta in metas
            if meta.writes is not None
            and not meta.writes_inferred
            and meta.writes.isdisjoint(checked_reads)
        }
        changed = True
        while changed and pruned:
            changed = False
            survivors = [meta for meta in metas if meta.name not in pruned]
            for meta in metas:
                if meta.name not in pruned:
                    continue
                for other in survivors:
                    if other.reads is None or not meta.writes.isdisjoint(other.reads):
                        pruned.discard(meta.name)
                        changed = True
                        break
        return frozenset(pruned)

    # -- the compiled surface -------------------------------------------------

    def actions(self) -> Sequence[Action]:
        return self._action_cache

    def refresh_actions(self) -> None:
        raise SpecError(
            "a CompiledSpec snapshots its action list at compile time;"
            " refresh the source spec and re-run compile_spec() instead"
        )

    def invariants(self) -> Sequence[Invariant]:
        return self._invariants

    def transition_invariants(self) -> Sequence[TransitionInvariant]:
        return self._tinvariants

    def successors(self, state: Rec) -> Iterator[Transition]:
        """All enabled transitions, via the flat pre-bound action table.

        Yields exactly what the interpreted ``Spec.successors`` yields,
        in the same order, with the same malformed-yield diagnostics.
        """
        make = Transition
        for name, fn, guard in self._entries:
            if guard is not None and not guard(state):
                continue
            for item in fn(state):
                n = len(item)
                if n == 3:
                    args, target, branch = item
                elif n == 2:
                    args, target = item
                    branch = ""
                else:
                    raise SpecError(
                        f"action {name} yielded a {n}-tuple;"
                        " expected (args, state) or (args, state, branch)"
                    )
                if target.__class__ is not Rec and not isinstance(target, Rec):
                    raise SpecError(
                        f"action {name}{args} produced a non-Rec state:"
                        f" {type(target).__name__}"
                    )
                yield make(
                    name,
                    args if args.__class__ is tuple else tuple(args),
                    target,
                    branch,
                )

    def check_state(self, state: Rec, changed: Optional[frozenset] = None) -> Optional[str]:
        """First violated state invariant, skipping provably-unaffected ones.

        ``changed`` is the exact touched-key superset of ``state``
        relative to an already-checked parent (``None`` = check
        everything).  An invariant with declared ``reads`` disjoint from
        ``changed`` saw the same values on the parent, where it held.
        """
        if changed is None:
            for name, fn, _ in self._inv_entries:
                if not fn(state):
                    return name
            return None
        for name, fn, reads in self._inv_entries:
            if reads is not None and reads.isdisjoint(changed):
                continue
            if not fn(state):
                return name
        return None

    def check_transition(
        self,
        pre: Rec,
        transition: Transition,
        changed: Optional[frozenset] = None,
    ) -> Optional[str]:
        """First violated transition invariant, honoring stutter-safety.

        An edge invariant with declared ``reads`` disjoint from
        ``changed`` holds trivially: the target agrees with ``pre`` on
        every variable the invariant may depend on.
        """
        if changed is None:
            for name, fn, _ in self._tinv_entries:
                if not fn(pre, transition):
                    return name
            return None
        for name, fn, reads in self._tinv_entries:
            if reads is not None and reads.isdisjoint(changed):
                continue
            if not fn(pre, transition):
                return name
        return None

    @staticmethod
    def changed_keys(child: Rec, parent: Rec) -> Optional[frozenset]:
        """Touched top-level keys of ``child`` relative to ``parent``.

        Must be called before the child is encoded/fingerprinted — see
        :func:`repro.core.state.changed_keys`.
        """
        return rec_changed_keys(child, parent)

    # -- delegation -----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Unknown public attributes (spec constants like ``config`` or
        # ``nodes``) resolve against the wrapped spec.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.__dict__["_source"], name)

    def __repr__(self) -> str:
        return f"CompiledSpec({self._source!r})"


def compile_spec(
    spec: Spec, infer_writes: bool = True, por: bool = False
) -> CompiledSpec:
    """Compile ``spec`` into its hot-path form (idempotent per ``por``)."""
    if isinstance(spec, CompiledSpec):
        if spec.por == bool(por):
            return spec
        spec = spec._source
    return CompiledSpec(spec, infer_writes=infer_writes, por=por)


def por_prune_set(spec: Spec) -> FrozenSet[Any]:
    """The action names a POR compile of ``spec`` prunes (may be empty)."""
    return compile_spec(spec, por=True).por_pruned


def maybe_compile(spec: Spec, compiled: bool = True, por: bool = False) -> Spec:
    """Compile ``spec`` unless disabled by flag or environment.

    Partial-order reduction exists only in the compiled pipeline — its
    independence oracle is the compiled ``ActionMeta`` read/write sets —
    so requesting ``por`` while compilation is disabled is an error, not
    a silent fallback.
    """
    if por and (not compiled or compile_disabled()):
        raise SpecError(
            "partial-order reduction needs the compiled pipeline (the"
            " ActionMeta read/write sets are its independence oracle);"
            " drop --no-compile / unset SANDTABLE_NO_COMPILE to use --por"
        )
    if not compiled or compile_disabled():
        return spec
    if isinstance(spec, CompiledSpec) and spec.por == bool(por):
        return spec
    return compile_spec(spec, por=por)
