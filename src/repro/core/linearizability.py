"""A linearizability checker for single-register histories (Xraft-KV#1).

The paper checks linearizability as the safety property of the Xraft
key-value store.  The spec-level transition invariant
(:mod:`repro.specs.raft.xraft_kv`) is a fast online approximation; this
module provides the ground truth: a Wing & Gong style checker that
searches for a legal linearization of a concurrent history of reads and
writes against a sequential register.

Operations carry invocation/completion times (trace step indices).  An
operation with ``completed=None`` is *pending* (the client never got a
response): it may take effect at any point after its invocation, or not
at all — the standard treatment of incomplete operations.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["Operation", "LinearizabilityResult", "check_linearizable"]

WRITE = "write"
READ = "read"

_PENDING = float("inf")


@dataclasses.dataclass(frozen=True)
class Operation:
    """One client operation on the register."""

    client: str
    kind: str  # "write" | "read"
    value: str  # value written, or value returned by the read
    invoked: int
    completed: Optional[int] = None  # None: pending forever

    @property
    def completion(self) -> float:
        return _PENDING if self.completed is None else self.completed

    def describe(self) -> str:
        window = (
            f"[{self.invoked}, {'?' if self.completed is None else self.completed}]"
        )
        return f"{self.client}: {self.kind}({self.value}) {window}"


@dataclasses.dataclass
class LinearizabilityResult:
    ok: bool
    linearization: Optional[List[Operation]] = None

    def describe(self) -> str:
        if not self.ok:
            return "history is NOT linearizable"
        order = ", ".join(f"{op.kind}({op.value})" for op in self.linearization or ())
        return f"linearizable: {order}"


def check_linearizable(
    history: Sequence[Operation], initial: str = ""
) -> LinearizabilityResult:
    """Search for a legal linearization of ``history``.

    Wing & Gong's algorithm with memoization: repeatedly choose a
    *minimal* operation (one whose invocation precedes every other
    remaining operation's completion), apply it to the sequential
    register, and recurse.  Pending operations may also be skipped
    entirely (the request may never have taken effect).
    """
    operations = tuple(history)
    seen: set = set()

    def minimal(remaining: FrozenSet[int]) -> List[int]:
        earliest_completion = min(
            (operations[i].completion for i in remaining), default=_PENDING
        )
        return [
            i for i in remaining if operations[i].invoked <= earliest_completion
        ]

    def search(
        remaining: FrozenSet[int], state: str, chosen: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        if not remaining:
            return chosen
        key = (remaining, state)
        if key in seen:
            return None
        seen.add(key)
        for index in minimal(remaining):
            op = operations[index]
            if op.kind == WRITE:
                result = search(remaining - {index}, op.value, chosen + (index,))
                if result is not None:
                    return result
            else:
                if op.value == state:
                    result = search(remaining - {index}, state, chosen + (index,))
                    if result is not None:
                        return result
            # A pending operation may simply never take effect.
            if op.completed is None:
                result = search(remaining - {index}, state, chosen)
                if result is not None:
                    return result
        return None

    order = search(frozenset(range(len(operations))), initial, ())
    if order is None:
        return LinearizabilityResult(False)
    return LinearizabilityResult(True, [operations[i] for i in order])
