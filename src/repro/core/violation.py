"""Invariant-violation reports produced by exploration."""

from __future__ import annotations

import dataclasses
from .trace import Trace

__all__ = ["Violation"]


@dataclasses.dataclass
class Violation:
    """A safety-property violation with its minimal triggering trace.

    ``invariant`` names the violated property; ``trace`` is the event
    sequence that reaches the violating state (for BFS this is a
    minimal-depth counterexample, §5.1.1).  ``kind`` distinguishes state
    invariants from transition invariants.
    """

    invariant: str
    trace: Trace
    kind: str = "state"
    detail: str = ""

    @property
    def depth(self) -> int:
        return self.trace.depth

    def describe(self) -> str:
        header = f"violation of {self.invariant} ({self.kind}) at depth {self.depth}"
        if self.detail:
            header += f": {self.detail}"
        return header + "\n" + self.trace.summary()

    def __repr__(self) -> str:
        return f"Violation({self.invariant!r}, depth={self.depth})"
