"""The specification DSL: state machines for model checking.

A specification (the analogue of a TLA+ module, §3.1 of the paper) is a
subclass of :class:`Spec` that provides:

* ``init_states()`` — the set of initial states (each a :class:`Rec` of
  variable name to frozen value);
* ``actions()`` — a list of :class:`Action` objects; each action enumerates
  the transitions enabled in a given state;
* ``invariants()`` — safety properties, either *state* invariants (checked
  on every reached state) or *transition* invariants (checked on every
  edge; used for monotonicity-style properties without polluting the state
  with history variables);
* ``state_constraint(state)`` — bounds the explored space (the TLA+
  ``StateConstraint``), typically via an ``eventCounter`` variable.

Constants instantiate the model (number of nodes, workload values, budget
constraints); they are plain attributes on the spec instance.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from .state import Rec

__all__ = [
    "Transition",
    "Action",
    "Invariant",
    "TransitionInvariant",
    "WeakFairness",
    "Spec",
    "SpecError",
]


class SpecError(Exception):
    """Raised for malformed specifications."""


@dataclasses.dataclass(frozen=True)
class Transition:
    """One enabled transition: an action firing with concrete arguments."""

    action: str
    args: Tuple[Any, ...]
    target: Rec
    branch: str = ""

    @property
    def label(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        suffix = f" [{self.branch}]" if self.branch else ""
        return f"{self.action}({rendered}){suffix}"


class Action:
    """A named transition relation.

    ``fn(state)`` must be a generator yielding ``(args, next_state)`` or
    ``(args, next_state, branch)`` tuples for every way the action is
    enabled in ``state``.  The optional ``branch`` string tags which branch
    of the action body fired; the random-walk explorer aggregates branch
    tags into the branch-coverage metric used by constraint ranking
    (Algorithm 1).
    """

    __slots__ = ("name", "fn", "kind", "reads", "writes", "guard")

    def __init__(
        self,
        name: str,
        fn: Callable[[Rec], Iterable[tuple]],
        kind: str = "internal",
        reads: Optional[Iterable[Any]] = None,
        writes: Optional[Iterable[Any]] = None,
        guard: Optional[Callable[[Rec], bool]] = None,
    ):
        self.name = name
        self.fn = fn
        # ``kind`` classifies the node-level event for event-diversity
        # metrics and trace conversion: one of "message", "timeout",
        # "client", "failure", "internal".
        self.kind = kind
        # Optional top-level read/write sets over state variables:
        # ``reads`` — variables the body inspects; ``writes`` — variables
        # any yielded successor may rebind.  Declared sets feed the
        # compiled pipeline's metadata (and, later, partial-order
        # reduction); when absent, ``compile_spec`` infers writes by
        # observing successor deltas.
        self.reads = frozenset(reads) if reads is not None else None
        self.writes = frozenset(writes) if writes is not None else None
        # Optional cheap enabling predicate: when ``guard(state)`` is
        # False the body provably yields nothing, so the compiled
        # successor loop skips the generator entirely.
        self.guard = guard

    def transitions(self, state: Rec) -> Iterator[Transition]:
        for item in self.fn(state):
            if len(item) == 2:
                args, target = item
                branch = ""
            elif len(item) == 3:
                args, target, branch = item
            else:
                raise SpecError(
                    f"action {self.name} yielded a {len(item)}-tuple;"
                    " expected (args, state) or (args, state, branch)"
                )
            if not isinstance(target, Rec):
                raise SpecError(
                    f"action {self.name}{args} produced a non-Rec state:"
                    f" {type(target).__name__}"
                )
            yield Transition(self.name, tuple(args), target, branch)

    def __repr__(self) -> str:
        return f"Action({self.name!r}, kind={self.kind!r})"


class Invariant:
    """A state invariant: ``fn(state) -> bool`` must hold on every state.

    ``reads`` optionally declares the top-level state variables the
    predicate depends on.  Declaring it asserts that ``fn(state)`` is a
    pure function of exactly those variables; the compiled checker then
    skips the invariant on successors that provably left every declared
    variable untouched (see :mod:`repro.core.compile`).
    """

    __slots__ = ("name", "fn", "reads")

    def __init__(
        self,
        name: str,
        fn: Callable[[Rec], bool],
        reads: Optional[Iterable[Any]] = None,
    ):
        self.name = name
        self.fn = fn
        self.reads = frozenset(reads) if reads is not None else None

    def holds(self, state: Rec) -> bool:
        return bool(self.fn(state))

    def __repr__(self) -> str:
        return f"Invariant({self.name!r})"


class TransitionInvariant:
    """An edge invariant: ``fn(pre, transition) -> bool`` on every edge.

    Used for properties over state *changes* — e.g. "commit index is
    monotonic" — which TLA+ specs express with history variables.  Checking
    them on edges keeps the reachable state space smaller.

    ``reads`` optionally declares top-level state variables with a
    *stutter-safety* contract: whenever the transition's target agrees
    with the pre-state on every declared variable, the invariant must
    hold trivially.  Monotonicity properties satisfy this by
    construction (an unchanged variable cannot decrease); declaring
    ``reads`` lets the compiled checker skip the edge check for
    transitions that touch none of the declared variables.
    """

    __slots__ = ("name", "fn", "reads")

    def __init__(
        self,
        name: str,
        fn: Callable[[Rec, Transition], bool],
        reads: Optional[Iterable[Any]] = None,
    ):
        self.name = name
        self.fn = fn
        self.reads = frozenset(reads) if reads is not None else None

    def holds(self, pre: Rec, transition: Transition) -> bool:
        return bool(self.fn(pre, transition))

    def __repr__(self) -> str:
        return f"TransitionInvariant({self.name!r})"


@dataclasses.dataclass(frozen=True)
class WeakFairness:
    """A weak-fairness declaration over a set of actions (TLA+ ``WF_v``).

    An infinite behavior is *fair* with respect to this declaration when
    the named actions either fire infinitely often or are disabled
    infinitely often — a scheduler may not keep a continuously-enabled
    fair action waiting forever.  Over a lasso counterexample (see
    :mod:`repro.temporal`) this reduces to a per-cycle check: some cycle
    edge fires one of ``actions``, or some cycle state has them all
    disabled.

    ``enabled``, when given, overrides the default enabledness test
    (``spec.successors`` restricted to ``actions`` yields at least one
    transition).  Use it for specs whose budget counters live outside
    the action guards, so budget exhaustion reads as "disabled" rather
    than leaving the fairness obligation dangling.  Actions named here
    that the spec does not define (optional machinery such as UDP
    duplication) count as disabled.
    """

    name: str
    actions: frozenset
    enabled: Optional[Callable[[Rec], bool]] = None

    @staticmethod
    def of(name: str, *actions: str, enabled: Optional[Callable[[Rec], bool]] = None) -> "WeakFairness":
        return WeakFairness(name, frozenset(actions), enabled)


class Spec:
    """Base class for specifications.

    Subclasses override :meth:`init_states`, :meth:`actions` and
    :meth:`invariants`, and may override :meth:`state_constraint` and
    :meth:`symmetry_sets`.
    """

    name: str = "spec"

    #: Optional declaration of the top-level state variables an
    #: overridden :meth:`state_constraint` reads.  ``None`` means
    #: undeclared — a spec that overrides the constraint without
    #: declaring its reads is treated as reading everything, which
    #: blocks partial-order reduction (see
    #: :meth:`repro.core.compile.CompiledSpec._compute_prune_set`).
    constraint_reads: Optional[Sequence[Any]] = None

    #: Lazily-built tuple of this spec's actions; ``successors`` and
    #: ``action_by_name`` read it instead of calling :meth:`actions` per
    #: state / per lookup.  Class-level ``None`` doubles as the unset
    #: marker so subclasses need no cooperation from their ``__init__``.
    _action_cache: Optional[Tuple[Action, ...]] = None

    # -- the state machine ---------------------------------------------------

    def init_states(self) -> Iterable[Rec]:
        raise NotImplementedError

    def actions(self) -> Sequence[Action]:
        raise NotImplementedError

    def invariants(self) -> Sequence[Invariant]:
        return ()

    def transition_invariants(self) -> Sequence[TransitionInvariant]:
        return ()

    def state_constraint(self, state: Rec) -> bool:
        """Return False to prune ``state``'s successors from exploration."""
        return True

    def symmetry_sets(self) -> Sequence[Tuple[Any, ...]]:
        """Sets of interchangeable constants (node ids, workload values).

        Permuting the members of any one set must not affect whether an
        action satisfies an invariant (§3.3).  The explorer canonicalizes
        states under these permutations when symmetry reduction is on.
        """
        return ()

    def weak_fairness(self) -> Sequence[WeakFairness]:
        """Weak-fairness declarations assumed by temporal properties.

        The lasso finder (:mod:`repro.temporal`) only reports cycles
        that are fair with respect to every declared set; an empty
        declaration (the default) means every cycle — including
        stuttering at a state the exploration never expanded — counts,
        so specs that bound their state space should declare fairness
        over their progress actions.  Predicates used in temporal
        properties must be symmetric under :meth:`symmetry_sets`, like
        invariants.
        """
        return ()

    # -- conveniences ---------------------------------------------------------

    def cached_actions(self) -> Tuple[Action, ...]:
        """This spec's actions, materialized once and reused.

        Specs whose action list genuinely changes (none in-tree do) must
        call :meth:`refresh_actions` after mutating it.
        """
        actions = self._action_cache
        if actions is None:
            actions = self._action_cache = tuple(self.actions())
        return actions

    def refresh_actions(self) -> None:
        """Invalidate the cached action list (for dynamic specs)."""
        self._action_cache = None

    def successors(self, state: Rec) -> Iterator[Transition]:
        """All transitions enabled in ``state``, across all actions."""
        for action in self.cached_actions():
            yield from action.transitions(state)

    def action_by_name(self, name: str) -> Action:
        for action in self.cached_actions():
            if action.name == name:
                return action
        available = ", ".join(sorted(a.name for a in self.cached_actions()))
        raise SpecError(
            f"spec {self.name!r} has no action named {name!r};"
            f" available actions: {available or '(none)'}"
        )

    def check_state(self, state: Rec, changed: Optional[frozenset] = None) -> Optional[str]:
        """Return the name of the first violated state invariant, if any.

        ``changed`` (the touched top-level keys relative to an
        already-checked parent) is accepted for interface compatibility
        with the compiled pipeline; the interpreted path ignores it and
        always checks every invariant.
        """
        for inv in self.invariants():
            if not inv.holds(state):
                return inv.name
        return None

    def check_transition(
        self,
        pre: Rec,
        transition: Transition,
        changed: Optional[frozenset] = None,
    ) -> Optional[str]:
        """Return the first violated transition invariant, if any.

        ``changed`` is accepted for interface compatibility with the
        compiled pipeline and ignored here — see :meth:`check_state`.
        """
        for inv in self.transition_invariants():
            if not inv.holds(pre, transition):
                return inv.name
        return None

    def describe(self) -> dict:
        """Static metrics: variable/action/invariant counts (Table 1)."""
        init = next(iter(self.init_states()))
        return {
            "name": self.name,
            "variables": len(init),
            "actions": len(self.actions()),
            "invariants": len(self.invariants()) + len(self.transition_invariants()),
        }


def enumerate_transitions(spec: Spec, state: Rec) -> List[Transition]:
    """Materialize all enabled transitions of ``state`` (helper for tests)."""
    return list(spec.successors(state))
