"""Approximate liveness checking (§3.1).

Safety properties say bad things never happen; liveness properties say
good things eventually do.  Following the paper (which approximates
liveness via safety, as MaceMC and MoDist do), this module measures
*progress rates*: the fraction of bounded random walks in which an
"eventually P" predicate becomes true, together with a witness walk
where it never did.

The comparative form is the useful oracle: a liveness bug (RaftOS#4's
"cluster fails to make progress", WRaft#3's lagging follower) shows up
as a collapse of the progress rate relative to the fixed system under
identical budgets — without the false positives a hard "P must happen"
check would produce on budget-starved walks.

A collapsed rate is still only a *suspicion*.  ``measure_progress(...,
confirm=True)`` escalates it into an exact search: a bounded BFS census
plus lasso detection over the explored graph (:mod:`repro.temporal`).
The escalation honors the spec's weak-fairness declarations, so a walk
that merely ran out of budget — fair actions still enabled at its final
state — confirms as "no fair cycle" instead of a false counterexample.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections import Counter
from typing import Any, Callable, Optional, Tuple

from .engine import SearchStats, StopReason, action_kinds
from .simulation import random_walk
from .spec import Spec
from .state import Rec
from .trace import Trace

__all__ = [
    "LivenessProperty",
    "LivenessStats",
    "measure_progress",
    "compare_progress",
    "leader_elected",
    "entry_committed",
    "quorum_commit",
]


@dataclasses.dataclass(frozen=True)
class LivenessProperty:
    """An "eventually P" property over specification states."""

    name: str
    predicate: Callable[[Rec], bool]

    def achieved_in(self, trace: Trace) -> bool:
        return any(self.predicate(state) for state in trace.states())


@dataclasses.dataclass
class LivenessStats:
    """Progress measurements for one property over a batch of walks."""

    property: LivenessProperty
    walks: int
    achieved: int
    failure_example: Optional[Trace] = None
    #: how many walks ended for each unified :class:`StopReason`
    stop_reasons: Counter = dataclasses.field(default_factory=Counter)
    #: unified batch stats, comparable with the other exploration modes
    stats: Optional[SearchStats] = None
    #: True when a ``confirm=`` escalation ran an exact lasso search
    confirm_attempted: bool = False
    #: the exact counterexample the escalation found, if any
    #: (a :class:`repro.temporal.LassoTrace`)
    lasso: Optional[Any] = None

    @property
    def rate(self) -> float:
        return self.achieved / self.walks if self.walks else 0.0

    @property
    def confirmed(self) -> bool:
        """The collapsed rate was escalated and proven: a fair lasso exists."""
        return self.lasso is not None

    def describe(self) -> str:
        base = (
            f"{self.property.name}: achieved in {self.achieved}/{self.walks}"
            f" walks ({self.rate:.1%})"
        )
        if self.confirmed:
            return f"{base}; CONFIRMED — {self.lasso.describe()}"
        if self.confirm_attempted:
            return f"{base}; no fair cycle in the explored graph"
        return base


def measure_progress(
    spec: Spec,
    prop: LivenessProperty,
    n_walks: int = 200,
    max_depth: int = 40,
    seed: int = 0,
    confirm: bool = False,
    confirm_below: float = 0.05,
    confirm_max_states: Optional[int] = 20_000,
) -> LivenessStats:
    """Measure how often ``prop`` is eventually achieved in random walks.

    With ``confirm=True``, a rate at or below ``confirm_below`` is
    escalated into an exact lasso search over a bounded BFS census
    (``confirm_max_states`` states): the returned stats then carry
    ``lasso`` (a definite counterexample honoring the spec's
    weak-fairness declarations) or record that no fair cycle exists in
    the explored graph (``confirm_attempted`` with ``lasso is None``).
    """
    rng = random.Random(seed)
    achieved = 0
    failure: Optional[Trace] = None
    exhausted_failure: Optional[Trace] = None
    # Per-batch hoists shared with the simulation module: the init-state
    # list and action-kind map are walk-invariant.
    inits = list(spec.init_states())
    kinds = action_kinds(spec)
    stop_reasons: Counter = Counter()
    started = time.monotonic()
    total_steps = 0
    deepest = 0
    for _ in range(n_walks):
        walk = random_walk(
            spec,
            rng,
            max_depth=max_depth,
            check_invariants=False,
            init_states=inits,
            event_kinds=kinds,
        )
        stop_reasons[str(walk.terminated)] += 1
        total_steps += walk.depth
        deepest = max(deepest, walk.depth)
        if prop.achieved_in(walk.trace):
            achieved += 1
            continue
        if failure is None:
            failure = walk.trace
        if exhausted_failure is None and walk.terminated in (
            StopReason.DEADLOCK,
            StopReason.CONSTRAINT,
        ):
            # The budget was fully spent and P still never held — the
            # most suspicious kind of failing walk; prefer it as the witness.
            exhausted_failure = walk.trace
    stats = SearchStats(
        distinct_states=total_steps + n_walks,
        transitions=total_steps,
        max_depth=deepest,
        elapsed=time.monotonic() - started,
        walks=n_walks,
    )
    measured = LivenessStats(
        prop,
        n_walks,
        achieved,
        exhausted_failure or failure,
        stop_reasons=stop_reasons,
        stats=stats,
    )
    if confirm and measured.rate <= confirm_below:
        # Imported here: repro.temporal sits above core in the layering.
        from repro.temporal import eventually, explore_and_check

        results, _search = explore_and_check(
            spec,
            [eventually(prop.predicate, name=prop.name)],
            max_states=confirm_max_states,
        )
        measured.confirm_attempted = True
        measured.lasso = results[0].lasso
    return measured


def compare_progress(
    fixed: Spec,
    buggy: Spec,
    prop: LivenessProperty,
    n_walks: int = 200,
    max_depth: int = 40,
    seed: int = 0,
) -> Tuple[LivenessStats, LivenessStats]:
    """Progress rates of the fixed and the buggy variant side by side.

    A genuine liveness bug collapses the buggy rate far below the fixed
    rate under the same budgets.
    """
    return (
        measure_progress(fixed, prop, n_walks, max_depth, seed),
        measure_progress(buggy, prop, n_walks, max_depth, seed),
    )


# ---------------------------------------------------------------------------
# ready-made properties for the Raft-family specs
# ---------------------------------------------------------------------------


def leader_elected(nodes) -> LivenessProperty:
    """Eventually some node becomes leader."""
    return LivenessProperty(
        "EventuallyLeaderElected",
        lambda state: any(state["role"][n] == "Leader" for n in nodes),
    )


def entry_committed(nodes, index: int = 1) -> LivenessProperty:
    """Eventually some node's commit index reaches ``index``."""
    return LivenessProperty(
        f"EventuallyCommitted(:{index})",
        lambda state: any(state["commitIndex"][n] >= index for n in nodes),
    )


def quorum_commit(nodes, index: int = 1) -> LivenessProperty:
    """Eventually a majority of nodes commit up to ``index``."""
    quorum = len(nodes) // 2 + 1

    def predicate(state: Rec) -> bool:
        return sum(1 for n in nodes if state["commitIndex"][n] >= index) >= quorum

    return LivenessProperty(f"EventuallyQuorumCommitted(:{index})", predicate)
