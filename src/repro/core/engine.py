"""The shared exploration kernel behind every exploration mode.

All four exploration modes — exhaustive BFS (§3.3), random-walk
simulation (§3.2, Algorithm 1), guided scenario replay, and the
random-walk batches behind approximate liveness (§3.1) — are one step
loop: pop a pending state, prune or stop on bounds, enumerate enabled
transitions, check transition/state invariants, build traces and
:class:`~repro.core.violation.Violation` objects, and account stats.
This module owns that loop once, with three pluggable seams (the same
decomposition TLC uses for its BFS/simulation modes):

* :class:`FrontierStrategy` — which states are pending and which
  successors are taken.  :class:`FIFOFrontier` explores every successor
  breadth-first; :class:`RandomWalkFrontier` follows one uniformly
  random successor per step; :class:`ScenarioFrontier` follows the
  transition matched by the next scenario pick.
* :class:`StateStore` — the visited-fingerprint set and parent map used
  for stateful deduplication and counterexample reconstruction.  The
  interface is deliberately narrow (``seen``/``record``/``chain``) so
  sharded, parallel, or disk-backed stores can slot in behind it.
* :class:`StepChecker` — invariant evaluation and violation
  construction, including lazy trace building via the strategy.

Every run produces a :class:`SearchResult` carrying the unified
:class:`SearchStats` counters and a :class:`StopReason`, so BFS,
simulation, scenario, and liveness runs report comparable states/sec,
depth, and stop-reason numbers.
"""

from __future__ import annotations

import dataclasses
import enum
import sys
import threading
import time
from array import array
from bisect import bisect_left
from collections import deque
from heapq import merge as _heap_merge
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.metrics import ACTION_FIRES, CODEC_CHUNKS, SIZE_BOUNDS, STORE_BYTES
from .spec import Spec, Transition
from .state import Rec, changed_keys, codec_stats, detach, fingerprint
from .trace import PendingTrace, Trace, TraceStep
from .violation import Violation

__all__ = [
    "StopReason",
    "SearchStats",
    "SearchResult",
    "StateStore",
    "InMemoryStateStore",
    "DictStore",
    "CompactStore",
    "ShardedStateStore",
    "FingerprintOnlyStore",
    "TracelessStoreError",
    "NullStateStore",
    "StepChecker",
    "FrontierStrategy",
    "FIFOFrontier",
    "RandomWalkFrontier",
    "ScenarioFrontier",
    "ScenarioError",
    "ExplorationEngine",
    "action_kinds",
    "find_matching_step",
    "reconstruct_trace",
]


if hasattr(enum, "StrEnum"):  # Python >= 3.11
    _StrEnum = enum.StrEnum
else:  # pragma: no cover - fallback for older interpreters

    class _StrEnum(str, enum.Enum):
        __str__ = str.__str__
        __format__ = str.__format__


class StopReason(_StrEnum):
    """Why an exploration run stopped.

    Members compare (and hash) equal to their string values, so code
    written against the historical string reasons — ``"max_states"``,
    ``"deadlock"``, … — keeps working unchanged.
    """

    #: the frontier emptied with every reachable state expanded (BFS)
    EXHAUSTED = "exhausted"
    #: an invariant violation stopped the run
    VIOLATION = "violation"
    #: the distinct-state budget was reached
    MAX_STATES = "max_states"
    #: the depth bound was reached (random walks)
    MAX_DEPTH = "max_depth"
    #: the wall-clock budget expired
    TIME_BUDGET = "time_budget"
    #: no transition was enabled (random walks)
    DEADLOCK = "deadlock"
    #: the state constraint stopped a walk
    CONSTRAINT = "constraint"
    #: a guided scenario ran through all of its picks
    COMPLETE = "complete"


@dataclasses.dataclass
class SearchStats:
    """Unified counters for one exploration run, whatever the mode.

    ``distinct_states`` counts deduplicated states for stateful (BFS)
    runs and visited states for stateless (walk/scenario) runs;
    ``walks`` is nonzero only for batched random-walk runs.
    """

    distinct_states: int = 0
    transitions: int = 0
    max_depth: int = 0
    pruned: int = 0
    elapsed: float = 0.0
    walks: int = 0

    @property
    def states_per_second(self) -> float:
        if self.elapsed <= 0:
            return float("inf")
        return self.distinct_states / self.elapsed

    def describe(self) -> str:
        parts = [
            f"{self.distinct_states} states",
            f"{self.transitions} transitions",
            f"depth {self.max_depth}",
            f"{self.states_per_second:.0f}/s",
        ]
        if self.walks:
            parts.append(f"{self.walks} walks")
        return ", ".join(parts)


@dataclasses.dataclass
class SearchResult:
    """Outcome of one engine run: stats, stop reason, first violation."""

    stats: SearchStats
    violation: Optional[Violation] = None
    exhausted: bool = False
    stop_reason: StopReason = StopReason.EXHAUSTED

    @property
    def found_violation(self) -> bool:
        return self.violation is not None

    def describe(self) -> str:
        return f"{self.stats.describe()}, stop: {self.stop_reason}"


# ---------------------------------------------------------------------------
# state stores
# ---------------------------------------------------------------------------

# Coarse per-object heap costs (64-bit CPython) behind the
# ``store.bytes_per_state`` gauge: a 64-bit int object and a
# ``(parent, action)`` 2-tuple.  Container hash tables are measured with
# ``sys.getsizeof``; only the per-entry payloads are estimated.
_INT_BYTES = 32
_TUPLE2_BYTES = 72


class TracelessStoreError(RuntimeError):
    """Trace reconstruction was asked of a store that keeps no parent edges.

    Fingerprint-only (``--fast``) stores answer membership queries but
    cannot walk a parent chain; counterexamples come from bounded
    re-search (a full-store re-exploration capped at the violation
    depth) instead.
    """


class StateStore:
    """Visited-fingerprint set plus parent map.

    The contract is the minimum stateful exploration needs: membership
    (``seen``), insertion with provenance (``record``/``record_init``),
    and parent-chain walking for counterexample reconstruction
    (``chain``/``init_state``).  Implementations may shard, spill to
    disk, or answer ``seen`` probabilistically (at the cost of losing
    counterexamples) — the engine only ever goes through this interface.

    ``traceless`` stores keep no parent edges at all: ``chain`` /
    ``init_state`` raise :class:`TracelessStoreError` and violation
    traces are deferred to bounded re-search.
    """

    #: True for stores that keep no parent edges (fingerprint-only mode)
    traceless = False

    def seen(self, fp: Any) -> bool:
        raise NotImplementedError

    def estimated_bytes(self) -> Optional[int]:
        """Estimated resident bytes of the store, or ``None`` if unknown.

        Drives the ``store.bytes_per_state`` gauge; estimates are coarse
        (container tables measured, per-entry payloads modeled) but
        monotone with real usage.
        """
        return None

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        """Record ``fp`` as newly visited via ``action`` from ``parent_fp``."""
        raise NotImplementedError

    def record_init(self, fp: Any, state: Rec) -> None:
        """Record an initial state (a parent-chain root)."""
        raise NotImplementedError

    def init_state(self, fp: Any) -> Rec:
        """Return the stored initial state for a root fingerprint."""
        raise NotImplementedError

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        """The ``(fingerprint, action)`` path from a root to ``fp``, root first."""
        raise NotImplementedError

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        """All recorded ``(fp, parent_fp, action)`` edges (roots: parent None).

        The export seam for merging stores: the parallel driver collects
        each worker shard's edges into one store to reconstruct
        counterexample traces that cross shard boundaries.
        """
        raise NotImplementedError

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        """All recorded ``(fp, initial_state)`` roots."""
        raise NotImplementedError

    def __contains__(self, fp: Any) -> bool:
        return self.seen(fp)

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryStateStore(StateStore):
    """The default dict-backed store: a couple of machine words per state."""

    __slots__ = ("_parents", "_inits")

    def __init__(self) -> None:
        # fingerprint -> (parent fingerprint or None, action name)
        self._parents: Dict[Any, Tuple[Optional[Any], str]] = {}
        self._inits: Dict[Any, Rec] = {}

    def seen(self, fp: Any) -> bool:
        return fp in self._parents

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        self._parents[fp] = (parent_fp, action)

    def record_init(self, fp: Any, state: Rec) -> None:
        self._parents[fp] = (None, "<init>")
        self._inits[fp] = state

    def init_state(self, fp: Any) -> Rec:
        return self._inits[fp]

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        chain: List[Tuple[Any, str]] = []
        cursor: Optional[Any] = fp
        while cursor is not None:
            parent, action = self._parents[cursor]
            chain.append((cursor, action))
            cursor = parent
        chain.reverse()
        return chain

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        for fp, (parent, action) in self._parents.items():
            yield fp, parent, action

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        yield from self._inits.items()

    def estimated_bytes(self) -> Optional[int]:
        return (
            sys.getsizeof(self._parents)
            + sys.getsizeof(self._inits)
            + len(self._parents) * (_INT_BYTES + _TUPLE2_BYTES)
        )

    def __len__(self) -> int:
        return len(self._parents)


#: Historical name for the dict-backed store, matching TLC's naming.
DictStore = InMemoryStateStore


class CompactStore(StateStore):
    """Fingerprints and parent edges only — no state retention past roots.

    Where :class:`InMemoryStateStore` keeps one ``(parent, action)``
    tuple object per state, this store keeps two int-to-int dict entries
    with action names interned to small ids: no per-state tuple
    allocation, and the per-state cost is independent of action-name
    length.  The per-shard building block of :class:`ShardedStateStore`
    and the worker-local store of :mod:`repro.core.parallel`.
    """

    __slots__ = ("_parents", "_action_of", "_action_ids", "_action_names", "_inits")

    _ROOT_ACTION = "<init>"

    def __init__(self) -> None:
        # fingerprint -> parent fingerprint (None for roots)
        self._parents: Dict[Any, Optional[Any]] = {}
        # fingerprint -> interned action id (roots have no entry)
        self._action_of: Dict[Any, int] = {}
        self._action_ids: Dict[str, int] = {}
        self._action_names: List[str] = []
        self._inits: Dict[Any, Rec] = {}

    def seen(self, fp: Any) -> bool:
        return fp in self._parents

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        aid = self._action_ids.get(action)
        if aid is None:
            aid = self._action_ids[action] = len(self._action_names)
            self._action_names.append(action)
        self._parents[fp] = parent_fp
        self._action_of[fp] = aid

    def record_init(self, fp: Any, state: Rec) -> None:
        self._parents[fp] = None
        self._inits[fp] = state

    def init_state(self, fp: Any) -> Rec:
        return self._inits[fp]

    def _action_name(self, fp: Any) -> str:
        aid = self._action_of.get(fp)
        return self._ROOT_ACTION if aid is None else self._action_names[aid]

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        chain: List[Tuple[Any, str]] = []
        cursor: Optional[Any] = fp
        while cursor is not None:
            chain.append((cursor, self._action_name(cursor)))
            cursor = self._parents[cursor]
        chain.reverse()
        return chain

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        for fp, parent in self._parents.items():
            yield fp, parent, self._action_name(fp)

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        yield from self._inits.items()

    def estimated_bytes(self) -> Optional[int]:
        # Fingerprint keys are shared between the two dicts and parent
        # values alias keys; action ids are interned small ints.
        return (
            sys.getsizeof(self._parents)
            + sys.getsizeof(self._action_of)
            + len(self._parents) * _INT_BYTES
        )

    def __len__(self) -> int:
        return len(self._parents)


class ShardedStateStore(StateStore):
    """A store partitioned by fingerprint bits with per-shard locks.

    Fingerprints are canonical 64-bit ints (:func:`repro.core.state.fingerprint`),
    so a fixed bit-slice partitions states uniformly and *identically in
    every process*.  Each shard is an independent :class:`CompactStore`
    guarded by its own lock: concurrent expanders contend only when they
    touch the same shard, the same partitioning TLC uses for its
    fingerprint-set workers.  ``shards`` is rounded up to a power of two.
    """

    __slots__ = ("_shards", "_locks", "_mask")

    def __init__(self, shards: int = 16) -> None:
        n = 1
        while n < max(1, shards):
            n <<= 1
        self._mask = n - 1
        self._shards = [CompactStore() for _ in range(n)]
        self._locks = [threading.Lock() for _ in range(n)]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, fp: Any) -> int:
        """The shard index owning ``fp`` (stable across processes)."""
        if isinstance(fp, int):
            return fp & self._mask
        if isinstance(fp, bytes):
            return int.from_bytes(fp[:8], "big") & self._mask
        return hash(fp) & self._mask

    def seen(self, fp: Any) -> bool:
        index = self.shard_of(fp)
        with self._locks[index]:
            return self._shards[index].seen(fp)

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        index = self.shard_of(fp)
        with self._locks[index]:
            self._shards[index].record(fp, parent_fp, action)

    def record_init(self, fp: Any, state: Rec) -> None:
        index = self.shard_of(fp)
        with self._locks[index]:
            self._shards[index].record_init(fp, state)

    def init_state(self, fp: Any) -> Rec:
        index = self.shard_of(fp)
        with self._locks[index]:
            return self._shards[index].init_state(fp)

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        # Walks edges across shards, locking one hop at a time.
        chain: List[Tuple[Any, str]] = []
        cursor: Optional[Any] = fp
        while cursor is not None:
            index = self.shard_of(cursor)
            with self._locks[index]:
                shard = self._shards[index]
                chain.append((cursor, shard._action_name(cursor)))
                cursor = shard._parents[cursor]
        chain.reverse()
        return chain

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                snapshot = list(shard.edges())
            yield from snapshot

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                snapshot = list(shard.roots())
            yield from snapshot

    def estimated_bytes(self) -> Optional[int]:
        total = 0
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                total += shard.estimated_bytes()
        return total

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)


class FingerprintOnlyStore(StateStore):
    """A flat 64-bit fingerprint set: membership only, no parent edges.

    The ``--fast`` store, after TLC's fingerprint set and Specl's
    ``--fast`` mode: each distinct state costs 8 bytes of payload plus
    amortized set overhead (measured ~10-12 bytes/state at 10⁶ states),
    against ~100+ for edge-keeping stores.  Recent fingerprints live in
    a bounded Python set; every ``spill_threshold`` insertions the set
    is sorted into an ``array('Q')`` segment, and adjacent segments are
    merged geometrically so membership stays a set probe plus binary
    searches over O(log n) sorted arrays.

    Tradeoffs, by design:

    * ``chain``/``init_state`` raise :class:`TracelessStoreError` —
      counterexample traces come from bounded re-search instead;
    * fingerprints must be 64-bit non-negative ints (the canonical
      :func:`repro.core.state.fingerprint`); 128-bit strong
      fingerprints are rejected;
    * callers must not re-record a fingerprint that is already ``seen``
      (the engine and checkpoint restore both honor this), so ``len``
      is exact without a second membership pass.

    ``edges()`` yields pseudo-edges ``(fp, None, "<fp>")`` purely as the
    checkpoint dump/restore seam; ``roots()`` is empty.
    """

    __slots__ = ("_recent", "_segments", "spill_threshold")

    traceless = True

    #: pseudo-action carried by checkpoint dump edges
    _FP_ACTION = "<fp>"

    DEFAULT_SPILL = 1 << 15

    def __init__(self, spill_threshold: int = DEFAULT_SPILL) -> None:
        if spill_threshold < 1:
            raise ValueError("spill_threshold must be positive")
        self.spill_threshold = spill_threshold
        self._recent: set = set()
        # sorted 'Q' arrays, oldest (largest) first, sizes ~doubling
        self._segments: List[array] = []

    def seen(self, fp: Any) -> bool:
        if fp in self._recent:
            return True
        for seg in self._segments:
            index = bisect_left(seg, fp)
            if index < len(seg) and seg[index] == fp:
                return True
        return False

    def _add(self, fp: Any) -> None:
        if not isinstance(fp, int) or fp < 0 or fp >> 64:
            raise TypeError(
                "FingerprintOnlyStore needs canonical 64-bit int fingerprints,"
                f" got {fp!r}; strong (128-bit) fingerprints keep their bytes"
                " form and are not supported in fast mode"
            )
        recent = self._recent
        recent.add(fp)
        if len(recent) >= self.spill_threshold:
            self._spill()

    def _spill(self) -> None:
        if not self._recent:
            return
        segments = self._segments
        segments.append(array("Q", sorted(self._recent)))
        self._recent.clear()
        # Geometric merge: fold the new segment into its predecessor
        # while the predecessor is no more than twice its size, keeping
        # segment count logarithmic in the total state count.
        while len(segments) >= 2 and len(segments[-2]) <= 2 * len(segments[-1]):
            newer = segments.pop()
            older = segments.pop()
            segments.append(array("Q", _heap_merge(older, newer)))

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        self._add(fp)

    def record_init(self, fp: Any, state: Rec) -> None:
        self._add(fp)

    def init_state(self, fp: Any) -> Rec:
        raise TracelessStoreError(
            "fingerprint-only store keeps no initial states; use bounded"
            " re-search to reconstruct counterexamples"
        )

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        raise TracelessStoreError(
            "fingerprint-only store keeps no parent edges; use bounded"
            " re-search to reconstruct counterexamples"
        )

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        action = self._FP_ACTION
        for fp in self._recent:
            yield fp, None, action
        for seg in self._segments:
            for fp in seg:
                yield fp, None, action

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        return iter(())

    def estimated_bytes(self) -> Optional[int]:
        total = sys.getsizeof(self._recent) + _INT_BYTES * len(self._recent)
        for seg in self._segments:
            total += sys.getsizeof(seg)
        return total

    def __len__(self) -> int:
        return len(self._recent) + sum(len(seg) for seg in self._segments)


class NullStateStore(StateStore):
    """No-op store for stateless modes (random walks, scenarios)."""

    __slots__ = ()

    def seen(self, fp: Any) -> bool:
        return False

    def record(self, fp: Any, parent_fp: Any, action: str) -> None:
        pass

    def record_init(self, fp: Any, state: Rec) -> None:
        pass

    def init_state(self, fp: Any) -> Rec:
        raise KeyError(fp)

    def chain(self, fp: Any) -> List[Tuple[Any, str]]:
        return []

    def edges(self) -> Iterator[Tuple[Any, Optional[Any], str]]:
        return iter(())

    def roots(self) -> Iterator[Tuple[Any, Rec]]:
        return iter(())

    def estimated_bytes(self) -> Optional[int]:
        return 0

    def __len__(self) -> int:
        return 0


# ---------------------------------------------------------------------------
# step checking
# ---------------------------------------------------------------------------


def _step_of(transition: Transition) -> TraceStep:
    return TraceStep(
        transition.action, transition.args, transition.target, transition.branch
    )


class StepChecker:
    """Evaluates invariants and builds :class:`Violation` objects.

    Traces are built lazily — only when a violation is found — through
    ``tracer(pre_fp, step)``, which the engine wires to the active
    strategy (BFS reconstructs from the parent chain; walks and
    scenarios extend their running trace).
    """

    __slots__ = ("spec", "check_invariants", "violations", "tracer")

    def __init__(self, spec: Spec, check_invariants: bool = True):
        self.spec = spec
        self.check_invariants = check_invariants
        self.violations: List[Violation] = []
        self.tracer: Callable[[Any, Optional[TraceStep]], Trace] = (
            lambda fp, step: Trace(Rec())
        )

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def check_state(
        self,
        state: Rec,
        pre_fp: Any,
        transition: Optional[Transition],
        changed: Optional[frozenset] = None,
    ) -> Optional[Violation]:
        """Check state invariants on ``state``, reached via ``transition``.

        ``changed`` — the touched top-level keys relative to an
        already-checked parent — lets a compiled spec skip invariants
        that provably still hold; the interpreted path ignores it.
        """
        if not self.check_invariants:
            return None
        bad = self.spec.check_state(state, changed)
        if bad is None:
            return None
        step = _step_of(transition) if transition is not None else None
        violation = Violation(bad, self.tracer(pre_fp, step), kind="state")
        self.violations.append(violation)
        return violation

    def check_edge(
        self,
        pre: Rec,
        pre_fp: Any,
        transition: Transition,
        changed: Optional[frozenset] = None,
    ) -> Optional[Violation]:
        """Check transition invariants on the edge ``pre -> transition``."""
        if not self.check_invariants:
            return None
        bad = self.spec.check_transition(pre, transition, changed)
        if bad is None:
            return None
        violation = Violation(
            bad, self.tracer(pre_fp, _step_of(transition)), kind="transition"
        )
        self.violations.append(violation)
        return violation


# ---------------------------------------------------------------------------
# trace reconstruction (stateful modes)
# ---------------------------------------------------------------------------


def find_matching_step(
    spec: Spec,
    state: Rec,
    target_fp: Any,
    action_name: str,
    canonical: Optional[Callable[[Rec], Rec]] = None,
    fp_fn: Callable[[Rec], Any] = fingerprint,
) -> Optional[TraceStep]:
    """Find the successor of ``state`` whose canonical fingerprint matches.

    Prefers a transition of the recorded ``action_name``; falls back to
    any fingerprint-matching transition (under symmetry reduction two
    actions can reach the same orbit).
    """
    fallback: Optional[TraceStep] = None
    for transition in spec.successors(state):
        canon = canonical(transition.target) if canonical else transition.target
        if fp_fn(canon) != target_fp:
            continue
        step = _step_of(transition)
        if transition.action == action_name:
            return step
        fallback = fallback or step
    return fallback


def reconstruct_trace(
    spec: Spec,
    store: StateStore,
    fp: Any,
    canonical: Optional[Callable[[Rec], Rec]] = None,
    fp_fn: Callable[[Rec], Any] = fingerprint,
) -> Trace:
    """Reconstruct a trace from an initial state to ``fp``.

    Walks the store's parent chain to collect the fingerprints on the
    path, then re-executes from the initial state, at each step firing
    the successor whose canonical fingerprint matches the next
    fingerprint on the chain.  With symmetry reduction the re-executed
    states may be permuted variants of the stored canonical ones;
    matching on canonical fingerprints keeps the replay on the right
    orbit.  Keeps per-state memory in the store to a couple of machine
    words.
    """
    chain = store.chain(fp)
    init_fp, _ = chain[0]
    state = store.init_state(init_fp)
    trace = Trace(state)
    for target_fp, action_name in chain[1:]:
        step = find_matching_step(spec, state, target_fp, action_name, canonical, fp_fn)
        if step is None:
            raise RuntimeError(
                f"trace reconstruction failed: no successor of depth-{trace.depth}"
                f" state matches fingerprint for action {action_name}"
            )
        trace = trace.extend(step)
        state = step.state
    return trace


# ---------------------------------------------------------------------------
# frontier strategies
# ---------------------------------------------------------------------------


class _SingleSlot:
    """A one-element frontier for single-path modes (walks, scenarios)."""

    __slots__ = ("_node",)

    def __init__(self) -> None:
        self._node: Optional[tuple] = None

    def __bool__(self) -> bool:
        return self._node is not None

    def __len__(self) -> int:
        return 1 if self._node is not None else 0

    def append(self, node: tuple) -> None:
        self._node = node

    def popleft(self) -> tuple:
        node, self._node = self._node, None
        if node is None:
            raise IndexError("pop from empty frontier")
        return node


class FrontierStrategy:
    """Which states are pending, and which successors get taken.

    Subclasses provide a ``frontier`` (anything with ``append``,
    ``popleft`` and truthiness) and override the hooks below.  Class
    flags tell the engine how to treat bounds and bookkeeping:

    * ``dedupe`` — route children through the :class:`StateStore`
      (stateful exploration) instead of revisiting freely;
    * ``stop_on_bound`` — a depth bound or failing state constraint
      terminates the run (walk semantics) rather than pruning the state
      (BFS semantics);
    * ``tracks_steps`` — the strategy maintains a running trace and
      per-step bookkeeping (``on_seed``/``on_transition``/``on_step``);
    * ``check_constraint`` — evaluate the spec's state constraint at all
      (guided scenarios deliberately ignore it).
    """

    name = "frontier"
    dedupe = True
    stop_on_bound = False
    tracks_steps = False
    check_constraint = True

    frontier: Any
    engine: "ExplorationEngine"

    def bind(self, engine: "ExplorationEngine") -> None:
        self.engine = engine

    def initial_states(self, spec: Spec) -> Iterable[Rec]:
        return spec.init_states()

    def choose(
        self, state: Rec, successors: Iterator[Transition]
    ) -> Iterable[Transition]:
        """Select which enabled transitions of ``state`` to take."""
        return successors

    def on_seed(self, state: Rec, fp: Any) -> None:
        pass

    def on_transition(self, transition: Transition) -> None:
        pass

    def on_step(
        self, transition: Transition, child: Rec, child_fp: Any, depth: int
    ) -> None:
        pass

    def trace_to(self, fp: Any, step: Optional[TraceStep] = None) -> Trace:
        """Build the trace to the state fingerprinted ``fp`` (+ ``step``)."""
        raise NotImplementedError

    def empty_reason(self) -> StopReason:
        """The stop reason when the frontier drains without a violation."""
        return StopReason.EXHAUSTED


class _DepthTrackingDeque(deque):
    """A deque that remembers the depth of the last node it popped.

    Traceless runs cannot reconstruct a violation's event sequence, but
    the violation *depth* is known exactly at discovery time: it is the
    depth of the node under expansion (plus one for a step).  Tracking
    it here keeps the engine's hot loop untouched.
    """

    last_depth = 0

    def popleft(self) -> tuple:
        node = deque.popleft(self)
        self.last_depth = node[2]
        return node


class FIFOFrontier(FrontierStrategy):
    """Breadth-first: expand every successor, dedupe through the store.

    Because the search is breadth-first, the first counterexample found
    for any invariant has minimal depth (§5.1.1).  Over a traceless
    store the strategy returns :class:`~repro.core.trace.PendingTrace`
    placeholders (exact depth, no steps) for bounded re-search to
    resolve.
    """

    name = "bfs"
    dedupe = True

    def __init__(self) -> None:
        self.frontier: deque = deque()
        self._traceless = False

    def bind(self, engine: "ExplorationEngine") -> None:
        super().bind(engine)
        self._spec = engine.spec
        self._store = engine.store
        reducer = engine.reducer
        self._canonical = reducer.canonical if reducer is not None else None
        self._fp = engine.fingerprint
        self._traceless = bool(getattr(engine.store, "traceless", False))
        if self._traceless and not isinstance(self.frontier, _DepthTrackingDeque):
            self.frontier = _DepthTrackingDeque(self.frontier)

    def trace_to(self, fp: Any, step: Optional[TraceStep] = None) -> Trace:
        if self._traceless:
            depth = self.frontier.last_depth + (1 if step is not None else 0)
            return PendingTrace(depth)
        trace = reconstruct_trace(
            self._spec, self._store, fp, self._canonical, self._fp
        )
        return trace.extend(step) if step is not None else trace


class RandomWalkFrontier(FrontierStrategy):
    """One uniformly random enabled transition per step (TLC simulation).

    Tracks the running trace plus the branch-coverage and
    event-diversity sets that constraint ranking (Algorithm 1) consumes.
    """

    name = "random-walk"
    dedupe = False
    stop_on_bound = True
    tracks_steps = True

    def __init__(
        self,
        rng: Any,
        init_states: Optional[Sequence[Rec]] = None,
        event_kinds: Optional[Dict[str, str]] = None,
    ) -> None:
        self.rng = rng
        self._init_states = init_states
        self.event_kinds = event_kinds
        self.frontier = _SingleSlot()
        self.trace: Optional[Trace] = None
        self.branches: set = set()
        self.event_counts: Any = None  # Counter, created lazily to keep imports light

    def bind(self, engine: "ExplorationEngine") -> None:
        super().bind(engine)
        if self.event_kinds is None:
            self.event_kinds = action_kinds(engine.spec)
        if self.event_counts is None:
            from collections import Counter

            self.event_counts = Counter()

    def initial_states(self, spec: Spec) -> Iterable[Rec]:
        inits = (
            self._init_states
            if self._init_states is not None
            else list(spec.init_states())
        )
        return (inits[self.rng.randrange(len(inits))],)

    def on_seed(self, state: Rec, fp: Any) -> None:
        self.trace = Trace(state)

    def choose(
        self, state: Rec, successors: Iterator[Transition]
    ) -> Iterable[Transition]:
        choices = list(successors)
        if not choices:
            return ()
        return (choices[self.rng.randrange(len(choices))],)

    def on_transition(self, transition: Transition) -> None:
        self.branches.add((transition.action, transition.branch))
        kind = self.event_kinds.get(transition.action, "internal")
        self.event_counts[kind] += 1

    def on_step(
        self, transition: Transition, child: Rec, child_fp: Any, depth: int
    ) -> None:
        self.trace = self.trace.extend(_step_of(transition))

    def trace_to(self, fp: Any, step: Optional[TraceStep] = None) -> Trace:
        return self.trace.extend(step) if step is not None else self.trace

    def empty_reason(self) -> StopReason:
        return StopReason.DEADLOCK


class ScenarioError(Exception):
    """Raised when a pick matches no enabled transition (or several)."""


def _matches(pick: Any, transition: Transition) -> bool:
    if callable(pick) and not isinstance(pick, str):
        return bool(pick(transition))
    if isinstance(pick, str):
        return transition.action == pick
    name, *args = pick
    if transition.action != name:
        return False
    return tuple(transition.args[: len(args)]) == tuple(args)


class ScenarioFrontier(FrontierStrategy):
    """Guided execution: one transition per scenario pick, in order.

    Raises :class:`ScenarioError` when a pick matches no enabled
    transition, or several *distinct* ones while ``allow_ambiguous`` is
    false: candidates are deduplicated by successor fingerprint first,
    so a pick matching several transitions that all lead to the same
    state (symmetric argument orders, interchangeable branch labels) is
    not ambiguous — any of them is the same step.  The spec's state
    constraint is deliberately not applied — a scenario drives exactly
    the chosen interleaving, bounds or not.
    """

    name = "scenario"
    dedupe = False
    stop_on_bound = True
    tracks_steps = True
    check_constraint = False

    def __init__(self, picks: Sequence[Any], allow_ambiguous: bool = False) -> None:
        self.picks = list(picks)
        self.allow_ambiguous = allow_ambiguous
        self.frontier = _SingleSlot()
        self.trace: Optional[Trace] = None
        self._index = 0

    def initial_states(self, spec: Spec) -> Iterable[Rec]:
        return (next(iter(spec.init_states())),)

    def on_seed(self, state: Rec, fp: Any) -> None:
        self.trace = Trace(state)

    def choose(
        self, state: Rec, successors: Iterator[Transition]
    ) -> Iterable[Transition]:
        if self._index >= len(self.picks):
            return ()
        pick = self.picks[self._index]
        transitions = list(successors)
        candidates = [t for t in transitions if _matches(pick, t)]
        if not candidates:
            enabled = sorted({t.action for t in transitions})
            raise ScenarioError(
                f"pick #{self._index} ({pick!r}) matches no enabled transition;"
                f" enabled actions: {enabled}"
            )
        if len(candidates) > 1 and not self.allow_ambiguous:
            # Several matches whose successors are one and the same state
            # are a single step, not an ambiguity.  Fingerprinting may
            # consume a candidate's functional-update chain, degrading
            # this step's incremental invariant check to a full one —
            # correct either way.
            fp_fn = self.engine.fingerprint
            distinct = {fp_fn(t.target) for t in candidates}
            if len(distinct) > 1:
                labels = [t.label for t in candidates[:6]]
                raise ScenarioError(
                    f"pick #{self._index} ({pick!r}) is ambiguous: {labels}"
                )
        self._index += 1
        return (candidates[0],)

    def on_step(
        self, transition: Transition, child: Rec, child_fp: Any, depth: int
    ) -> None:
        self.trace = self.trace.extend(_step_of(transition))

    def trace_to(self, fp: Any, step: Optional[TraceStep] = None) -> Trace:
        return self.trace.extend(step) if step is not None else self.trace

    def empty_reason(self) -> StopReason:
        return StopReason.COMPLETE


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def action_kinds(spec: Spec) -> Dict[str, str]:
    """Precomputed action-name -> event-kind map (one pass over actions)."""
    return {action.name: action.kind for action in spec.actions()}


class ExplorationEngine:
    """The shared step loop: seed, pop, bound, expand, check, account.

    One engine instance runs one exploration; the strategy decides the
    frontier discipline, the store decides statefulness, and the checker
    decides what is a violation.  ``progress`` (if given) receives the
    live :class:`SearchStats` every ``progress_interval`` new states —
    the unified progress-event stream shared by every mode.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, default
    ``None``) turns on per-action fire counts (the
    ``engine.action_fires`` labeled counts, pre-seeded with every spec
    action at zero so coverage reports list never-fired actions), the
    successor fan-out histogram (``engine.fanout``), and the queue-depth
    / states-per-second gauges refreshed at progress ticks and at the
    end of the run.  With ``metrics=None`` the hot loop pays one pointer
    comparison per transition and nothing else.
    """

    def __init__(
        self,
        spec: Spec,
        strategy: FrontierStrategy,
        store: Optional[StateStore] = None,
        checker: Optional[StepChecker] = None,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_on_violation: bool = True,
        reducer: Optional[Any] = None,
        fingerprint_fn: Callable[[Rec], Any] = fingerprint,
        progress: Optional[Callable[[SearchStats], None]] = None,
        progress_interval: int = 50_000,
        checkpointer: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ):
        self.spec = spec
        self.strategy = strategy
        if store is None:
            store = InMemoryStateStore() if strategy.dedupe else NullStateStore()
        self.store = store
        self.checker = checker if checker is not None else StepChecker(spec)
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.stop_on_violation = stop_on_violation
        self.reducer = reducer
        self.fingerprint = fingerprint_fn
        self.progress = progress
        self.progress_interval = progress_interval
        self.checkpointer = checkpointer
        self.metrics = metrics
        self.stats = SearchStats()

    def run(self, resume: Optional[Any] = None) -> SearchResult:
        """Run the exploration; ``resume`` continues a checkpointed run.

        ``resume`` (a :class:`repro.persist.checkpoint.ResumeState`)
        replaces seeding: the engine adopts the checkpointed stats and
        already-collected violations and starts popping the restored
        frontier.  Checkpoints are taken at state boundaries — points
        the uninterrupted run also passes through — so a deterministic
        strategy resumed this way re-executes the identical step
        sequence and returns the identical :class:`SearchResult`.
        """
        stats = self.stats = SearchStats() if resume is None else resume.stats
        strategy = self.strategy
        strategy.bind(self)
        checker = self.checker
        checker.tracer = strategy.trace_to
        store = self.store
        spec = self.spec

        # Hot-loop locals: every name below is read once per transition.
        monotonic = time.monotonic
        # A resumed run has already burned resume.stats.elapsed of its
        # budget; backdating the start keeps time accounting cumulative.
        started = monotonic() - stats.elapsed
        checkpointer = self.checkpointer
        reducer = self.reducer
        canon_fn = reducer.canonical if reducer is not None else None
        fp_fn = self.fingerprint
        dedupe = strategy.dedupe
        tracks = strategy.tracks_steps
        check_constraint = strategy.check_constraint
        stop_on_bound = strategy.stop_on_bound
        stop_on_violation = self.stop_on_violation
        max_states = self.max_states
        max_depth = self.max_depth
        time_budget = self.time_budget
        progress = self.progress
        progress_interval = self.progress_interval
        successors = spec.successors
        state_constraint = spec.state_constraint
        store_seen = store.seen
        store_record = store.record
        check_edge = checker.check_edge
        check_state = checker.check_state
        frontier = strategy.frontier
        push = frontier.append
        # Incremental invariant checking (compiled specs only): compute
        # each successor's touched-key set from its functional-update
        # chain, before fingerprinting consumes the chain.  Skipping
        # state invariants additionally requires every recorded parent
        # to have been clean, which holds exactly when the run stops at
        # the first violation.
        incremental = (
            checker.check_invariants
            and getattr(spec, "incremental", False)
            and callable(getattr(spec, "changed_keys", None))
        )
        changed_of = changed_keys if incremental else None
        skip_state_invs = incremental and stop_on_violation

        # Observability hooks: all None when metrics are disabled, so the
        # hot loop pays a single pointer comparison per transition.
        metrics = self.metrics
        if metrics is not None:
            if resume is not None:
                snapshot = getattr(resume, "metrics", None)
                if snapshot:
                    # Discard anything a killed run counted past its last
                    # committed checkpoint; those steps re-run from here.
                    metrics.restore(snapshot)
            fires = metrics.counts(ACTION_FIRES)
            for action in spec.actions():
                fires.setdefault(action.name, 0)
            fanout_observe = metrics.histogram("engine.fanout", SIZE_BOUNDS).observe
            queue_gauge = metrics.gauge("engine.queue_depth")
            rate_gauge = metrics.gauge("engine.states_per_sec")
            bytes_gauge = metrics.gauge(STORE_BYTES)
            codec_base = codec_stats()
        else:
            fires = None
            fanout_observe = None

        def refresh_gauges() -> None:
            queue_gauge.set(len(frontier))
            rate_gauge.set(
                stats.distinct_states / stats.elapsed if stats.elapsed > 0 else 0.0
            )
            known = len(store)
            if known:
                estimate = store.estimated_bytes()
                if estimate is not None:
                    bytes_gauge.set(estimate / known)

        def finish(
            reason: StopReason,
            violation: Optional[Violation] = None,
            exhausted: bool = False,
        ) -> SearchResult:
            stats.elapsed = monotonic() - started
            if metrics is not None:
                refresh_gauges()
                chunk_counts = metrics.counts(CODEC_CHUNKS)
                for key, count in codec_stats().items():
                    delta = count - codec_base[key]
                    if delta:
                        chunk_counts[key] = chunk_counts.get(key, 0) + delta
            if violation is None:
                violation = checker.first_violation
            return SearchResult(stats, violation, exhausted, reason)

        if resume is not None:
            # The original run already seeded (and checked) the initial
            # states; adopt its pending frontier and prior violations.
            checker.violations.extend(resume.violations)
            for node in resume.frontier:
                push(node)
        else:
            # -- seed the frontier with initial states -----------------------
            for init in strategy.initial_states(spec):
                canon = canon_fn(init) if canon_fn is not None else init
                fp = fp_fn(canon) if dedupe else None
                if dedupe:
                    if store_seen(fp):
                        continue
                    store.record_init(fp, canon)
                stats.distinct_states += 1
                if tracks:
                    strategy.on_seed(canon, fp)
                violation = check_state(canon, fp, None)
                if violation is not None and stop_on_violation:
                    return finish(StopReason.VIOLATION, violation)
                push((canon, fp, 0))

        # -- the step loop ----------------------------------------------------
        while frontier:
            # State boundary: everything recorded is consistent with the
            # pending frontier, so this is the one safe checkpoint point.
            if checkpointer is not None:
                checkpointer.maybe_checkpoint(self, monotonic() - started)
            state, fp, depth = frontier.popleft()
            if depth > stats.max_depth:
                stats.max_depth = depth
            if max_depth is not None and depth >= max_depth:
                if stop_on_bound:
                    return finish(StopReason.MAX_DEPTH)
                continue
            if check_constraint and not state_constraint(state):
                stats.pruned += 1
                if stop_on_bound:
                    return finish(StopReason.CONSTRAINT)
                continue
            fanout_base = stats.transitions
            for transition in strategy.choose(state, successors(state)):
                stats.transitions += 1
                if fires is not None:
                    name = transition.action
                    fires[name] = fires.get(name, 0) + 1
                if tracks:
                    strategy.on_transition(transition)
                target = transition.target
                # Touched keys must be read off the functional-update
                # chain before fingerprinting consumes it.
                changed = (
                    changed_of(target, state) if changed_of is not None else None
                )
                violation = check_edge(state, fp, transition, changed)
                if violation is not None and stop_on_violation:
                    return finish(StopReason.VIOLATION, violation)
                if dedupe:
                    child = canon_fn(target) if canon_fn is not None else target
                    child_fp = fp_fn(child)
                    if store_seen(child_fp):
                        if (
                            time_budget is not None
                            and monotonic() - started > time_budget
                        ):
                            return finish(StopReason.TIME_BUDGET)
                        continue
                    store_record(child_fp, fp, transition.action)
                else:
                    child = detach(target)
                    child_fp = None
                stats.distinct_states += 1
                violation = check_state(
                    child, fp, transition, changed if skip_state_invs else None
                )
                if violation is not None and stop_on_violation:
                    return finish(StopReason.VIOLATION, violation)
                if tracks:
                    strategy.on_step(transition, child, child_fp, depth + 1)
                push((child, child_fp, depth + 1))
                if max_states is not None and stats.distinct_states >= max_states:
                    return finish(StopReason.MAX_STATES)
                if (
                    progress is not None
                    and stats.distinct_states % progress_interval == 0
                ):
                    stats.elapsed = monotonic() - started
                    if metrics is not None:
                        refresh_gauges()
                    progress(stats)
                if time_budget is not None and monotonic() - started > time_budget:
                    return finish(StopReason.TIME_BUDGET)
            if fanout_observe is not None:
                fanout_observe(stats.transitions - fanout_base)

        reason = strategy.empty_reason()
        violation = checker.first_violation
        exhausted = reason is StopReason.EXHAUSTED and (
            violation is None or not stop_on_violation
        )
        return finish(reason, violation, exhausted)
