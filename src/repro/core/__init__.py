"""Core model-checking engine: the paper's primary contribution.

Public surface:

* :class:`~repro.core.spec.Spec`, :class:`~repro.core.spec.Action`,
  :class:`~repro.core.spec.Invariant`,
  :class:`~repro.core.spec.TransitionInvariant` — the specification DSL;
* :class:`~repro.core.state.Rec`, :func:`~repro.core.state.freeze`,
  :func:`~repro.core.state.thaw` — immutable state values;
* :class:`~repro.core.engine.ExplorationEngine` — the shared exploration
  kernel (frontier strategies, state stores, step checker, unified
  :class:`~repro.core.engine.SearchStats` and
  :class:`~repro.core.engine.StopReason`);
* :func:`~repro.core.explorer.bfs_explore` — stateful BFS model checking;
* :func:`~repro.core.simulation.simulate`,
  :func:`~repro.core.simulation.random_walk` — random-walk exploration;
* :func:`~repro.core.ranking.rank_constraints` — Algorithm 1;
* :class:`~repro.core.trace.Trace`,
  :class:`~repro.core.violation.Violation` — counterexamples.
"""

from .compile import por_prune_set
from .engine import (
    CompactStore,
    DictStore,
    ExplorationEngine,
    FIFOFrontier,
    FingerprintOnlyStore,
    FrontierStrategy,
    InMemoryStateStore,
    NullStateStore,
    RandomWalkFrontier,
    ScenarioFrontier,
    SearchResult,
    SearchStats,
    ShardedStateStore,
    StateStore,
    StepChecker,
    StopReason,
    TracelessStoreError,
    action_kinds,
)
from .explorer import BFSExplorer, BFSResult, BFSStats, bfs_explore, research_violation
from .guided import ScenarioError, ScenarioResult, run_scenario
from .linearizability import LinearizabilityResult, Operation, check_linearizable
from .liveness import LivenessProperty, LivenessStats, compare_progress, measure_progress
from .parallel import (
    ForkTransport,
    ParallelBFS,
    ShardWorker,
    WorkerDied,
    parallel_bfs,
)
from .ranking import ConstraintScore, RankedConstraints, rank_constraints
from .simulation import SimulationResult, WalkResult, random_walk, simulate
from .spec import Action, Invariant, Spec, SpecError, Transition, TransitionInvariant
from .state import Rec, decode, encode, fingerprint, freeze, strong_fingerprint, thaw
from .symmetry import SymmetryReducer, canonicalize
from .trace import PendingTrace, Trace, TraceStep
from .violation import Violation

__all__ = [
    "Action",
    "CompactStore",
    "DictStore",
    "ExplorationEngine",
    "FIFOFrontier",
    "FingerprintOnlyStore",
    "FrontierStrategy",
    "InMemoryStateStore",
    "NullStateStore",
    "RandomWalkFrontier",
    "ScenarioFrontier",
    "SearchResult",
    "SearchStats",
    "ShardedStateStore",
    "StateStore",
    "StepChecker",
    "StopReason",
    "TracelessStoreError",
    "action_kinds",
    "LinearizabilityResult",
    "LivenessProperty",
    "LivenessStats",
    "Operation",
    "ScenarioError",
    "ScenarioResult",
    "check_linearizable",
    "compare_progress",
    "measure_progress",
    "run_scenario",
    "BFSExplorer",
    "BFSResult",
    "BFSStats",
    "ConstraintScore",
    "ForkTransport",
    "Invariant",
    "ParallelBFS",
    "ShardWorker",
    "WorkerDied",
    "PendingTrace",
    "RankedConstraints",
    "Rec",
    "SimulationResult",
    "Spec",
    "SpecError",
    "SymmetryReducer",
    "Trace",
    "TraceStep",
    "Transition",
    "TransitionInvariant",
    "Violation",
    "WalkResult",
    "bfs_explore",
    "canonicalize",
    "decode",
    "encode",
    "fingerprint",
    "freeze",
    "parallel_bfs",
    "por_prune_set",
    "random_walk",
    "rank_constraints",
    "research_violation",
    "simulate",
    "strong_fingerprint",
    "thaw",
]
