"""Sharded parallel BFS: N engine workers over a partitioned frontier.

The scalability story of TLC-style stateful exploration is a visited-
fingerprint set partitioned across workers.  This module provides that
layer for the pure-Python kernel: breadth-first search driven by a
master and ``N`` shard workers, with the fingerprint space partitioned
by ``fp % N`` ("owner computes").  It exists because
:func:`repro.core.state.fingerprint` is canonical — a blake2b digest of
the canonical state codec — so every process assigns every state to the
same owner without any coordination.

The search is level-synchronous; each round covers one BFS depth in two
phases:

1. **expand** — every worker pops its slice of the current frontier,
   enumerates successors, checks transition invariants, and fingerprints
   each (canonicalized) child.  Children owned by the worker itself are
   deduplicated against its local :class:`~repro.core.engine.CompactStore`
   on the spot; foreign children are batched per owner as
   ``(codec bytes, fingerprint, parent fingerprint, action, depth)``.
2. **absorb** — the master routes the batches and each owner merges
   them: duplicates are dropped, new states are recorded with their
   parent edge, state invariants are checked once per distinct state
   (the same per-state/per-edge check counts as the serial engine), and
   survivors join the owner's next frontier.

The master aggregates per-round deltas into the unified
:class:`~repro.core.engine.SearchStats`, decides the
:class:`~repro.core.engine.StopReason` (violation, ``max_states``,
``max_depth``, time budget, exhaustion), and — because rounds are
level-synchronous — the first violating round still yields a
minimal-depth counterexample.  Counterexample traces are rebuilt by
merging every worker's parent edges (``StateStore.edges()``) into one
store and re-executing from the initial state, exactly like the serial
explorer.

**Transports.**  The master never talks to a process or a socket
directly: all exchange goes through a :class:`WorkerTransport` —
``send(wid, msg)`` / ``recv(timeout)`` / ``replace(wid)`` / ``close()``.
The default :class:`ForkTransport` forks local workers and moves
messages over multiprocessing queues (specs need not be picklable; all
cross-process state travels as canonical codec bytes).  The socket
transport in :mod:`repro.dist.transport` speaks the same protocol to
``sandtable worker`` agents over TCP, so exploration spans hosts.  The
per-shard protocol logic itself lives in :class:`ShardWorker`, shared by
both.

**Elastic membership.**  A transport reports a lost worker by raising
:class:`WorkerDied`.  The master then replaces the worker (respawn, or
connect to a spare agent), drains stale in-flight replies with a
ping/pong barrier, and rolls the whole fleet back to the last committed
generation-addressed checkpoint (or re-seeds from the initial states
when none was written yet).  Checkpoints are taken at round boundaries
the uninterrupted run also passes through, so the recovered run is
census- and trace-identical to an undisturbed one.

On platforms without ``fork`` (or with ``workers <= 1``)
:func:`parallel_bfs` falls back to the serial
:class:`~repro.core.explorer.BFSExplorer` — with a ``RuntimeWarning``
and a ``parallel.fallback_serial`` counter, so the degradation is never
silent.

``fast=True`` switches every worker to the traceless
:class:`~repro.core.engine.FingerprintOnlyStore` and drops the parent
fingerprint and action name from routed batches — foreign children
travel as ``(codec bytes, fingerprint, depth)`` triples, since no owner
keeps edges.  A violation is then reported with a
:class:`~repro.core.trace.PendingTrace` and (with ``research=True``)
immediately resolved by a serial bounded re-search
(:func:`repro.core.explorer.research_violation`).  ``por=True`` makes
every worker compile its spec with partial-order reduction; pruning is
deterministic, so all workers agree on the reduced successor relation.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback
import warnings
from collections import defaultdict, deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.metrics import (
    ACTION_FIRES,
    BATCH_BYTES,
    CODEC_CHUNKS,
    FALLBACK_SERIAL,
    ROUND_WAIT_MS,
    SIZE_BOUNDS,
    WAIT_BOUNDS_MS,
    Histogram,
)
from .compile import compile_disabled, maybe_compile
from .engine import (
    CompactStore,
    FingerprintOnlyStore,
    SearchResult,
    SearchStats,
    StopReason,
    reconstruct_trace,
)
from .spec import Spec
from .state import changed_keys, codec_stats, decode, encode, fingerprint
from .symmetry import SymmetryReducer
from .trace import PendingTrace, TraceStep
from .violation import Violation

__all__ = [
    "parallel_bfs",
    "ParallelBFS",
    "ShardWorker",
    "ForkTransport",
    "WorkerDied",
]

#: violation descriptor: (kind, invariant, depth, fp, action, args, branch,
#: encoded target or None) — everything the master needs to rebuild the
#: Violation once the workers' parent edges are merged.
_ViolationDesc = Tuple[str, str, int, int, str, tuple, str, Optional[bytes]]

_ROOT_ACTION = "<init>"


class WorkerDied(RuntimeError):
    """A shard worker was lost (process death, EOF, or connection error).

    Raised by :meth:`WorkerTransport.recv`/``send`` — *not* for errors in
    worker code (those surface as ``("error", ...)`` replies and raise a
    plain :class:`RuntimeError`, because re-running the same code would
    just die again).  The master reacts by replacing the worker and
    rolling the fleet back to its last committed checkpoint.
    """

    def __init__(self, wid: int, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(f"parallel BFS worker {wid} died{detail}")
        self.wid = wid
        self.reason = reason


def _make_reducer(spec: Spec, symmetry: bool) -> Optional[SymmetryReducer]:
    if not symmetry:
        return None
    return SymmetryReducer(spec.symmetry_sets(), key=fingerprint)


class ShardWorker:
    """One shard's protocol logic, independent of how messages arrive.

    Owns the fingerprints with ``fp % workers == wid``: a local store, a
    local frontier, and the expand/absorb/edges/checkpoint/restore op
    handlers.  The fork worker loop (:func:`_worker_main`) and the TCP
    worker agent (:class:`repro.dist.agent.WorkerAgent`) both drive one
    instance through :meth:`handle`, which keeps the two transports
    behaviorally identical by construction.
    """

    def __init__(
        self,
        spec: Spec,
        wid: int,
        workers: int,
        *,
        symmetry: bool = False,
        stop_on_violation: bool = True,
        metrics_on: bool = False,
        compiled: bool = True,
        fast: bool = False,
        por: bool = False,
    ):
        # Workers receive the *source* spec and compile locally:
        # compilation is cheap, per-process, and this keeps the fork
        # payload identical whether or not the run is compiled.  POR
        # pruning is a pure function of the spec's ActionMeta, so every
        # worker derives the same reduced successor relation.
        spec = maybe_compile(spec, compiled, por=por)
        self.spec = spec
        self.wid = wid
        self.workers = workers
        self.fast = bool(fast)
        self.stop_on_violation = stop_on_violation
        self.metrics_on = metrics_on
        reducer = _make_reducer(spec, symmetry)
        self._canon = reducer.canonical if reducer is not None else None
        self.store = FingerprintOnlyStore() if fast else CompactStore()
        self.frontier: deque = deque()
        self._constraint = spec.state_constraint
        self._successors = spec.successors
        self._check_state = spec.check_state
        self._check_transition = spec.check_transition
        # Incremental invariant checking, mirroring the serial engine:
        # touched keys are read off the functional-update chain before
        # fingerprinting consumes it; state-invariant skipping requires
        # clean parents, which stop_on_violation guarantees.
        incremental = getattr(spec, "incremental", False)
        self._changed_of = changed_keys if incremental else None
        self._skip_state_invs = incremental and stop_on_violation

    # -- op dispatch ---------------------------------------------------------

    def handle(self, msg: tuple) -> tuple:
        """Process one master op; returns the reply message."""
        op = msg[0]
        if op == "absorb":
            return self.absorb(msg[1])
        if op == "expand":
            return self.expand(msg[1])
        if op == "edges":
            return self.edges_reply()
        if op == "checkpoint":
            if len(msg) > 1 and msg[1] is not None:
                return self.checkpoint(msg[1])
            return self.checkpoint_payload()
        if op == "restore":
            return self.restore(msg[1] if len(msg) > 1 else None)
        if op == "ping":
            return ("pong", self.wid)
        raise RuntimeError(f"unknown parallel-BFS op {op!r}")

    # -- ops -----------------------------------------------------------------

    def absorb(self, items: list) -> tuple:
        store = self.store
        frontier = self.frontier
        check_state = self._check_state
        added = 0
        violations: List[_ViolationDesc] = []
        if self.fast:
            # Traceless batches carry no parent edge or action —
            # just (codec bytes, fingerprint, depth).
            for enc, fp, depth in items:
                if store.seen(fp):
                    continue
                state = decode(enc)
                store.record(fp, None, "")
                added += 1
                bad = check_state(state)
                if bad is not None:
                    violations.append(("state", bad, depth, fp, "", (), "", None))
                frontier.append((state, fp, depth))
        else:
            for enc, fp, parent_fp, action, depth in items:
                if store.seen(fp):
                    continue
                state = decode(enc)
                if parent_fp is None:
                    store.record_init(fp, state)
                else:
                    store.record(fp, parent_fp, action)
                added += 1
                bad = check_state(state)
                if bad is not None:
                    violations.append(("state", bad, depth, fp, action, (), "", None))
                frontier.append((state, fp, depth))
        return ("absorbed", self.wid, added, violations, len(frontier))

    def expand(self, deadline: Optional[float]) -> tuple:
        wid = self.wid
        n_workers = self.workers
        store = self.store
        fast = self.fast
        stop_on_violation = self.stop_on_violation
        canon = self._canon
        constraint = self._constraint
        successors = self._successors
        check_state = self._check_state
        check_transition = self._check_transition
        changed_of = self._changed_of
        skip_state_invs = self._skip_state_invs
        metrics_on = self.metrics_on
        monotonic = time.monotonic

        current, self.frontier = self.frontier, deque()
        frontier = self.frontier
        transitions = pruned = added = 0
        truncated = stopping = False
        batches: Dict[int, list] = defaultdict(list)
        violations: List[_ViolationDesc] = []
        # Per-round observability deltas, shipped to the master
        # with the "expanded" reply and merged there.
        fires: Optional[Dict[str, int]] = {} if metrics_on else None
        fanout = Histogram("engine.fanout", SIZE_BOUNDS) if metrics_on else None
        codec_base = codec_stats() if metrics_on else None
        while current and not stopping:
            state, fp, depth = current.popleft()
            if deadline is not None and monotonic() > deadline:
                truncated = True
                break
            if not constraint(state):
                pruned += 1
                continue
            fanout_base = transitions
            for transition in successors(state):
                transitions += 1
                if fires is not None:
                    name = transition.action
                    fires[name] = fires.get(name, 0) + 1
                changed = (
                    changed_of(transition.target, state)
                    if changed_of is not None
                    else None
                )
                bad = check_transition(state, transition, changed)
                if bad is not None:
                    violations.append(
                        (
                            "transition",
                            bad,
                            depth + 1,
                            fp,
                            transition.action,
                            tuple(transition.args),
                            transition.branch,
                            encode(transition.target),
                        )
                    )
                    if stop_on_violation:
                        stopping = True
                        break
                target = transition.target
                child = canon(target) if canon is not None else target
                child_fp = fingerprint(child)
                if child_fp % n_workers == wid:
                    if store.seen(child_fp):
                        continue
                    store.record(child_fp, fp, transition.action)
                    added += 1
                    bad = check_state(child, changed if skip_state_invs else None)
                    if bad is not None:
                        violations.append(
                            (
                                "state",
                                bad,
                                depth + 1,
                                child_fp,
                                transition.action,
                                (),
                                "",
                                None,
                            )
                        )
                        if stop_on_violation:
                            stopping = True
                            break
                    frontier.append((child, child_fp, depth + 1))
                elif fast:
                    batches[child_fp % n_workers].append(
                        (encode(child), child_fp, depth + 1)
                    )
                else:
                    batches[child_fp % n_workers].append(
                        (
                            encode(child),
                            child_fp,
                            fp,
                            transition.action,
                            depth + 1,
                        )
                    )
            if fanout is not None:
                fanout.observe(transitions - fanout_base)
        if metrics_on:
            codec_now = codec_stats()
            codec_delta = {
                key: codec_now[key] - codec_base[key]
                for key in codec_now
                if codec_now[key] != codec_base[key]
            }
            obs = (fires, fanout.to_dict(), codec_delta)
        else:
            obs = None
        return (
            "expanded",
            wid,
            transitions,
            pruned,
            added,
            dict(batches),
            violations,
            len(frontier),
            truncated,
            obs,
        )

    def edges_reply(self) -> tuple:
        store = self.store
        return (
            "edges",
            self.wid,
            list(store.edges()),
            [(fp, encode(state)) for fp, state in store.roots()],
        )

    def checkpoint(self, path: Any) -> tuple:
        # Local import: persist depends on core, never the reverse.
        from ..persist.checkpoint import write_worker_checkpoint

        write_worker_checkpoint(path, self.store, self.frontier)
        return ("checkpointed", self.wid)

    def checkpoint_payload(self) -> tuple:
        """Checkpoint as container bytes — the master writes the file.

        Socket workers have no shared filesystem with the master; the
        generation-addressed files (and hence resume and reassignment)
        stay a master-side concern.
        """
        from ..persist.checkpoint import worker_checkpoint_bytes

        return ("checkpointed", self.wid, worker_checkpoint_bytes(self.store, self.frontier))

    def restore(self, source: Any) -> tuple:
        """Reset to a checkpoint (path or bytes), or to empty (``None``).

        Always rebuilds a *fresh* store: for a newly forked/connected
        worker this is a no-op, and for a surviving worker rolled back
        after a peer's death it discards everything recorded past the
        committed generation.
        """
        from ..persist.checkpoint import (
            load_worker_checkpoint,
            load_worker_checkpoint_bytes,
        )

        self.store = FingerprintOnlyStore() if self.fast else CompactStore()
        if source is None:
            self.frontier = deque()
        elif isinstance(source, (bytes, bytearray)):
            self.frontier = deque(
                load_worker_checkpoint_bytes(bytes(source), self.store)
            )
        else:
            self.frontier = deque(load_worker_checkpoint(source, self.store))
        return ("restored", self.wid, len(self.frontier))


def _worker_main(
    wid: int,
    n_workers: int,
    spec: Spec,
    symmetry: bool,
    stop_on_violation: bool,
    metrics_on: bool,
    compiled: bool,
    fast: bool,
    por: bool,
    in_q: Any,
    out_q: Any,
) -> None:
    """Fork-worker loop: drive one :class:`ShardWorker` over mp queues."""
    try:
        worker = ShardWorker(
            spec,
            wid,
            n_workers,
            symmetry=symmetry,
            stop_on_violation=stop_on_violation,
            metrics_on=metrics_on,
            compiled=compiled,
            fast=fast,
            por=por,
        )
        while True:
            msg = in_q.get()
            if msg[0] == "stop":
                return
            if msg[0] == "die":
                # Test-only fault injection: vanish without a reply, as a
                # crashed or OOM-killed worker would.
                os._exit(1)
            out_q.put(worker.handle(msg))
    except BaseException:
        out_q.put(("error", wid, traceback.format_exc()))


class ForkTransport:
    """The default transport: forked local workers over mp queues.

    One queue into each worker, one shared queue back; FIFO order per
    worker is guaranteed by the queue semantics, which the master's
    ping/pong drain relies on after a replacement.
    """

    def __init__(self) -> None:
        self.n = 0
        self._ctx: Any = None
        self._config: Dict[str, Any] = {}
        self._procs: List[Any] = []
        self._in_qs: List[Any] = []
        self._out_q: Any = None

    def start(self, config: Dict[str, Any]) -> None:
        self._config = dict(config)
        self.n = int(config["workers"])
        ctx = self._ctx = multiprocessing.get_context("fork")
        self._out_q = ctx.Queue()
        self._in_qs = [ctx.Queue() for _ in range(self.n)]
        self._procs = [self._spawn(wid, self._in_qs[wid]) for wid in range(self.n)]
        for proc in self._procs:
            proc.start()

    def _spawn(self, wid: int, in_q: Any) -> Any:
        config = self._config
        return self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                self.n,
                config["spec"],
                config["symmetry"],
                config["stop_on_violation"],
                config["metrics_on"],
                config["compiled"],
                config["fast"],
                config["por"],
                in_q,
                self._out_q,
            ),
            daemon=True,
            name=f"sandtable-bfs-{wid}",
        )

    def send(self, wid: int, msg: tuple) -> None:
        self._in_qs[wid].put(msg)

    def recv(self, timeout: float = 1.0) -> Optional[tuple]:
        """One worker reply, ``None`` on timeout; raises on lost workers."""
        try:
            msg = self._out_q.get(timeout=timeout)
        except queue_mod.Empty:
            for wid, proc in enumerate(self._procs):
                if not proc.is_alive():
                    raise WorkerDied(
                        wid, f"{proc.name} exited with code {proc.exitcode}"
                    ) from None
            return None
        if msg[0] == "error":
            raise RuntimeError(f"parallel BFS worker {msg[1]} failed:\n{msg[2]}")
        return msg

    def replace(self, wid: int) -> bool:
        """Respawn the worker behind shard ``wid`` with a fresh queue."""
        old_proc = self._procs[wid]
        if old_proc.is_alive():  # pragma: no cover - defensive
            old_proc.terminate()
        old_proc.join(timeout=5)
        old_q = self._in_qs[wid]
        in_q = self._ctx.Queue()
        self._in_qs[wid] = in_q
        proc = self._spawn(wid, in_q)
        self._procs[wid] = proc
        proc.start()
        try:
            old_q.close()
            old_q.cancel_join_thread()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        return True

    def close(self) -> None:
        for in_q in self._in_qs:
            try:
                in_q.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for proc in self._procs:
            proc.join(timeout=5)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hard shutdown
                proc.terminate()
                proc.join(timeout=5)
        queues = list(self._in_qs)
        if self._out_q is not None:
            queues.append(self._out_q)
        for q in queues:
            q.close()
            q.cancel_join_thread()


class ParallelBFS:
    """Master driver for the sharded parallel breadth-first search.

    Mirrors the serial :class:`~repro.core.explorer.BFSExplorer` surface:
    one instance runs one exploration and :meth:`run` returns the unified
    :class:`~repro.core.engine.SearchResult`.  ``max_states`` is checked
    between rounds, so the distinct-state count can overshoot the bound
    by up to one BFS level (the serial explorer stops exactly at the
    bound).

    ``transport`` selects how the shard workers are reached (default:
    :class:`ForkTransport`); ``max_reassignments`` bounds how many worker
    deaths the master will absorb before giving up.
    """

    def __init__(
        self,
        spec: Spec,
        workers: int = 2,
        symmetry: bool = False,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_on_violation: bool = True,
        progress: Optional[Callable[[SearchStats], None]] = None,
        progress_interval: int = 50_000,  # accepted for API parity; per-round here
        checkpointer: Optional[Any] = None,
        resume: Optional[Any] = None,
        metrics: Optional[Any] = None,
        compiled: bool = True,
        fast: bool = False,
        por: bool = False,
        research: bool = True,
        transport: Optional[Any] = None,
        max_reassignments: int = 3,
    ):
        if por and (not compiled or compile_disabled()):
            # Fail in the master, before forking: maybe_compile raises
            # the canonical SpecError for this misconfiguration.
            maybe_compile(spec, compiled, por=True)
        self.spec = spec
        self.compiled = compiled
        self.workers = max(1, int(workers))
        self.symmetry = symmetry
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.stop_on_violation = stop_on_violation
        self.progress = progress
        self.checkpointer = checkpointer
        self.resume = resume
        self.metrics = metrics
        self.fast = bool(fast)
        self.por = bool(por)
        self.research = bool(research)
        self.transport = transport
        self.max_reassignments = max_reassignments
        self.stats = SearchStats()

    # -- the search ----------------------------------------------------------

    def run(self) -> SearchResult:
        transport = self.transport if self.transport is not None else ForkTransport()
        transport.start(
            {
                "workers": self.workers,
                "spec": self.spec,
                "symmetry": self.symmetry,
                "stop_on_violation": self.stop_on_violation,
                "metrics_on": self.metrics is not None,
                "compiled": self.compiled,
                "fast": self.fast,
                "por": self.por,
                "metrics": self.metrics,
            }
        )
        self._transport = transport
        try:
            return self._drive(transport)
        finally:
            transport.close()

    def _drive(self, transport: Any) -> SearchResult:
        resume = self.resume
        checkpointer = self.checkpointer
        stats = self.stats = SearchStats() if resume is None else resume.stats
        monotonic = time.monotonic
        # Backdated on resume, so the time budget stays cumulative.
        started = monotonic() - stats.elapsed
        deadline = (
            started + self.time_budget if self.time_budget is not None else None
        )
        n = self.workers
        stop_on_violation = self.stop_on_violation
        reducer = _make_reducer(self.spec, self.symmetry)
        depth = 0
        reassigned = 0
        #: membership events (deaths + reassignments), carried into every
        #: checkpoint manifest from now on and exposed to callers (the
        #: durable runner records them in the run manifest).
        membership: List[Dict[str, Any]] = []
        self.membership = membership

        metrics = self.metrics
        fires_table: Any = None
        fanout_hist = batch_hist = wait_hist = None
        rounds_counter = batch_bytes = None
        shard_states: Any = None
        chunk_counts: Any = None
        queue_gauge = rate_gauge = None

        def hoist_instruments() -> None:
            # Bind the hot-path instrument objects to locals.  Called
            # again after every ``metrics.restore`` — restore replaces
            # the labeled-count dicts wholesale, so stale hoists would
            # otherwise keep feeding dead objects.
            nonlocal fires_table, fanout_hist, batch_hist, wait_hist
            nonlocal rounds_counter, batch_bytes, shard_states, chunk_counts
            nonlocal queue_gauge, rate_gauge
            fires_table = metrics.counts(ACTION_FIRES)
            for action in self.spec.actions():
                fires_table.setdefault(action.name, 0)
            fanout_hist = metrics.histogram("engine.fanout", SIZE_BOUNDS)
            batch_hist = metrics.histogram("parallel.batch_sizes", SIZE_BOUNDS)
            wait_hist = metrics.histogram(ROUND_WAIT_MS, WAIT_BOUNDS_MS)
            rounds_counter = metrics.counter("parallel.rounds")
            batch_bytes = metrics.counter(BATCH_BYTES)
            shard_states = metrics.counts("parallel.shard_states")
            chunk_counts = metrics.counts(CODEC_CHUNKS)
            queue_gauge = metrics.gauge("engine.queue_depth")
            rate_gauge = metrics.gauge("engine.states_per_sec")

        baseline_snapshot: Optional[Dict[str, Any]] = None
        if metrics is not None:
            if resume is not None:
                snapshot = getattr(resume, "metrics", None)
                if snapshot:
                    # Discard anything a killed run counted past its last
                    # committed checkpoint; the rounds re-run from here.
                    metrics.restore(snapshot)
            hoist_instruments()
            # For a rollback with no committed checkpoint yet: the
            # registry exactly as it was before any exploration counted.
            baseline_snapshot = metrics.snapshot()

        violations: List[_ViolationDesc] = []
        frontier_sizes: Dict[int, int] = {}

        def route_seed() -> None:
            # Seed: route deduplicated initial states to their owners.
            seed_batches: Dict[int, list] = defaultdict(list)
            seeded = set()
            for init in self.spec.init_states():
                canon = reducer.canonical(init) if reducer is not None else init
                fp = fingerprint(canon)
                if fp in seeded:
                    continue
                seeded.add(fp)
                if self.fast:
                    seed_batches[fp % n].append((encode(canon), fp, 0))
                else:
                    seed_batches[fp % n].append(
                        (encode(canon), fp, None, _ROOT_ACTION, 0)
                    )
            targets = sorted(seed_batches)
            for wid in targets:
                if metrics is not None:
                    batch_bytes.inc(sum(len(item[0]) for item in seed_batches[wid]))
                transport.send(wid, ("absorb", seed_batches[wid]))
            for _, wid, added, viols, size in self._gather("absorbed", len(targets)):
                stats.distinct_states += added
                violations.extend(viols)
                frontier_sizes[wid] = size
                if metrics is not None and added:
                    key = str(wid)
                    shard_states[key] = shard_states.get(key, 0) + added

        if resume is not None:
            # Shard ownership is fp % n: a checkpoint only makes sense to
            # the worker count that wrote it.
            if resume.workers != n:
                raise ValueError(
                    f"checkpoint was written by {resume.workers} workers;"
                    f" resume with --workers {resume.workers} (got {n})"
                )
            violations.extend(resume.violations)
            frontier_sizes.update(resume.frontier_sizes)
            membership.extend(getattr(resume, "reassignments", ()) or ())
            for wid in range(n):
                transport.send(wid, ("restore", str(resume.worker_files[wid])))
            self._gather("restored", n)
            depth = resume.depth
        else:
            frontier_sizes.update({wid: 0 for wid in range(n)})
            route_seed()

        # -- level-synchronous rounds ---------------------------------------
        def refresh_gauges() -> None:
            queue_gauge.set(sum(frontier_sizes.values()))
            rate_gauge.set(
                stats.distinct_states / stats.elapsed if stats.elapsed > 0 else 0.0
            )

        def finish(reason: StopReason) -> SearchResult:
            stats.elapsed = monotonic() - started
            if metrics is not None:
                refresh_gauges()
            violation = self._build_violation(transport, violations, reducer)
            exhausted = reason is StopReason.EXHAUSTED and (
                violation is None or not stop_on_violation
            )
            return SearchResult(stats, violation, exhausted, reason)

        while True:
            try:
                if violations and stop_on_violation:
                    return finish(StopReason.VIOLATION)
                if deadline is not None and monotonic() > deadline:
                    return finish(StopReason.TIME_BUDGET)
                if (
                    self.max_states is not None
                    and stats.distinct_states >= self.max_states
                ):
                    return finish(StopReason.MAX_STATES)
                if not any(frontier_sizes.values()):
                    return finish(StopReason.EXHAUSTED)
                if self.max_depth is not None and depth >= self.max_depth:
                    # BFS semantics: states at the depth bound are not expanded.
                    stats.max_depth = self.max_depth
                    return finish(StopReason.EXHAUSTED)

                # Round boundary: every recorded state is consistent with
                # the pending per-shard frontiers, so checkpoint here if
                # due — each worker dumps its shard, then the master
                # manifest commit publishes the fleet-wide snapshot
                # atomically.
                if checkpointer is not None and checkpointer.due(stats):
                    stats.elapsed = monotonic() - started
                    for wid in range(n):
                        transport.send(
                            wid, ("checkpoint", str(checkpointer.worker_path(wid)))
                        )
                    self._gather("checkpointed", n)
                    checkpointer.commit(
                        workers=n,
                        depth=depth,
                        stats=stats,
                        frontier_sizes=dict(frontier_sizes),
                        violations=violations,
                        metrics=metrics.snapshot() if metrics is not None else None,
                        reassignments=membership,
                    )

                # expand: every worker pops its slice of the current level
                for wid in range(n):
                    transport.send(wid, ("expand", deadline))
                round_batches: Dict[int, list] = defaultdict(list)
                truncated = False
                wait_start = monotonic()
                replies = self._gather("expanded", n)
                if metrics is not None:
                    wait_hist.observe((monotonic() - wait_start) * 1000.0)
                for (
                    _,
                    wid,
                    transitions,
                    pruned,
                    added,
                    batches,
                    viols,
                    size,
                    was_truncated,
                    obs,
                ) in replies:
                    stats.transitions += transitions
                    stats.pruned += pruned
                    stats.distinct_states += added
                    violations.extend(viols)
                    frontier_sizes[wid] = size
                    truncated = truncated or was_truncated
                    for owner, items in batches.items():
                        round_batches[owner].extend(items)
                    if metrics is not None and obs is not None:
                        round_fires, fanout_state, codec_delta = obs
                        for name, count in round_fires.items():
                            fires_table[name] = fires_table.get(name, 0) + count
                        fanout_hist.merge(fanout_state)
                        for key, count in codec_delta.items():
                            chunk_counts[key] = chunk_counts.get(key, 0) + count
                        if added:
                            key = str(wid)
                            shard_states[key] = shard_states.get(key, 0) + added
                stats.max_depth = max(stats.max_depth, depth)

                # absorb: owners dedupe and enqueue the routed children
                targets = sorted(round_batches)
                for wid in targets:
                    transport.send(wid, ("absorb", round_batches[wid]))
                    if metrics is not None:
                        batch_hist.observe(len(round_batches[wid]))
                        batch_bytes.inc(
                            sum(len(item[0]) for item in round_batches[wid])
                        )
                for _, wid, added, viols, size in self._gather(
                    "absorbed", len(targets)
                ):
                    stats.distinct_states += added
                    violations.extend(viols)
                    frontier_sizes[wid] = size
                    if metrics is not None and added:
                        key = str(wid)
                        shard_states[key] = shard_states.get(key, 0) + added

                depth += 1
                if metrics is not None:
                    rounds_counter.inc()
                if self.progress is not None:
                    stats.elapsed = monotonic() - started
                    if metrics is not None:
                        refresh_gauges()
                    self.progress(stats)
                if truncated:
                    return finish(StopReason.TIME_BUDGET)

            except WorkerDied as death:
                # -- elastic membership: replace, drain, roll back ----------
                pending: Optional[WorkerDied] = death
                while pending is not None:
                    reassigned += 1
                    if metrics is not None:
                        metrics.inc("parallel.worker_deaths")
                    if reassigned > self.max_reassignments:
                        raise RuntimeError(
                            f"parallel BFS giving up after"
                            f" {self.max_reassignments} worker reassignments"
                            f" (last: {pending})"
                        ) from pending
                    if not transport.replace(pending.wid):
                        raise RuntimeError(
                            f"parallel BFS worker {pending.wid} died and no"
                            f" replacement worker is available"
                            f" ({pending.reason or 'no spare agents'})"
                        ) from pending
                    warnings.warn(
                        f"parallel BFS worker {pending.wid} died"
                        f" ({pending.reason or 'no reason recorded'});"
                        f" reassigned its shard and rolling back to the last"
                        f" committed checkpoint",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    try:
                        # FIFO per-worker channels: once every worker
                        # answers a ping, no stale pre-death reply can
                        # still be in flight.
                        self._drain(transport)

                        presume = None
                        if checkpointer is not None and checkpointer.has_commit():
                            from ..persist.checkpoint import load_parallel_resume

                            presume = load_parallel_resume(checkpointer.run_dir)
                        if presume is not None:
                            stats = self.stats = presume.stats
                            depth = presume.depth
                            violations = list(presume.violations)
                            frontier_sizes = dict(presume.frontier_sizes)
                            if metrics is not None:
                                if presume.metrics:
                                    metrics.restore(presume.metrics)
                                else:
                                    metrics.restore(baseline_snapshot)
                                hoist_instruments()
                            for wid in range(n):
                                transport.send(
                                    wid, ("restore", str(presume.worker_files[wid]))
                                )
                            self._gather("restored", n)
                        else:
                            # No committed checkpoint yet: restart the
                            # exploration from the initial states.
                            for wid in range(n):
                                transport.send(wid, ("restore", None))
                            self._gather("restored", n)
                            stats = self.stats = SearchStats()
                            depth = 0
                            violations = []
                            frontier_sizes = {wid: 0 for wid in range(n)}
                            if metrics is not None:
                                metrics.restore(baseline_snapshot)
                                hoist_instruments()
                            route_seed()
                        membership.append(
                            {
                                "wid": pending.wid,
                                "reason": pending.reason,
                                "recovered": "checkpoint" if presume else "seed",
                                "depth": depth,
                            }
                        )
                        if metrics is not None:
                            metrics.inc("parallel.reassignments")
                        # Keep the cumulative time budget honest across
                        # the rollback.
                        started = monotonic() - stats.elapsed
                        if self.time_budget is not None:
                            deadline = started + self.time_budget
                        pending = None
                    except WorkerDied as again:
                        pending = again
                continue

    # -- plumbing -------------------------------------------------------------

    def _gather(self, kind: str, count: int) -> List[tuple]:
        """Collect ``count`` messages of ``kind``, watching worker health.

        Replies are sorted by worker id before they are returned, so the
        master merges them in a deterministic order regardless of which
        worker (or transport) answered first — this is what makes the
        merged parent edges, and therefore reconstructed counterexample
        traces, byte-identical across runs and transports.
        """
        messages: List[tuple] = []
        while len(messages) < count:
            msg = self._transport.recv(timeout=1.0)
            if msg is None:
                continue
            if msg[0] != kind:  # pragma: no cover - protocol error
                raise RuntimeError(f"unexpected {msg[0]!r} (awaiting {kind!r})")
            messages.append(msg)
        messages.sort(key=lambda m: m[1])
        return messages

    def _drain(self, transport: Any) -> None:
        """Ping/pong barrier: discard stale replies from an aborted round."""
        n = self.workers
        for wid in range(n):
            transport.send(wid, ("ping",))
        pending = set(range(n))
        while pending:
            msg = transport.recv(timeout=1.0)
            if msg is None:
                continue
            if msg[0] == "pong":
                pending.discard(msg[1])
            # anything else is a stale reply from before the death; drop it

    def _build_violation(
        self,
        transport: Any,
        violations: List[_ViolationDesc],
        reducer: Optional[SymmetryReducer],
    ) -> Optional[Violation]:
        """Reconstruct the minimal-depth violation from merged worker edges."""
        if not violations:
            return None
        # Level synchrony guarantees all candidates from the stopping round
        # share the minimal depth; the rest of the key makes the pick
        # deterministic across runs.
        kind, invariant, depth, fp, action, args, branch, target_enc = min(
            violations, key=lambda v: (v[2], v[1], v[0], v[3])
        )
        if self.fast:
            # Traceless workers kept no edges to merge: report the
            # violation with a depth-only pending trace, then (unless the
            # caller opted out) resolve it by serial bounded re-search.
            violation = Violation(invariant, PendingTrace(depth), kind=kind)
            if not self.research:
                return violation
            from .explorer import research_violation  # local: explorer imports us

            return research_violation(
                maybe_compile(self.spec, self.compiled, por=self.por),
                violation,
                symmetry=self.symmetry,
                compiled=self.compiled,
            )
        merged = CompactStore()
        n = self.workers
        for wid in range(n):
            transport.send(wid, ("edges",))
        for _, _, edges, roots in self._gather("edges", n):
            for edge_fp, parent_fp, edge_action in edges:
                if parent_fp is not None:
                    merged.record(edge_fp, parent_fp, edge_action)
            for root_fp, enc in roots:
                merged.record_init(root_fp, decode(enc))
        canonical = reducer.canonical if reducer is not None else None
        trace = reconstruct_trace(self.spec, merged, fp, canonical, fingerprint)
        if kind == "transition":
            trace = trace.extend(
                TraceStep(action, tuple(args), decode(target_enc), branch)
            )
        return Violation(invariant, trace, kind=kind)


def parallel_bfs(
    spec: Spec,
    workers: int = 2,
    **kwargs: Any,
) -> SearchResult:
    """Run a sharded parallel BFS of ``spec`` across ``workers`` processes.

    Accepts the :class:`ParallelBFS` options (``symmetry``, ``max_states``,
    ``max_depth``, ``time_budget``, ``stop_on_violation``, ``progress``,
    ``transport``, ...).  Without an explicit ``transport``, falls back
    to the serial explorer when ``workers <= 1`` or the platform has no
    ``fork`` start method — loudly: a ``RuntimeWarning`` is emitted and
    the ``parallel.fallback_serial`` counter incremented, because a
    degraded-to-serial "parallel" run is a capacity surprise worth
    noticing.
    """
    if kwargs.get("transport") is None and (
        workers <= 1 or "fork" not in multiprocessing.get_all_start_methods()
    ):
        if workers <= 1:
            reason = f"workers={workers} leaves nothing to parallelize"
        else:
            reason = "the platform has no 'fork' start method"
        warnings.warn(
            f"parallel BFS falling back to the serial explorer: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )
        metrics = kwargs.get("metrics")
        if metrics is not None:
            metrics.inc(FALLBACK_SERIAL)
        kwargs.pop("transport", None)
        kwargs.pop("max_reassignments", None)
        from .explorer import BFSExplorer

        return BFSExplorer(spec, **kwargs).run()
    return ParallelBFS(spec, workers=workers, **kwargs).run()
