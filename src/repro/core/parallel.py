"""Sharded parallel BFS: N engine workers over a partitioned frontier.

The scalability story of TLC-style stateful exploration is a visited-
fingerprint set partitioned across workers.  This module provides that
layer for the pure-Python kernel: breadth-first search driven by a
master process and ``N`` worker processes, with the fingerprint space
partitioned by ``fp % N`` ("owner computes").  It exists because
:func:`repro.core.state.fingerprint` is canonical — a blake2b digest of
the canonical state codec — so every process assigns every state to the
same owner without any coordination.

The search is level-synchronous; each round covers one BFS depth in two
phases:

1. **expand** — every worker pops its slice of the current frontier,
   enumerates successors, checks transition invariants, and fingerprints
   each (canonicalized) child.  Children owned by the worker itself are
   deduplicated against its local :class:`~repro.core.engine.CompactStore`
   on the spot; foreign children are batched per owner as
   ``(codec bytes, fingerprint, parent fingerprint, action, depth)``.
2. **absorb** — the master routes the batches and each owner merges
   them: duplicates are dropped, new states are recorded with their
   parent edge, state invariants are checked once per distinct state
   (the same per-state/per-edge check counts as the serial engine), and
   survivors join the owner's next frontier.

The master aggregates per-round deltas into the unified
:class:`~repro.core.engine.SearchStats`, decides the
:class:`~repro.core.engine.StopReason` (violation, ``max_states``,
``max_depth``, time budget, exhaustion), and — because rounds are
level-synchronous — the first violating round still yields a
minimal-depth counterexample.  Counterexample traces are rebuilt by
merging every worker's parent edges (``StateStore.edges()``) into one
store and re-executing from the initial state, exactly like the serial
explorer.

Workers are forked, so specs need not be picklable; all cross-process
state travels as canonical codec bytes.  On platforms without ``fork``
(or with ``workers <= 1``) :func:`parallel_bfs` transparently falls back
to the serial :class:`~repro.core.explorer.BFSExplorer`.

``fast=True`` switches every worker to the traceless
:class:`~repro.core.engine.FingerprintOnlyStore` and drops the parent
fingerprint and action name from routed batches — foreign children
travel as ``(codec bytes, fingerprint, depth)`` triples, since no owner
keeps edges.  A violation is then reported with a
:class:`~repro.core.trace.PendingTrace` and (with ``research=True``)
immediately resolved by a serial bounded re-search
(:func:`repro.core.explorer.research_violation`).  ``por=True`` makes
every worker compile its spec with partial-order reduction; pruning is
deterministic, so all workers agree on the reduced successor relation.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback
from collections import defaultdict, deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.metrics import ACTION_FIRES, CODEC_CHUNKS, SIZE_BOUNDS, Histogram
from .compile import compile_disabled, maybe_compile
from .engine import (
    CompactStore,
    FingerprintOnlyStore,
    SearchResult,
    SearchStats,
    StopReason,
    reconstruct_trace,
)
from .spec import Spec
from .state import changed_keys, codec_stats, decode, encode, fingerprint
from .symmetry import SymmetryReducer
from .trace import PendingTrace, TraceStep
from .violation import Violation

__all__ = ["parallel_bfs", "ParallelBFS"]

#: violation descriptor: (kind, invariant, depth, fp, action, args, branch,
#: encoded target or None) — everything the master needs to rebuild the
#: Violation once the workers' parent edges are merged.
_ViolationDesc = Tuple[str, str, int, int, str, tuple, str, Optional[bytes]]

_ROOT_ACTION = "<init>"


def _make_reducer(spec: Spec, symmetry: bool) -> Optional[SymmetryReducer]:
    if not symmetry:
        return None
    return SymmetryReducer(spec.symmetry_sets(), key=fingerprint)


def _worker_main(
    wid: int,
    n_workers: int,
    spec: Spec,
    symmetry: bool,
    stop_on_violation: bool,
    metrics_on: bool,
    compiled: bool,
    fast: bool,
    por: bool,
    in_q: Any,
    out_q: Any,
) -> None:
    """One shard worker: owns fingerprints with ``fp % n_workers == wid``."""
    try:
        # Workers are forked with the *source* spec and compile locally:
        # compilation is cheap, per-process, and this keeps the fork
        # payload identical whether or not the run is compiled.  POR
        # pruning is a pure function of the spec's ActionMeta, so every
        # worker derives the same reduced successor relation.
        spec = maybe_compile(spec, compiled, por=por)
        reducer = _make_reducer(spec, symmetry)
        canon = reducer.canonical if reducer is not None else None
        store = FingerprintOnlyStore() if fast else CompactStore()
        frontier: deque = deque()
        constraint = spec.state_constraint
        successors = spec.successors
        check_state = spec.check_state
        check_transition = spec.check_transition
        monotonic = time.monotonic
        # Incremental invariant checking, mirroring the serial engine:
        # touched keys are read off the functional-update chain before
        # fingerprinting consumes it; state-invariant skipping requires
        # clean parents, which stop_on_violation guarantees.
        incremental = getattr(spec, "incremental", False)
        changed_of = changed_keys if incremental else None
        skip_state_invs = incremental and stop_on_violation

        while True:
            msg = in_q.get()
            op = msg[0]

            if op == "stop":
                return

            if op == "absorb":
                added = 0
                violations: List[_ViolationDesc] = []
                if fast:
                    # Traceless batches carry no parent edge or action —
                    # just (codec bytes, fingerprint, depth).
                    for enc, fp, depth in msg[1]:
                        if store.seen(fp):
                            continue
                        state = decode(enc)
                        store.record(fp, None, "")
                        added += 1
                        bad = check_state(state)
                        if bad is not None:
                            violations.append(
                                ("state", bad, depth, fp, "", (), "", None)
                            )
                        frontier.append((state, fp, depth))
                else:
                    for enc, fp, parent_fp, action, depth in msg[1]:
                        if store.seen(fp):
                            continue
                        state = decode(enc)
                        if parent_fp is None:
                            store.record_init(fp, state)
                        else:
                            store.record(fp, parent_fp, action)
                        added += 1
                        bad = check_state(state)
                        if bad is not None:
                            violations.append(
                                ("state", bad, depth, fp, action, (), "", None)
                            )
                        frontier.append((state, fp, depth))
                out_q.put(("absorbed", wid, added, violations, len(frontier)))

            elif op == "expand":
                deadline = msg[1]
                current, frontier = frontier, deque()
                transitions = pruned = added = 0
                truncated = stopping = False
                batches: Dict[int, list] = defaultdict(list)
                violations = []
                # Per-round observability deltas, shipped to the master
                # with the "expanded" reply and merged there.
                fires: Optional[Dict[str, int]] = {} if metrics_on else None
                fanout = (
                    Histogram("engine.fanout", SIZE_BOUNDS) if metrics_on else None
                )
                codec_base = codec_stats() if metrics_on else None
                while current and not stopping:
                    state, fp, depth = current.popleft()
                    if deadline is not None and monotonic() > deadline:
                        truncated = True
                        break
                    if not constraint(state):
                        pruned += 1
                        continue
                    fanout_base = transitions
                    for transition in successors(state):
                        transitions += 1
                        if fires is not None:
                            name = transition.action
                            fires[name] = fires.get(name, 0) + 1
                        changed = (
                            changed_of(transition.target, state)
                            if changed_of is not None
                            else None
                        )
                        bad = check_transition(state, transition, changed)
                        if bad is not None:
                            violations.append(
                                (
                                    "transition",
                                    bad,
                                    depth + 1,
                                    fp,
                                    transition.action,
                                    tuple(transition.args),
                                    transition.branch,
                                    encode(transition.target),
                                )
                            )
                            if stop_on_violation:
                                stopping = True
                                break
                        target = transition.target
                        child = canon(target) if canon is not None else target
                        child_fp = fingerprint(child)
                        if child_fp % n_workers == wid:
                            if store.seen(child_fp):
                                continue
                            store.record(child_fp, fp, transition.action)
                            added += 1
                            bad = check_state(
                                child, changed if skip_state_invs else None
                            )
                            if bad is not None:
                                violations.append(
                                    (
                                        "state",
                                        bad,
                                        depth + 1,
                                        child_fp,
                                        transition.action,
                                        (),
                                        "",
                                        None,
                                    )
                                )
                                if stop_on_violation:
                                    stopping = True
                                    break
                            frontier.append((child, child_fp, depth + 1))
                        elif fast:
                            batches[child_fp % n_workers].append(
                                (encode(child), child_fp, depth + 1)
                            )
                        else:
                            batches[child_fp % n_workers].append(
                                (
                                    encode(child),
                                    child_fp,
                                    fp,
                                    transition.action,
                                    depth + 1,
                                )
                            )
                    if fanout is not None:
                        fanout.observe(transitions - fanout_base)
                if metrics_on:
                    codec_now = codec_stats()
                    codec_delta = {
                        key: codec_now[key] - codec_base[key]
                        for key in codec_now
                        if codec_now[key] != codec_base[key]
                    }
                    obs = (fires, fanout.to_dict(), codec_delta)
                else:
                    obs = None
                out_q.put(
                    (
                        "expanded",
                        wid,
                        transitions,
                        pruned,
                        added,
                        dict(batches),
                        violations,
                        len(frontier),
                        truncated,
                        obs,
                    )
                )

            elif op == "edges":
                out_q.put(
                    (
                        "edges",
                        wid,
                        list(store.edges()),
                        [(fp, encode(state)) for fp, state in store.roots()],
                    )
                )

            elif op == "checkpoint":
                # Local import: persist depends on core, never the reverse.
                from ..persist.checkpoint import write_worker_checkpoint

                write_worker_checkpoint(msg[1], store, frontier)
                out_q.put(("checkpointed", wid))

            elif op == "restore":
                from ..persist.checkpoint import load_worker_checkpoint

                frontier = deque(load_worker_checkpoint(msg[1], store))
                out_q.put(("restored", wid, len(frontier)))

            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown parallel-BFS op {op!r}")
    except BaseException:
        out_q.put(("error", wid, traceback.format_exc()))


class ParallelBFS:
    """Master driver for the sharded parallel breadth-first search.

    Mirrors the serial :class:`~repro.core.explorer.BFSExplorer` surface:
    one instance runs one exploration and :meth:`run` returns the unified
    :class:`~repro.core.engine.SearchResult`.  ``max_states`` is checked
    between rounds, so the distinct-state count can overshoot the bound
    by up to one BFS level (the serial explorer stops exactly at the
    bound).
    """

    def __init__(
        self,
        spec: Spec,
        workers: int = 2,
        symmetry: bool = False,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_on_violation: bool = True,
        progress: Optional[Callable[[SearchStats], None]] = None,
        progress_interval: int = 50_000,  # accepted for API parity; per-round here
        checkpointer: Optional[Any] = None,
        resume: Optional[Any] = None,
        metrics: Optional[Any] = None,
        compiled: bool = True,
        fast: bool = False,
        por: bool = False,
        research: bool = True,
    ):
        if por and (not compiled or compile_disabled()):
            # Fail in the master, before forking: maybe_compile raises
            # the canonical SpecError for this misconfiguration.
            maybe_compile(spec, compiled, por=True)
        self.spec = spec
        self.compiled = compiled
        self.workers = max(1, int(workers))
        self.symmetry = symmetry
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.stop_on_violation = stop_on_violation
        self.progress = progress
        self.checkpointer = checkpointer
        self.resume = resume
        self.metrics = metrics
        self.fast = bool(fast)
        self.por = bool(por)
        self.research = bool(research)
        self.stats = SearchStats()

    # -- the search ----------------------------------------------------------

    def run(self) -> SearchResult:
        ctx = multiprocessing.get_context("fork")
        n = self.workers
        in_qs = [ctx.Queue() for _ in range(n)]
        out_q = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    wid,
                    n,
                    self.spec,
                    self.symmetry,
                    self.stop_on_violation,
                    self.metrics is not None,
                    self.compiled,
                    self.fast,
                    self.por,
                    in_qs[wid],
                    out_q,
                ),
                daemon=True,
                name=f"sandtable-bfs-{wid}",
            )
            for wid in range(n)
        ]
        for proc in procs:
            proc.start()
        self._procs = procs
        self._out_q = out_q
        try:
            return self._drive(in_qs, out_q)
        finally:
            for in_q in in_qs:
                try:
                    in_q.put(("stop",))
                except Exception:
                    pass
            for proc in procs:
                proc.join(timeout=5)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - hard shutdown
                    proc.terminate()
                    proc.join(timeout=5)
            for in_q in in_qs + [out_q]:
                in_q.close()
                in_q.cancel_join_thread()

    def _drive(self, in_qs: list, out_q: Any) -> SearchResult:
        resume = self.resume
        checkpointer = self.checkpointer
        stats = self.stats = SearchStats() if resume is None else resume.stats
        monotonic = time.monotonic
        # Backdated on resume, so the time budget stays cumulative.
        started = monotonic() - stats.elapsed
        deadline = (
            started + self.time_budget if self.time_budget is not None else None
        )
        n = self.workers
        stop_on_violation = self.stop_on_violation
        reducer = _make_reducer(self.spec, self.symmetry)
        depth = 0

        metrics = self.metrics
        if metrics is not None:
            if resume is not None:
                snapshot = getattr(resume, "metrics", None)
                if snapshot:
                    # Discard anything a killed run counted past its last
                    # committed checkpoint; the rounds re-run from here.
                    metrics.restore(snapshot)
            fires_table = metrics.counts(ACTION_FIRES)
            for action in self.spec.actions():
                fires_table.setdefault(action.name, 0)
            fanout_hist = metrics.histogram("engine.fanout", SIZE_BOUNDS)
            batch_hist = metrics.histogram("parallel.batch_sizes", SIZE_BOUNDS)
            rounds_counter = metrics.counter("parallel.rounds")
            shard_states = metrics.counts("parallel.shard_states")
            chunk_counts = metrics.counts(CODEC_CHUNKS)
            queue_gauge = metrics.gauge("engine.queue_depth")
            rate_gauge = metrics.gauge("engine.states_per_sec")

        if resume is not None:
            # Shard ownership is fp % n: a checkpoint only makes sense to
            # the worker count that wrote it.
            if resume.workers != n:
                raise ValueError(
                    f"checkpoint was written by {resume.workers} workers;"
                    f" resume with --workers {resume.workers} (got {n})"
                )
            violations: List[_ViolationDesc] = list(resume.violations)
            frontier_sizes: Dict[int, int] = dict(resume.frontier_sizes)
            for wid in range(n):
                in_qs[wid].put(("restore", str(resume.worker_files[wid])))
            self._gather("restored", n)
            depth = resume.depth
        else:
            violations = []
            frontier_sizes = {wid: 0 for wid in range(n)}

            # -- seed: route deduplicated initial states to their owners ----
            seed_batches: Dict[int, list] = defaultdict(list)
            seeded = set()
            for init in self.spec.init_states():
                canon = reducer.canonical(init) if reducer is not None else init
                fp = fingerprint(canon)
                if fp in seeded:
                    continue
                seeded.add(fp)
                if self.fast:
                    seed_batches[fp % n].append((encode(canon), fp, 0))
                else:
                    seed_batches[fp % n].append(
                        (encode(canon), fp, None, _ROOT_ACTION, 0)
                    )
            targets = sorted(seed_batches)
            for wid in targets:
                in_qs[wid].put(("absorb", seed_batches[wid]))
            for _, wid, added, viols, size in self._gather(
                "absorbed", len(targets)
            ):
                stats.distinct_states += added
                violations.extend(viols)
                frontier_sizes[wid] = size
                if metrics is not None and added:
                    key = str(wid)
                    shard_states[key] = shard_states.get(key, 0) + added

        # -- level-synchronous rounds ---------------------------------------
        def refresh_gauges() -> None:
            queue_gauge.set(sum(frontier_sizes.values()))
            rate_gauge.set(
                stats.distinct_states / stats.elapsed if stats.elapsed > 0 else 0.0
            )

        def finish(reason: StopReason) -> SearchResult:
            stats.elapsed = monotonic() - started
            if metrics is not None:
                refresh_gauges()
            violation = self._build_violation(in_qs, violations, reducer)
            exhausted = reason is StopReason.EXHAUSTED and (
                violation is None or not stop_on_violation
            )
            return SearchResult(stats, violation, exhausted, reason)

        while True:
            if violations and stop_on_violation:
                return finish(StopReason.VIOLATION)
            if deadline is not None and monotonic() > deadline:
                return finish(StopReason.TIME_BUDGET)
            if (
                self.max_states is not None
                and stats.distinct_states >= self.max_states
            ):
                return finish(StopReason.MAX_STATES)
            if not any(frontier_sizes.values()):
                return finish(StopReason.EXHAUSTED)
            if self.max_depth is not None and depth >= self.max_depth:
                # BFS semantics: states at the depth bound are not expanded.
                stats.max_depth = self.max_depth
                return finish(StopReason.EXHAUSTED)

            # Round boundary: every recorded state is consistent with the
            # pending per-shard frontiers, so checkpoint here if due —
            # each worker dumps its shard, then the master manifest commit
            # publishes the fleet-wide snapshot atomically.
            if checkpointer is not None and checkpointer.due(stats):
                stats.elapsed = monotonic() - started
                for wid in range(n):
                    in_qs[wid].put(
                        ("checkpoint", str(checkpointer.worker_path(wid)))
                    )
                self._gather("checkpointed", n)
                checkpointer.commit(
                    workers=n,
                    depth=depth,
                    stats=stats,
                    frontier_sizes=dict(frontier_sizes),
                    violations=violations,
                    metrics=metrics.snapshot() if metrics is not None else None,
                )

            # expand: every worker pops its slice of the depth-`depth` level
            for in_q in in_qs:
                in_q.put(("expand", deadline))
            round_batches: Dict[int, list] = defaultdict(list)
            truncated = False
            for (
                _,
                wid,
                transitions,
                pruned,
                added,
                batches,
                viols,
                size,
                was_truncated,
                obs,
            ) in self._gather("expanded", n):
                stats.transitions += transitions
                stats.pruned += pruned
                stats.distinct_states += added
                violations.extend(viols)
                frontier_sizes[wid] = size
                truncated = truncated or was_truncated
                for owner, items in batches.items():
                    round_batches[owner].extend(items)
                if metrics is not None and obs is not None:
                    round_fires, fanout_state, codec_delta = obs
                    for name, count in round_fires.items():
                        fires_table[name] = fires_table.get(name, 0) + count
                    fanout_hist.merge(fanout_state)
                    for key, count in codec_delta.items():
                        chunk_counts[key] = chunk_counts.get(key, 0) + count
                    if added:
                        key = str(wid)
                        shard_states[key] = shard_states.get(key, 0) + added
            stats.max_depth = max(stats.max_depth, depth)

            # absorb: owners dedupe and enqueue the routed children
            targets = sorted(round_batches)
            for wid in targets:
                in_qs[wid].put(("absorb", round_batches[wid]))
                if metrics is not None:
                    batch_hist.observe(len(round_batches[wid]))
            for _, wid, added, viols, size in self._gather(
                "absorbed", len(targets)
            ):
                stats.distinct_states += added
                violations.extend(viols)
                frontier_sizes[wid] = size
                if metrics is not None and added:
                    key = str(wid)
                    shard_states[key] = shard_states.get(key, 0) + added

            depth += 1
            if metrics is not None:
                rounds_counter.inc()
            if self.progress is not None:
                stats.elapsed = monotonic() - started
                if metrics is not None:
                    refresh_gauges()
                self.progress(stats)
            if truncated:
                return finish(StopReason.TIME_BUDGET)

    # -- plumbing -------------------------------------------------------------

    def _gather(self, kind: str, count: int) -> List[tuple]:
        """Collect ``count`` messages of ``kind``, watching worker health."""
        messages: List[tuple] = []
        while len(messages) < count:
            try:
                msg = self._out_q.get(timeout=1.0)
            except queue_mod.Empty:
                for proc in self._procs:
                    if not proc.is_alive():
                        raise RuntimeError(
                            f"parallel BFS worker {proc.name} died unexpectedly"
                        ) from None
                continue
            if msg[0] == "error":
                raise RuntimeError(
                    f"parallel BFS worker {msg[1]} failed:\n{msg[2]}"
                )
            if msg[0] != kind:  # pragma: no cover - protocol error
                raise RuntimeError(f"unexpected {msg[0]!r} (awaiting {kind!r})")
            messages.append(msg)
        return messages

    def _build_violation(
        self,
        in_qs: list,
        violations: List[_ViolationDesc],
        reducer: Optional[SymmetryReducer],
    ) -> Optional[Violation]:
        """Reconstruct the minimal-depth violation from merged worker edges."""
        if not violations:
            return None
        # Level synchrony guarantees all candidates from the stopping round
        # share the minimal depth; the rest of the key makes the pick
        # deterministic across runs.
        kind, invariant, depth, fp, action, args, branch, target_enc = min(
            violations, key=lambda v: (v[2], v[1], v[0], v[3])
        )
        if self.fast:
            # Traceless workers kept no edges to merge: report the
            # violation with a depth-only pending trace, then (unless the
            # caller opted out) resolve it by serial bounded re-search.
            violation = Violation(invariant, PendingTrace(depth), kind=kind)
            if not self.research:
                return violation
            from .explorer import research_violation  # local: explorer imports us

            return research_violation(
                maybe_compile(self.spec, self.compiled, por=self.por),
                violation,
                symmetry=self.symmetry,
                compiled=self.compiled,
            )
        merged = CompactStore()
        for in_q in in_qs:
            in_q.put(("edges",))
        for _, _, edges, roots in self._gather("edges", len(in_qs)):
            for edge_fp, parent_fp, edge_action in edges:
                if parent_fp is not None:
                    merged.record(edge_fp, parent_fp, edge_action)
            for root_fp, enc in roots:
                merged.record_init(root_fp, decode(enc))
        canonical = reducer.canonical if reducer is not None else None
        trace = reconstruct_trace(self.spec, merged, fp, canonical, fingerprint)
        if kind == "transition":
            trace = trace.extend(
                TraceStep(action, tuple(args), decode(target_enc), branch)
            )
        return Violation(invariant, trace, kind=kind)


def parallel_bfs(
    spec: Spec,
    workers: int = 2,
    **kwargs: Any,
) -> SearchResult:
    """Run a sharded parallel BFS of ``spec`` across ``workers`` processes.

    Accepts the :class:`ParallelBFS` options (``symmetry``, ``max_states``,
    ``max_depth``, ``time_budget``, ``stop_on_violation``, ``progress``).
    Falls back to the serial explorer when ``workers <= 1`` or the
    platform has no ``fork`` start method.
    """
    if workers <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        from .explorer import BFSExplorer

        return BFSExplorer(spec, **kwargs).run()
    return ParallelBFS(spec, workers=workers, **kwargs).run()
