"""Constraint ranking (Algorithm 1, §3.3).

Model checking an unbounded distributed-system spec needs bounds: a
*configuration* (number of nodes, workload values) and a *budget
constraint* (maximum timeouts, failures, client requests, message-buffer
sizes).  For each configuration, SandTable random-walks the spec under
every candidate constraint, collects branch coverage, event diversity and
depth, and ranks the constraints: coverage descending, then diversity
descending, then depth ascending (a smaller estimated space lets BFS run
exhaustively within the time budget).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .simulation import SimulationResult, simulate
from .spec import Spec

__all__ = ["ConstraintScore", "RankedConstraints", "default_sort_key", "rank_constraints"]


@dataclasses.dataclass
class ConstraintScore:
    """Random-walk metrics for one (configuration, constraint) pair."""

    constraint: Mapping[str, Any]
    branch_coverage: int
    event_diversity: int
    mean_depth: float
    max_depth: int
    simulation: SimulationResult

    def as_row(self) -> Dict[str, Any]:
        return {
            "constraint": dict(self.constraint),
            "branch_coverage": self.branch_coverage,
            "event_diversity": self.event_diversity,
            "mean_depth": round(self.mean_depth, 2),
            "max_depth": self.max_depth,
        }


@dataclasses.dataclass
class RankedConstraints:
    """Constraints for one configuration, best first."""

    config: Mapping[str, Any]
    scores: List[ConstraintScore]

    def top(self, n: int = 3) -> List[ConstraintScore]:
        return self.scores[:n]

    @property
    def best(self) -> ConstraintScore:
        return self.scores[0]


def default_sort_key(score: ConstraintScore) -> Tuple[int, int, float]:
    """The paper's built-in ordering: coverage desc, diversity desc, depth asc."""
    return (-score.branch_coverage, -score.event_diversity, score.max_depth)


def rank_constraints(
    spec_factory: Callable[[Mapping[str, Any], Mapping[str, Any]], Spec],
    configs: Sequence[Mapping[str, Any]],
    constraints: Sequence[Mapping[str, Any]],
    n_walks: int = 50,
    max_depth: int = 200,
    seed: int = 0,
    sort_key: Optional[Callable[[ConstraintScore], Any]] = None,
) -> List[RankedConstraints]:
    """Algorithm 1: rank every constraint for every configuration.

    ``spec_factory(config, constraint)`` instantiates the spec for one
    configuration/constraint pair.  Returns one :class:`RankedConstraints`
    per configuration, with constraints sorted best-first.
    """
    key = sort_key or default_sort_key
    ranked: List[RankedConstraints] = []
    for config in configs:
        scores: List[ConstraintScore] = []
        for constraint in constraints:
            spec = spec_factory(config, constraint)
            result = simulate(
                spec,
                n_walks=n_walks,
                max_depth=max_depth,
                seed=seed,
                check_invariants=False,
            )
            scores.append(
                ConstraintScore(
                    constraint=constraint,
                    branch_coverage=result.branch_coverage,
                    event_diversity=result.event_diversity,
                    mean_depth=result.mean_depth,
                    max_depth=result.max_depth,
                    simulation=result,
                )
            )
        scores.sort(key=key)
        ranked.append(RankedConstraints(config=config, scores=scores))
    return ranked
