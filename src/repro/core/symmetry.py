"""Symmetry reduction (§3.3).

Distributed-system models are usually symmetric in node identity and in
workload values: permuting them does not change whether an action satisfies
an invariant.  The explorer therefore stores only one canonical
representative per symmetry orbit, shrinking the state space by up to
``|nodes|! * |values|!``.

A spec declares its symmetry sets via :meth:`Spec.symmetry_sets`.  The
canonical form of a state is the permuted variant with the smallest
fingerprint under the supplied key function; the permutation group is the
direct product of the permutations of each symmetry set.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from .state import Rec, fingerprint, substitute

__all__ = ["permutations_of_sets", "canonicalize", "SymmetryReducer"]


def permutations_of_sets(sets: Sequence[Tuple[Any, ...]]) -> Iterator[Dict[Any, Any]]:
    """All substitution maps from the product of per-set permutations.

    The identity map is always yielded first.
    """
    per_set = [list(itertools.permutations(members)) for members in sets]
    for combo in itertools.product(*per_set):
        mapping: Dict[Any, Any] = {}
        for members, permuted in zip(sets, combo):
            mapping.update(zip(members, permuted))
        yield mapping


def canonicalize(
    state: Rec,
    sets: Sequence[Tuple[Any, ...]],
    key: Callable[[Rec], Any] = fingerprint,
) -> Rec:
    """Return the canonical representative of ``state``'s symmetry orbit."""
    best = state
    best_fp = key(state)
    for mapping in permutations_of_sets(sets):
        if all(k == v for k, v in mapping.items()):
            continue
        candidate = substitute(state, mapping)
        fp = key(candidate)
        if fp < best_fp:
            best, best_fp = candidate, fp
    return best


class SymmetryReducer:
    """Caches the permutation maps for a spec's symmetry sets."""

    def __init__(
        self,
        sets: Sequence[Tuple[Any, ...]],
        key: Callable[[Rec], Any] = fingerprint,
    ):
        self.sets = [tuple(members) for members in sets]
        self.key = key
        self._maps: List[Dict[Any, Any]] = [
            mapping
            for mapping in permutations_of_sets(self.sets)
            if any(k != v for k, v in mapping.items())
        ]

    @property
    def group_size(self) -> int:
        return len(self._maps) + 1

    def canonical(self, state: Rec) -> Rec:
        if not self._maps:
            return state
        best = state
        best_fp = self.key(state)
        for mapping in self._maps:
            candidate = substitute(state, mapping)
            fp = self.key(candidate)
            if fp < best_fp:
                best, best_fp = candidate, fp
        return best

    def orbit(self, state: Rec) -> List[Rec]:
        """All distinct states in the symmetry orbit of ``state``."""
        seen = {state}
        for mapping in self._maps:
            seen.add(substitute(state, mapping))
        return list(seen)
