"""Guided execution of a specification along a chosen scenario.

Model checking finds traces automatically; sometimes the opposite is
needed — driving the spec down a *known* event sequence (regenerating the
paper's Figure 6/7 timing diagrams, seeding conformance-checking runs, or
writing regression tests for a specific interleaving).

A scenario is a list of *picks*.  Each pick selects one enabled transition
of the current state:

* ``"ActionName"`` — the unique enabled transition of that action;
* ``("ActionName", arg0, arg1, ...)`` — prefix-match on the transition's
  arguments (e.g. ``("ReceiveMessage", "n1", "n2")`` delivers the head of
  the n1->n2 channel);
* a callable ``pick(transition) -> bool``.

Invariants are checked after every step; the scenario run reports the
first violation together with the trace so far.  Guided runs execute on
the shared exploration kernel (:mod:`repro.core.engine`) under a
:class:`~repro.core.engine.ScenarioFrontier` strategy.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence, Tuple, Union

from .compile import maybe_compile
from .engine import (
    ExplorationEngine,
    NullStateStore,
    ScenarioError,
    ScenarioFrontier,
    SearchStats,
    StepChecker,
    StopReason,
)
from .spec import Spec, Transition
from .trace import Trace
from .violation import Violation

__all__ = ["ScenarioError", "ScenarioResult", "run_scenario"]

Pick = Union[str, Tuple, Callable[[Transition], bool]]


@dataclasses.dataclass
class ScenarioResult:
    """The trace driven by a scenario, plus any invariant violation."""

    trace: Trace
    violation: Optional[Violation] = None
    stop_reason: StopReason = StopReason.COMPLETE
    stats: Optional[SearchStats] = None

    @property
    def final_state(self):
        return self.trace.final_state

    @property
    def found_violation(self) -> bool:
        return self.violation is not None


def run_scenario(
    spec: Spec,
    picks: Sequence[Pick],
    check_invariants: bool = True,
    allow_ambiguous: bool = False,
    stop_on_violation: bool = True,
    compiled: bool = True,
) -> ScenarioResult:
    """Drive ``spec`` through ``picks``, one transition per pick.

    Raises :class:`ScenarioError` if a pick matches nothing, or matches
    more than one transition while ``allow_ambiguous`` is false (in which
    case the first match would be taken).
    """
    spec = maybe_compile(spec, compiled)
    strategy = ScenarioFrontier(picks, allow_ambiguous=allow_ambiguous)
    engine = ExplorationEngine(
        spec,
        strategy,
        store=NullStateStore(),
        checker=StepChecker(spec, check_invariants=check_invariants),
        stop_on_violation=stop_on_violation,
    )
    result = engine.run()
    violation = result.violation
    if violation is not None and stop_on_violation:
        # The run stopped at the violation: its trace (which includes the
        # violating step) is the scenario trace so far.
        trace = violation.trace
    else:
        trace = strategy.trace
    return ScenarioResult(
        trace=trace,
        violation=violation,
        stop_reason=result.stop_reason,
        stats=result.stats,
    )
