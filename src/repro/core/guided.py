"""Guided execution of a specification along a chosen scenario.

Model checking finds traces automatically; sometimes the opposite is
needed — driving the spec down a *known* event sequence (regenerating the
paper's Figure 6/7 timing diagrams, seeding conformance-checking runs, or
writing regression tests for a specific interleaving).

A scenario is a list of *picks*.  Each pick selects one enabled transition
of the current state:

* ``"ActionName"`` — the unique enabled transition of that action;
* ``("ActionName", arg0, arg1, ...)`` — prefix-match on the transition's
  arguments (e.g. ``("ReceiveMessage", "n1", "n2")`` delivers the head of
  the n1->n2 channel);
* a callable ``pick(transition) -> bool``.

Invariants are checked after every step; the scenario run reports the
first violation together with the trace so far.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple, Union

from .spec import Spec, Transition
from .trace import Trace, TraceStep
from .violation import Violation

__all__ = ["ScenarioError", "ScenarioResult", "run_scenario"]

Pick = Union[str, Tuple, Callable[[Transition], bool]]


class ScenarioError(Exception):
    """Raised when a pick matches no enabled transition (or several)."""


@dataclasses.dataclass
class ScenarioResult:
    """The trace driven by a scenario, plus any invariant violation."""

    trace: Trace
    violation: Optional[Violation] = None

    @property
    def final_state(self):
        return self.trace.final_state

    @property
    def found_violation(self) -> bool:
        return self.violation is not None


def _matches(pick: Pick, transition: Transition) -> bool:
    if callable(pick) and not isinstance(pick, str):
        return bool(pick(transition))
    if isinstance(pick, str):
        return transition.action == pick
    name, *args = pick
    if transition.action != name:
        return False
    return tuple(transition.args[: len(args)]) == tuple(args)


def run_scenario(
    spec: Spec,
    picks: Sequence[Pick],
    check_invariants: bool = True,
    allow_ambiguous: bool = False,
    stop_on_violation: bool = True,
) -> ScenarioResult:
    """Drive ``spec`` through ``picks``, one transition per pick.

    Raises :class:`ScenarioError` if a pick matches nothing, or matches
    more than one transition while ``allow_ambiguous`` is false (in which
    case the first match would be taken).
    """
    inits = list(spec.init_states())
    state = inits[0]
    trace = Trace(state)
    violation: Optional[Violation] = None

    for index, pick in enumerate(picks):
        candidates: List[Transition] = [
            t for t in spec.successors(state) if _matches(pick, t)
        ]
        if not candidates:
            enabled = sorted({t.action for t in spec.successors(state)})
            raise ScenarioError(
                f"pick #{index} ({pick!r}) matches no enabled transition;"
                f" enabled actions: {enabled}"
            )
        if len(candidates) > 1 and not allow_ambiguous:
            labels = [t.label for t in candidates[:6]]
            raise ScenarioError(
                f"pick #{index} ({pick!r}) is ambiguous: {labels}"
            )
        transition = candidates[0]
        step = TraceStep(
            transition.action, transition.args, transition.target, transition.branch
        )
        if check_invariants and violation is None:
            bad = spec.check_transition(state, transition)
            if bad is not None:
                violation = Violation(bad, trace.extend(step), kind="transition")
        trace = trace.extend(step)
        state = transition.target
        if check_invariants and violation is None:
            bad = spec.check_state(state)
            if bad is not None:
                violation = Violation(bad, trace, kind="state")
        if violation is not None and stop_on_violation:
            break

    return ScenarioResult(trace=trace, violation=violation)
