"""Stateful breadth-first model checking (§3.3).

The explorer is the analogue of TLC's BFS mode: it keeps a fingerprint set
of visited states (stateful exploration — no state is expanded twice),
checks state and transition invariants, prunes with the spec's state
constraint, and optionally canonicalizes states under the spec's symmetry
sets.  Because the search is breadth-first, the first counterexample found
for any invariant has minimal depth (§5.1.1).

Since the exploration-kernel refactor this module is a thin configuration
layer over :mod:`repro.core.engine`: a :class:`~repro.core.engine.FIFOFrontier`
strategy plus an :class:`~repro.core.engine.InMemoryStateStore` running in
the shared :class:`~repro.core.engine.ExplorationEngine`.  Counterexample
traces are reconstructed from parent fingerprints by re-executing from the
initial state and matching successor fingerprints, which keeps per-state
memory to a couple of machine words.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .compile import maybe_compile
from .engine import (
    ExplorationEngine,
    FIFOFrontier,
    InMemoryStateStore,
    SearchResult,
    SearchStats,
    StateStore,
    StepChecker,
    find_matching_step,
    reconstruct_trace,
)
from .spec import Spec
from .state import Rec, fingerprint, strong_fingerprint
from .symmetry import SymmetryReducer
from .trace import Trace, TraceStep
from .violation import Violation

__all__ = ["BFSStats", "BFSResult", "BFSExplorer", "bfs_explore"]

#: BFS stats/results are the engine's unified types (kept under their
#: historical names for source compatibility).
BFSStats = SearchStats
BFSResult = SearchResult


class BFSExplorer:
    """Breadth-first stateful exploration of a spec's state space."""

    def __init__(
        self,
        spec: Spec,
        symmetry: bool = False,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_on_violation: bool = True,
        strong_fingerprints: bool = False,
        progress: Optional[Callable[[BFSStats], None]] = None,
        progress_interval: int = 50_000,
        store: Optional[StateStore] = None,
        checkpointer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        compiled: bool = True,
    ):
        # The compiled spec is behaviourally identical (same transitions,
        # same invariant verdicts, same fingerprints) — ``compiled=False``
        # or SANDTABLE_NO_COMPILE falls back to the interpreted pipeline.
        spec = maybe_compile(spec, compiled)
        self.spec = spec
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.stop_on_violation = stop_on_violation
        self.progress = progress
        self.progress_interval = progress_interval
        self._fp = strong_fingerprint if strong_fingerprints else fingerprint
        self.reducer = (
            SymmetryReducer(spec.symmetry_sets(), key=self._fp) if symmetry else None
        )
        self.store = store if store is not None else InMemoryStateStore()
        self.checker = StepChecker(spec)
        self.strategy = FIFOFrontier()
        self.engine = ExplorationEngine(
            spec,
            self.strategy,
            store=self.store,
            checker=self.checker,
            max_states=max_states,
            max_depth=max_depth,
            time_budget=time_budget,
            stop_on_violation=stop_on_violation,
            reducer=self.reducer,
            fingerprint_fn=self._fp,
            progress=progress,
            progress_interval=progress_interval,
            checkpointer=checkpointer,
            metrics=metrics,
        )

    @property
    def violations(self) -> List[Violation]:
        """All violations found so far (more than one with ``stop_on_violation=False``)."""
        return self.checker.violations

    # -- the search ----------------------------------------------------------

    def run(self, resume: Optional[Any] = None) -> BFSResult:
        return self.engine.run(resume=resume)

    # -- helpers ---------------------------------------------------------------

    def _canonical(self, state: Rec) -> Rec:
        if self.reducer is None:
            return state
        return self.reducer.canonical(state)

    def _trace_to(self, fp: Any, concrete: Optional[Rec] = None) -> Trace:
        """Reconstruct a trace from an initial state to ``fp``."""
        canonical = self.reducer.canonical if self.reducer is not None else None
        return reconstruct_trace(self.spec, self.store, fp, canonical, self._fp)

    def _find_step(
        self, state: Rec, target_fp: Any, action_name: str
    ) -> Optional[TraceStep]:
        canonical = self.reducer.canonical if self.reducer is not None else None
        return find_matching_step(
            self.spec, state, target_fp, action_name, canonical, self._fp
        )


def bfs_explore(
    spec: Spec,
    workers: int = 1,
    run_dir: Optional[Any] = None,
    checkpoint_every: Optional[float] = None,
    checkpoint_states: Optional[int] = None,
    resume: bool = False,
    **kwargs: Any,
) -> BFSResult:
    """Run one BFS exploration of ``spec``; see :class:`BFSExplorer`.

    With ``workers > 1`` the search runs as a sharded parallel BFS
    (:func:`repro.core.parallel.parallel_bfs`): the fingerprint space is
    partitioned ``fp % workers`` across forked engine workers, which is
    sound because :func:`~repro.core.state.fingerprint` is canonical and
    process-stable.  Results are merged into the same :class:`BFSResult`.

    With ``run_dir`` the run is durable (:func:`repro.persist.run_check`):
    a disk-backed state store, periodic crash-safe checkpoints every
    ``checkpoint_every`` seconds and/or ``checkpoint_states`` new states,
    and ``resume=True`` to continue a checkpointed run.
    """
    if run_dir is not None:
        from ..persist.runner import run_check  # local import: persist imports core

        return run_check(
            spec,
            run_dir,
            workers=workers,
            resume=resume,
            checkpoint_every=checkpoint_every,
            checkpoint_states=checkpoint_states,
            **kwargs,
        )
    if workers > 1:
        from .parallel import parallel_bfs  # local import: parallel imports us

        return parallel_bfs(spec, workers=workers, **kwargs)
    return BFSExplorer(spec, **kwargs).run()
