"""Stateful breadth-first model checking (§3.3).

The explorer is the analogue of TLC's BFS mode: it keeps a fingerprint set
of visited states (stateful exploration — no state is expanded twice),
checks state and transition invariants, prunes with the spec's state
constraint, and optionally canonicalizes states under the spec's symmetry
sets.  Because the search is breadth-first, the first counterexample found
for any invariant has minimal depth (§5.1.1).

Since the exploration-kernel refactor this module is a thin configuration
layer over :mod:`repro.core.engine`: a :class:`~repro.core.engine.FIFOFrontier`
strategy plus an :class:`~repro.core.engine.InMemoryStateStore` running in
the shared :class:`~repro.core.engine.ExplorationEngine`.  Counterexample
traces are reconstructed from parent fingerprints by re-executing from the
initial state and matching successor fingerprints, which keeps per-state
memory to a couple of machine words.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .compile import maybe_compile
from .engine import (
    ExplorationEngine,
    FIFOFrontier,
    FingerprintOnlyStore,
    InMemoryStateStore,
    SearchResult,
    SearchStats,
    StateStore,
    StepChecker,
    find_matching_step,
    reconstruct_trace,
)
from .spec import Spec
from .state import Rec, fingerprint, strong_fingerprint
from .symmetry import SymmetryReducer
from .trace import Trace, TraceStep
from .violation import Violation

__all__ = [
    "BFSStats",
    "BFSResult",
    "BFSExplorer",
    "bfs_explore",
    "research_violation",
]

#: BFS stats/results are the engine's unified types (kept under their
#: historical names for source compatibility).
BFSStats = SearchStats
BFSResult = SearchResult


class BFSExplorer:
    """Breadth-first stateful exploration of a spec's state space.

    ``fast=True`` switches to the traceless
    :class:`~repro.core.engine.FingerprintOnlyStore` (8 bytes/state
    payload, no parent edges).  A violation found by a fast run carries
    a :class:`~repro.core.trace.PendingTrace`; with ``research=True``
    (the default) the explorer immediately runs a *bounded re-search* —
    a full-store serial BFS capped at the violation depth — which
    reproduces the byte-identical minimal counterexample an ordinary
    full-store run would have produced (the violation fires while the
    last pre-violation level is still being expanded, so the depth cap
    never alters pre-violation behavior).

    ``por=True`` compiles the spec with partial-order reduction
    (:func:`repro.core.compile.compile_spec` with ``por=True``):
    statically-safe actions are pruned from the successor table while
    preserving violation reachability and exact minimal depth.
    """

    def __init__(
        self,
        spec: Spec,
        symmetry: bool = False,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_on_violation: bool = True,
        strong_fingerprints: bool = False,
        progress: Optional[Callable[[BFSStats], None]] = None,
        progress_interval: int = 50_000,
        store: Optional[StateStore] = None,
        checkpointer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        compiled: bool = True,
        fast: bool = False,
        por: bool = False,
        research: bool = True,
    ):
        # The compiled spec is behaviourally identical (same transitions,
        # same invariant verdicts, same fingerprints) — ``compiled=False``
        # or SANDTABLE_NO_COMPILE falls back to the interpreted pipeline.
        # With ``por`` the compile additionally prunes statically-safe
        # actions (and raises if compilation is disabled).
        spec = maybe_compile(spec, compiled, por=por)
        self.spec = spec
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.stop_on_violation = stop_on_violation
        self.progress = progress
        self.progress_interval = progress_interval
        self.fast = fast
        self.research = research
        self._symmetry = symmetry
        if fast and strong_fingerprints:
            raise ValueError(
                "fast mode stores fingerprints as flat 64-bit ints;"
                " strong (128-bit) fingerprints are not supported with --fast"
            )
        if fast and store is not None and not getattr(store, "traceless", False):
            raise ValueError(
                "fast mode needs a traceless store (FingerprintOnlyStore or a"
                f" traceless DiskStore), got {type(store).__name__}"
            )
        self._fp = strong_fingerprint if strong_fingerprints else fingerprint
        self.reducer = (
            SymmetryReducer(spec.symmetry_sets(), key=self._fp) if symmetry else None
        )
        if store is None:
            store = FingerprintOnlyStore() if fast else InMemoryStateStore()
        self.store = store
        self.checker = StepChecker(spec)
        self.strategy = FIFOFrontier()
        self.engine = ExplorationEngine(
            spec,
            self.strategy,
            store=self.store,
            checker=self.checker,
            max_states=max_states,
            max_depth=max_depth,
            time_budget=time_budget,
            stop_on_violation=stop_on_violation,
            reducer=self.reducer,
            fingerprint_fn=self._fp,
            progress=progress,
            progress_interval=progress_interval,
            checkpointer=checkpointer,
            metrics=metrics,
        )

    @property
    def violations(self) -> List[Violation]:
        """All violations found so far (more than one with ``stop_on_violation=False``)."""
        return self.checker.violations

    # -- the search ----------------------------------------------------------

    def run(self, resume: Optional[Any] = None) -> BFSResult:
        result = self.engine.run(resume=resume)
        violation = result.violation
        if (
            self.research
            and violation is not None
            and getattr(violation.trace, "pending", False)
        ):
            result.violation = research_violation(
                self.spec, violation, symmetry=self._symmetry
            )
        return result

    # -- helpers ---------------------------------------------------------------

    def _canonical(self, state: Rec) -> Rec:
        if self.reducer is None:
            return state
        return self.reducer.canonical(state)

    def _trace_to(self, fp: Any, concrete: Optional[Rec] = None) -> Trace:
        """Reconstruct a trace from an initial state to ``fp``."""
        canonical = self.reducer.canonical if self.reducer is not None else None
        return reconstruct_trace(self.spec, self.store, fp, canonical, self._fp)

    def _find_step(
        self, state: Rec, target_fp: Any, action_name: str
    ) -> Optional[TraceStep]:
        canonical = self.reducer.canonical if self.reducer is not None else None
        return find_matching_step(
            self.spec, state, target_fp, action_name, canonical, self._fp
        )


def research_violation(
    spec: Spec,
    violation: Violation,
    symmetry: bool = False,
    compiled: bool = True,
) -> Violation:
    """Bounded re-search: resolve a traceless violation into a real trace.

    Re-explores ``spec`` with a full (edge-keeping) store, serially,
    capped at the violation's known minimal depth, and returns the
    violation of that run.  Correctness: in breadth-first order the
    violation fires during expansion of a pre-violation level, before
    any state at the cap depth is popped, so the depth cap cannot alter
    any step preceding the violation — the re-search replays the exact
    step sequence of an uninterrupted full-store run and produces the
    byte-identical minimal counterexample.  Memory is bounded by the
    full-store cost of the state space up to the violation depth
    (TLC's classic traceless tradeoff).

    ``spec`` must be the same (possibly POR-compiled) spec the fast run
    explored, and ``symmetry`` must match, or the re-search may not
    reach the violation; a fingerprint collision in the fast run can
    also leave the violation unreachable, and both cases raise
    ``RuntimeError`` rather than returning a wrong trace.
    """
    trace = violation.trace
    if not getattr(trace, "pending", False):
        return violation
    explorer = BFSExplorer(
        spec,
        symmetry=symmetry,
        max_depth=trace.depth,
        stop_on_violation=True,
        compiled=compiled,
        research=False,
    )
    result = explorer.run()
    found = result.violation
    if found is None:
        raise RuntimeError(
            f"bounded re-search found no violation within depth {trace.depth};"
            f" the fast run reported {violation.invariant} ({violation.kind})"
            " there — most likely a 64-bit fingerprint collision, or a"
            " spec/symmetry mismatch between the fast run and the re-search"
        )
    if found.depth != trace.depth:
        raise RuntimeError(
            f"bounded re-search found {found.invariant} at depth {found.depth},"
            f" but the fast run reported depth {trace.depth}; spec or symmetry"
            " mismatch between the runs"
        )
    return found


def bfs_explore(
    spec: Spec,
    workers: int = 1,
    run_dir: Optional[Any] = None,
    checkpoint_every: Optional[float] = None,
    checkpoint_states: Optional[int] = None,
    resume: bool = False,
    transport: Optional[Any] = None,
    **kwargs: Any,
) -> BFSResult:
    """Run one BFS exploration of ``spec``; see :class:`BFSExplorer`.

    With ``workers > 1`` the search runs as a sharded parallel BFS
    (:func:`repro.core.parallel.parallel_bfs`): the fingerprint space is
    partitioned ``fp % workers`` across forked engine workers, which is
    sound because :func:`~repro.core.state.fingerprint` is canonical and
    process-stable.  Results are merged into the same :class:`BFSResult`.
    A ``transport`` (e.g. :class:`repro.dist.transport.SocketTransport`)
    forces the parallel driver and selects how the shard workers are
    reached — remote socket workers instead of local forks.

    With ``run_dir`` the run is durable (:func:`repro.persist.run_check`):
    a disk-backed state store, periodic crash-safe checkpoints every
    ``checkpoint_every`` seconds and/or ``checkpoint_states`` new states,
    and ``resume=True`` to continue a checkpointed run.
    """
    if run_dir is not None:
        from ..persist.runner import run_check  # local import: persist imports core

        return run_check(
            spec,
            run_dir,
            workers=workers,
            resume=resume,
            checkpoint_every=checkpoint_every,
            checkpoint_states=checkpoint_states,
            transport=transport,
            **kwargs,
        )
    if workers > 1 or transport is not None:
        from .parallel import parallel_bfs  # local import: parallel imports us

        return parallel_bfs(spec, workers=workers, transport=transport, **kwargs)
    return BFSExplorer(spec, **kwargs).run()
