"""Stateful breadth-first model checking (§3.3).

The explorer is the analogue of TLC's BFS mode: it keeps a fingerprint set
of visited states (stateful exploration — no state is expanded twice),
checks state and transition invariants, prunes with the spec's state
constraint, and optionally canonicalizes states under the spec's symmetry
sets.  Because the search is breadth-first, the first counterexample found
for any invariant has minimal depth (§5.1.1).

Counterexample traces are reconstructed from parent fingerprints by
re-executing from the initial state and matching successor fingerprints,
which keeps per-state memory to a couple of machine words.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .spec import Spec, Transition
from .state import Rec, fingerprint, strong_fingerprint
from .symmetry import SymmetryReducer
from .trace import Trace, TraceStep
from .violation import Violation

__all__ = ["BFSStats", "BFSResult", "BFSExplorer", "bfs_explore"]


@dataclasses.dataclass
class BFSStats:
    """Counters for one BFS run."""

    distinct_states: int = 0
    transitions: int = 0
    max_depth: int = 0
    pruned: int = 0
    elapsed: float = 0.0

    @property
    def states_per_second(self) -> float:
        if self.elapsed <= 0:
            return float("inf")
        return self.distinct_states / self.elapsed


@dataclasses.dataclass
class BFSResult:
    """Outcome of a BFS run."""

    stats: BFSStats
    violation: Optional[Violation] = None
    exhausted: bool = False
    stop_reason: str = "exhausted"

    @property
    def found_violation(self) -> bool:
        return self.violation is not None


class BFSExplorer:
    """Breadth-first stateful exploration of a spec's state space."""

    def __init__(
        self,
        spec: Spec,
        symmetry: bool = False,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_on_violation: bool = True,
        strong_fingerprints: bool = False,
        progress: Optional[Callable[[BFSStats], None]] = None,
        progress_interval: int = 50_000,
    ):
        self.spec = spec
        self.max_states = max_states
        self.max_depth = max_depth
        self.time_budget = time_budget
        self.stop_on_violation = stop_on_violation
        self.progress = progress
        self.progress_interval = progress_interval
        self._fp = strong_fingerprint if strong_fingerprints else fingerprint
        self.reducer = (
            SymmetryReducer(spec.symmetry_sets(), key=self._fp) if symmetry else None
        )
        self.violations: List[Violation] = []
        # fingerprint -> (parent fingerprint or None, action name)
        self._parents: Dict[Any, Tuple[Optional[Any], str]] = {}
        self._init_states: Dict[Any, Rec] = {}

    # -- the search ----------------------------------------------------------

    def run(self) -> BFSResult:
        stats = BFSStats()
        started = time.monotonic()
        queue: deque = deque()

        for init in self.spec.init_states():
            canon = self._canonical(init)
            fp = self._fp(canon)
            if fp in self._parents:
                continue
            self._parents[fp] = (None, "<init>")
            self._init_states[fp] = canon
            stats.distinct_states += 1
            bad = self.spec.check_state(canon)
            if bad is not None:
                violation = Violation(bad, Trace(canon), kind="state")
                self.violations.append(violation)
                if self.stop_on_violation:
                    stats.elapsed = time.monotonic() - started
                    return BFSResult(stats, violation, False, "violation")
            queue.append((canon, fp, 0))

        result = self._search(queue, stats, started)
        stats.elapsed = time.monotonic() - started
        return result

    def _search(self, queue: deque, stats: BFSStats, started: float) -> BFSResult:
        spec = self.spec
        while queue:
            state, fp, depth = queue.popleft()
            stats.max_depth = max(stats.max_depth, depth)
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            if not spec.state_constraint(state):
                stats.pruned += 1
                continue
            for transition in spec.successors(state):
                stats.transitions += 1
                violation = self._check_edge(state, fp, transition)
                if violation is not None and self.stop_on_violation:
                    return BFSResult(stats, violation, False, "violation")

                canon = self._canonical(transition.target)
                child_fp = self._fp(canon)
                if child_fp in self._parents:
                    continue
                self._parents[child_fp] = (fp, transition.action)
                stats.distinct_states += 1
                violation = self._check_new_state(canon, child_fp, transition, state, fp)
                if violation is not None and self.stop_on_violation:
                    return BFSResult(stats, violation, False, "violation")
                queue.append((canon, child_fp, depth + 1))

                if self.max_states is not None and stats.distinct_states >= self.max_states:
                    return BFSResult(stats, self._first_violation(), False, "max_states")
                if self.progress and stats.distinct_states % self.progress_interval == 0:
                    stats.elapsed = time.monotonic() - started
                    self.progress(stats)
            if self.time_budget is not None and time.monotonic() - started > self.time_budget:
                return BFSResult(stats, self._first_violation(), False, "time_budget")
        violation = self._first_violation()
        exhausted = violation is None or not self.stop_on_violation
        return BFSResult(stats, violation, exhausted, "exhausted")

    def _check_edge(
        self, pre: Rec, pre_fp: Any, transition: Transition
    ) -> Optional[Violation]:
        bad = self.spec.check_transition(pre, transition)
        if bad is None:
            return None
        trace = self._trace_to(pre_fp, pre).extend(
            TraceStep(transition.action, transition.args, transition.target, transition.branch)
        )
        violation = Violation(bad, trace, kind="transition")
        self.violations.append(violation)
        return violation

    def _check_new_state(
        self,
        canon: Rec,
        child_fp: Any,
        transition: Transition,
        pre: Rec,
        pre_fp: Any,
    ) -> Optional[Violation]:
        bad = self.spec.check_state(canon)
        if bad is None:
            return None
        trace = self._trace_to(pre_fp, pre).extend(
            TraceStep(transition.action, transition.args, transition.target, transition.branch)
        )
        violation = Violation(bad, trace, kind="state")
        self.violations.append(violation)
        return violation

    def _first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    # -- helpers ---------------------------------------------------------------

    def _canonical(self, state: Rec) -> Rec:
        if self.reducer is None:
            return state
        return self.reducer.canonical(state)

    def _trace_to(self, fp: Any, concrete: Rec) -> Trace:
        """Reconstruct a trace from an initial state to ``fp``.

        Walks the parent chain to collect the fingerprints on the path,
        then re-executes from the initial state, at each step firing the
        successor whose canonical fingerprint matches the next fingerprint
        on the chain.  With symmetry reduction the re-executed states may
        be permuted variants of the stored canonical ones; matching on
        canonical fingerprints keeps the replay on the right orbit.
        """
        chain: List[Tuple[Any, str]] = []
        cursor: Optional[Any] = fp
        while cursor is not None:
            parent, action = self._parents[cursor]
            chain.append((cursor, action))
            cursor = parent
        chain.reverse()

        init_fp, _ = chain[0]
        state = self._init_states[init_fp]
        trace = Trace(state)
        for target_fp, action_name in chain[1:]:
            step = self._find_step(state, target_fp, action_name)
            if step is None:
                raise RuntimeError(
                    f"trace reconstruction failed: no successor of depth-{trace.depth}"
                    f" state matches fingerprint for action {action_name}"
                )
            trace = trace.extend(step)
            state = step.state
        return trace

    def _find_step(
        self, state: Rec, target_fp: Any, action_name: str
    ) -> Optional[TraceStep]:
        fallback: Optional[TraceStep] = None
        for transition in self.spec.successors(state):
            canon_fp = self._fp(self._canonical(transition.target))
            if canon_fp != target_fp:
                continue
            step = TraceStep(
                transition.action, transition.args, transition.target, transition.branch
            )
            if transition.action == action_name:
                return step
            fallback = fallback or step
        return fallback


def bfs_explore(spec: Spec, **kwargs: Any) -> BFSResult:
    """Run one BFS exploration of ``spec``; see :class:`BFSExplorer`."""
    return BFSExplorer(spec, **kwargs).run()
