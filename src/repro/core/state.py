"""Immutable state values and canonical fingerprinting.

Specification states are immutable so that the stateful BFS explorer can
hash, deduplicate and safely share them.  The building block is :class:`Rec`,
an immutable mapping with functional update, playing the role of a TLA+
function/record (``EXCEPT`` becomes :meth:`Rec.set` / :meth:`Rec.apply`).

All values stored in a state must be *frozen*: ints, strings, booleans,
``None``, tuples, frozensets, or nested :class:`Rec` instances.
:func:`freeze` converts ordinary dicts/lists/sets into frozen form, and
:func:`thaw` converts back for serialization and debugging.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from typing import Any, Callable, Iterator, Tuple

__all__ = ["Rec", "freeze", "thaw", "fingerprint", "strong_fingerprint", "substitute"]

_FROZEN_SCALARS = (int, float, str, bytes, bool, type(None))


class Rec(Mapping):
    """An immutable record: a hashable mapping with functional update.

    Keys are sorted internally so two records with the same contents have
    the same canonical representation and hash regardless of insertion
    order.
    """

    __slots__ = ("_dict", "_hash")

    def __init__(self, mapping: Any = (), **kwargs: Any):
        if isinstance(mapping, Rec):
            base = dict(mapping._dict)
        else:
            base = dict(mapping)
        base.update(kwargs)
        for key, value in base.items():
            _check_frozen(value, key)
        self._dict = base
        self._hash = None

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._dict[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __contains__(self, key: Any) -> bool:
        return key in self._dict

    # -- identity ----------------------------------------------------------

    def __hash__(self) -> int:
        # Order-independent and cached; nested Recs cache their own
        # hashes, so functional updates that share substructure hash
        # mostly from cache.
        if self._hash is None:
            self._hash = hash(frozenset(self._dict.items()))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Rec):
            return self._dict == other._dict
        if isinstance(other, Mapping):
            return self._dict == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items_sorted())
        return f"Rec({{{inner}}})"

    # -- functional update ---------------------------------------------------

    @classmethod
    def _make(cls, contents: dict) -> "Rec":
        """Internal: wrap an already-validated dict without copying."""
        rec = object.__new__(cls)
        rec._dict = contents
        rec._hash = None
        return rec

    def set(self, key: Any, value: Any) -> "Rec":
        """Return a new record with ``key`` bound to ``value``."""
        _check_frozen(value, key)
        new = dict(self._dict)
        new[key] = value
        return Rec._make(new)

    def update(self, mapping: Any = (), **kwargs: Any) -> "Rec":
        """Return a new record with several keys rebound."""
        new = dict(self._dict)
        for source in (dict(mapping), kwargs):
            for key, value in source.items():
                _check_frozen(value, key)
                new[key] = value
        return Rec._make(new)

    def apply(self, key: Any, fn: Callable[[Any], Any]) -> "Rec":
        """Return a new record with ``key`` rebound to ``fn(old_value)``.

        The TLA+ idiom ``[f EXCEPT ![k] = g(@)]``.
        """
        return self.set(key, fn(self._dict[key]))

    def remove(self, key: Any) -> "Rec":
        """Return a new record without ``key``."""
        new = dict(self._dict)
        del new[key]
        return Rec._make(new)

    def items_sorted(self) -> Tuple[Tuple[Any, Any], ...]:
        """Items in a canonical (type-name, repr) key order."""
        return tuple(sorted(self._dict.items(), key=_key_sort))


def _key_sort(item: Tuple[Any, Any]) -> Tuple[str, str]:
    key = item[0]
    return (type(key).__name__, repr(key))


def _check_frozen(value: Any, key: Any) -> None:
    if isinstance(value, _FROZEN_SCALARS) or isinstance(value, (tuple, frozenset, Rec)):
        return
    raise TypeError(
        f"state value for key {key!r} is not frozen: {type(value).__name__};"
        " use freeze() or a Rec/tuple/frozenset"
    )


def freeze(value: Any) -> Any:
    """Recursively convert a plain Python value into frozen form.

    dict -> Rec, list -> tuple, set -> frozenset; scalars pass through.
    """
    if isinstance(value, Rec):
        return Rec({k: freeze(v) for k, v in value.items()})
    if isinstance(value, Mapping):
        return Rec({freeze(k): freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze(v) for v in value)
    if isinstance(value, _FROZEN_SCALARS):
        return value
    raise TypeError(f"cannot freeze value of type {type(value).__name__}")


def thaw(value: Any) -> Any:
    """Convert a frozen value back into plain JSON-friendly Python.

    Rec -> dict, tuple -> list, frozenset -> sorted list.
    """
    if isinstance(value, Rec):
        return {_thaw_key(k): thaw(v) for k, v in value.items_sorted()}
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    if isinstance(value, frozenset):
        return sorted((thaw(v) for v in value), key=repr)
    return value


def _thaw_key(key: Any) -> Any:
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return key


def fingerprint(state: Any) -> int:
    """Fast 64-bit-class fingerprint of a frozen state (per-run stable)."""
    return hash(state)


def strong_fingerprint(state: Any) -> bytes:
    """Collision-resistant fingerprint, stable across runs.

    Slower than :func:`fingerprint`; used when exact deduplication matters
    (e.g. cross-run comparisons in tests).
    """
    digest = hashlib.blake2b(digest_size=16)
    _feed(digest, state)
    return digest.digest()


def _feed(digest: "hashlib._Hash", value: Any) -> None:
    if isinstance(value, Rec):
        digest.update(b"R")
        for key, val in value.items_sorted():
            _feed(digest, key)
            _feed(digest, val)
        digest.update(b"r")
    elif isinstance(value, tuple):
        digest.update(b"T")
        for val in value:
            _feed(digest, val)
        digest.update(b"t")
    elif isinstance(value, frozenset):
        digest.update(b"S")
        parts = sorted(strong_fingerprint(v) for v in value)
        for part in parts:
            digest.update(part)
        digest.update(b"s")
    else:
        digest.update(type(value).__name__.encode())
        digest.update(repr(value).encode())


def substitute(value: Any, mapping: Mapping) -> Any:
    """Recursively replace atoms of ``value`` according to ``mapping``.

    Used by symmetry reduction to permute node identifiers (or workload
    values) throughout a state.  Atoms not present in ``mapping`` are left
    unchanged; container structure is preserved.
    """
    if isinstance(value, Rec):
        return Rec(
            {
                substitute(k, mapping): substitute(v, mapping)
                for k, v in value.items()
            }
        )
    if isinstance(value, tuple):
        return tuple(substitute(v, mapping) for v in value)
    if isinstance(value, frozenset):
        return frozenset(substitute(v, mapping) for v in value)
    try:
        return mapping.get(value, value)
    except TypeError:  # unhashable — cannot be a key
        return value
