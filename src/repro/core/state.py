"""Immutable state values, the canonical state codec, and fingerprinting.

Specification states are immutable so that the stateful BFS explorer can
hash, deduplicate and safely share them.  The building block is :class:`Rec`,
an immutable mapping with functional update, playing the role of a TLA+
function/record (``EXCEPT`` becomes :meth:`Rec.set` / :meth:`Rec.apply`).

All values stored in a state must be *frozen*: ints, strings, booleans,
``None``, tuples, frozensets, or nested :class:`Rec` instances.
:func:`freeze` converts ordinary dicts/lists/sets into frozen form, and
:func:`thaw` converts back for serialization and debugging.

State identity is defined by the **canonical codec**: :func:`encode` maps
every frozen value to a unique byte string (equal values encode equally,
different values differently — records are serialized in a canonical key
order and frozensets in sorted-encoding order), and :func:`decode` maps it
back (``decode(encode(x)) == x``).  :func:`fingerprint` is a 64-bit
blake2b digest of that encoding: unlike Python's ``hash`` it does not
depend on ``PYTHONHASHSEED``, so fingerprints agree across processes and
runs — the property the sharded parallel explorer
(:mod:`repro.core.parallel`) and any future disk-backed or distributed
state store rely on.  Fingerprints and encodings are cached on
:class:`Rec`, so functional updates that share substructure encode mostly
from cache.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Mapping
from hashlib import blake2b
from typing import Any, Callable, FrozenSet, Iterator, List, Optional, Tuple

__all__ = [
    "CODEC_VERSION",
    "Rec",
    "freeze",
    "thaw",
    "encode",
    "decode",
    "fingerprint",
    "strong_fingerprint",
    "substitute",
    "changed_keys",
    "detach",
    "codec_stats",
    "reset_codec_stats",
    "set_delta_codec",
    "delta_codec_enabled",
]

#: Version of the canonical codec *and* the fingerprint construction.
#: Any change to the byte layout produced by :func:`encode`, to the key
#: ordering of records, or to the digest behind :func:`fingerprint`
#: must bump this number: durable artifacts (run directories,
#: checkpoints, saved traces — :mod:`repro.persist`) record it and
#: refuse to load data written under a different version, because
#: fingerprints and stored codec bytes from one version are
#: meaningless under another.
#:
#: Version history: 1 — flat ``blake2b(encode(state))`` fingerprints;
#: 2 — two-level fingerprints (a digest of per-pair digests, enabling
#: incremental fingerprinting of successors).  Encodings are unchanged
#: between 1 and 2; fingerprints are not, so durable artifacts from
#: version 1 cannot be resumed.
CODEC_VERSION = 2

_FROZEN_SCALARS = (int, float, str, bytes, bool, type(None))


class Rec(Mapping):
    """An immutable record: a hashable mapping with functional update.

    Keys are sorted internally so two records with the same contents have
    the same canonical representation and hash regardless of insertion
    order.
    """

    __slots__ = (
        "_dict",
        "_hash",
        "_enc",
        "_fp",
        "_base",
        "_touched",
        "_offsets",
        "_pairfps",
    )

    def __init__(self, mapping: Any = (), **kwargs: Any):
        if isinstance(mapping, Rec):
            base = dict(mapping._dict)
        else:
            base = dict(mapping)
        base.update(kwargs)
        for key, value in base.items():
            _check_frozen(value, key)
        self._dict = base
        self._hash = None
        self._enc = None
        self._fp = None
        self._base = None
        self._touched = None
        self._offsets = None
        self._pairfps = None

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._dict[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __contains__(self, key: Any) -> bool:
        return key in self._dict

    # -- identity ----------------------------------------------------------

    def __hash__(self) -> int:
        # Order-independent and cached; nested Recs cache their own
        # hashes, so functional updates that share substructure hash
        # mostly from cache.  (Per-process only — cross-process identity
        # goes through fingerprint().)
        if self._hash is None:
            self._hash = hash(frozenset(self._dict.items()))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Rec):
            return self._dict == other._dict
        if isinstance(other, Mapping):
            return self._dict == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items_sorted())
        return f"Rec({{{inner}}})"

    def __reduce__(self):
        # Pickle only the contents; caches are rebuilt lazily on the
        # other side (where they are recomputed identically anyway).
        return (_rec_from_dict, (self._dict,))

    # -- functional update ---------------------------------------------------

    @classmethod
    def _make(cls, contents: dict) -> "Rec":
        """Internal: wrap an already-validated dict without copying."""
        rec = object.__new__(cls)
        rec._dict = contents
        rec._hash = None
        rec._enc = None
        rec._fp = None
        rec._base = None
        rec._touched = None
        rec._offsets = None
        rec._pairfps = None
        return rec

    def set(self, key: Any, value: Any) -> "Rec":
        """Return a new record with ``key`` bound to ``value``.

        When ``key`` was already present the new record remembers its
        parent and the touched key, so the codec can later assemble the
        child's canonical encoding by splicing the parent's — see
        ``changed_keys`` and the delta path in ``_encode_rec``.

        Rebinding a key to the identical object is a no-op and returns
        ``self`` — records are immutable, so the "copy" would be
        indistinguishable, and returning ``self`` keeps ``changed_keys``
        precise (a heartbeat that rewrites an unchanged log does not mark
        ``log`` as touched).
        """
        src = self._dict
        if src.get(key, _MISSING) is value:
            return self
        _check_frozen(value, key)
        new = dict(src)
        new[key] = value
        rec = Rec._make(new)
        if len(new) == len(src):
            rec._base = self
            rec._touched = (key,)
        return rec

    def update(self, mapping: Any = (), **kwargs: Any) -> "Rec":
        """Return a new record with several keys rebound.

        Like :meth:`set`, records the parent and the touched keys when
        the key set is unchanged, enabling delta encoding.  Keys rebound
        to the identical object are not counted as touched, and an update
        that changes nothing returns ``self``.
        """
        src = self._dict
        new = dict(src)
        touched = []
        for source in (dict(mapping), kwargs):
            for key, value in source.items():
                if src.get(key, _MISSING) is value:
                    continue
                _check_frozen(value, key)
                new[key] = value
                touched.append(key)
        if not touched and len(new) == len(src):
            return self
        rec = Rec._make(new)
        if len(new) == len(src):
            rec._base = self
            rec._touched = tuple(touched)
        return rec

    def apply(self, key: Any, fn: Callable[[Any], Any]) -> "Rec":
        """Return a new record with ``key`` rebound to ``fn(old_value)``.

        The TLA+ idiom ``[f EXCEPT ![k] = g(@)]``.
        """
        return self.set(key, fn(self._dict[key]))

    def remove(self, key: Any) -> "Rec":
        """Return a new record without ``key``."""
        new = dict(self._dict)
        del new[key]
        return Rec._make(new)

    def items_sorted(self) -> Tuple[Tuple[Any, Any], ...]:
        """Items in a canonical (type-name, repr) key order.

        The key order is interned per key set (like the codec layout):
        record shapes recur across millions of states, so the sort —
        and the ``repr`` calls it is keyed on — runs once per shape.
        """
        contents = self._dict
        keys = tuple(contents)
        order = _SORTED_KEYS.get(keys)
        if order is None:
            order = tuple(sorted(keys, key=_key_order))
            _SORTED_KEYS[keys] = order
        return tuple((key, contents[key]) for key in order)


def _rec_from_dict(contents: dict) -> Rec:
    return Rec._make(contents)


def _key_sort(item: Tuple[Any, Any]) -> Tuple[str, str]:
    key = item[0]
    return (type(key).__name__, repr(key))


def _key_order(key: Any) -> Tuple[str, str]:
    return (type(key).__name__, repr(key))


#: Interned canonical key orders for :meth:`Rec.items_sorted`, keyed by
#: the keys in dict insertion order (same scheme as ``_LAYOUT``).
_SORTED_KEYS: dict = {}

#: Sentinel distinguishing "key absent" from "key bound to None" in the
#: identity short-circuit of :meth:`Rec.set`.
_MISSING = object()


def _check_frozen(value: Any, key: Any) -> None:
    if isinstance(value, _FROZEN_SCALARS) or isinstance(value, (tuple, frozenset, Rec)):
        return
    raise TypeError(
        f"state value for key {key!r} is not frozen: {type(value).__name__};"
        " use freeze() or a Rec/tuple/frozenset"
    )


def freeze(value: Any) -> Any:
    """Recursively convert a plain Python value into frozen form.

    dict -> Rec, list -> tuple, set -> frozenset; scalars pass through.
    """
    if isinstance(value, Rec):
        return Rec({k: freeze(v) for k, v in value.items()})
    if isinstance(value, Mapping):
        return Rec({freeze(k): freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze(v) for v in value)
    if isinstance(value, _FROZEN_SCALARS):
        return value
    raise TypeError(f"cannot freeze value of type {type(value).__name__}")


def thaw(value: Any) -> Any:
    """Convert a frozen value back into plain JSON-friendly Python.

    Rec -> dict, tuple -> list, frozenset -> sorted list.
    """
    if isinstance(value, Rec):
        return {_thaw_key(k): thaw(v) for k, v in value.items_sorted()}
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    if isinstance(value, frozenset):
        return sorted((thaw(v) for v in value), key=repr)
    return value


def _thaw_key(key: Any) -> Any:
    if isinstance(key, tuple):
        return "|".join(_thaw_key_part(part) for part in key)
    return key


def _thaw_key_part(part: Any) -> str:
    """Render one tuple-key component collision-free.

    Separator and escape characters inside a component are escaped, and
    nested tuples are parenthesized, so distinct tuple keys always render
    to distinct strings — ``("a", "b|c")`` becomes ``a|b\\|c`` while
    ``("a|b", "c")`` becomes ``a\\|b|c``.  Typical keys (node ids, pairs
    of node ids) render exactly as before.
    """
    if isinstance(part, tuple):
        return "(" + "|".join(_thaw_key_part(p) for p in part) + ")"
    return (
        str(part)
        .replace("\\", "\\\\")
        .replace("|", "\\|")
        .replace("(", "\\(")
        .replace(")", "\\)")
    )


# ---------------------------------------------------------------------------
# the canonical codec
# ---------------------------------------------------------------------------
#
# One byte tag per value, followed by a self-delimiting payload:
#
#   N                      None
#   T / F                  True / False
#   i <uvarint>            int (zigzag-encoded, arbitrary precision)
#   f <8 bytes>            float (IEEE-754 big-endian)
#   s <uvarint> <utf-8>    str
#   b <uvarint> <raw>      bytes
#   t <uvarint> <items>    tuple, in order
#   S <uvarint> <items>    frozenset, items sorted by their encodings
#   R <uvarint> <pairs>    Rec, (key enc + value enc) pairs sorted bytewise
#
# The code is uniquely decodable from the front, hence prefix-free, so
# sorting concatenated encodings gives a canonical container order that
# is identical in every process.  Rec caches its encoding, so encoding a
# functionally-updated state only re-serializes the changed subtree.

_T_NONE = 0x4E  # 'N'
_T_TRUE = 0x54  # 'T'
_T_FALSE = 0x46  # 'F'
_T_INT = 0x69  # 'i'
_T_FLOAT = 0x66  # 'f'
_T_STR = 0x73  # 's'
_T_BYTES = 0x62  # 'b'
_T_TUPLE = 0x74  # 't'
_T_SET = 0x53  # 'S'
_T_REC = 0x52  # 'R'

_pack_float = struct.Struct(">d").pack
_unpack_float = struct.Struct(">d").unpack_from


def _write_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _encode_into(out: bytearray, value: Any) -> None:
    cls = value.__class__
    if cls is Rec:
        enc = value._enc
        out += enc if enc is not None else _encode_rec(value)
    elif cls is str:
        data = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(data))
        out += data
    elif cls is int:
        out.append(_T_INT)
        _write_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)
    elif cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif cls is tuple:
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif cls is frozenset:
        out.append(_T_SET)
        _write_uvarint(out, len(value))
        for part in sorted(encode(item) for item in value):
            out += part
    elif value is None:
        out.append(_T_NONE)
    elif cls is float:
        out.append(_T_FLOAT)
        out += _pack_float(value)
    elif cls is bytes:
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out += value
    elif isinstance(value, Rec):  # Rec subclass
        enc = value._enc
        out += enc if enc is not None else _encode_rec(value)
    elif isinstance(value, _FROZEN_SCALARS) or isinstance(value, (tuple, frozenset)):
        # subclass of a frozen type (e.g. IntEnum): encode as the base type
        _encode_into(out, _as_base(value))
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


def _as_base(value: Any) -> Any:
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    if isinstance(value, bytes):
        return bytes(value)
    if isinstance(value, tuple):
        return tuple(value)
    return frozenset(value)


#: canonical pair layouts, interned per key set — record shapes (state
#: variables, per-node maps, message records) recur across millions of
#: states, so the sort runs once per shape, not once per encode.  Keyed
#: by the keys in dict insertion order; different insertion orders of
#: one key set cost an extra entry but produce the same canonical layout.
_LAYOUT: dict = {}


def _encode_key(key: Any) -> bytes:
    out = bytearray()
    _encode_into(out, key)
    return bytes(out)


def _layout_for(keys: Tuple[Any, ...]) -> Tuple[Tuple[Tuple[bytes, Any], ...], dict]:
    # Keys are unique and the code is prefix-free, so sorting by the key
    # encoding alone fixes a canonical pair order.  The layout is the
    # sorted pair list plus a key -> pair-position map (the delta encoder
    # iterates touched keys only, so it needs random access by key).
    pairs = tuple(sorted((_encode_key(key), key) for key in keys))
    layout = (pairs, {key: i for i, (_, key) in enumerate(pairs)})
    _LAYOUT[keys] = layout
    return layout


# -- codec chunk-cache counters ---------------------------------------------
#
# [0] delta_hits    — encodings assembled by splicing a parent's bytes
# [1] delta_misses  — delta attempted but chain broken / fully touched
# [2] full_encodes  — records encoded from scratch (includes nested recs)
# [3] fp_delta_hits — fingerprints assembled by patching a parent's
#                     per-pair digest table
# [4] fp_full       — fingerprints computed from a full encoding
_CODEC_COUNTS = [0, 0, 0, 0, 0]

#: Delta (spliced) encoding on/off.  Off reproduces the pre-compile
#: behaviour: every record encodes from scratch.  The output bytes are
#: identical either way — this is a performance switch, not a format
#: switch, so ``CODEC_VERSION`` is unaffected.
_DELTA_ENABLED = not os.environ.get("SANDTABLE_NO_COMPILE")


def set_delta_codec(enabled: bool) -> bool:
    """Enable/disable delta encoding; returns the previous setting."""
    global _DELTA_ENABLED
    previous = _DELTA_ENABLED
    _DELTA_ENABLED = bool(enabled)
    return previous


def delta_codec_enabled() -> bool:
    return _DELTA_ENABLED


def codec_stats() -> dict:
    """Cumulative codec chunk-cache counters for this process."""
    return {
        "delta_hits": _CODEC_COUNTS[0],
        "delta_misses": _CODEC_COUNTS[1],
        "full_encodes": _CODEC_COUNTS[2],
        "fp_delta_hits": _CODEC_COUNTS[3],
        "fp_full": _CODEC_COUNTS[4],
    }


def reset_codec_stats() -> dict:
    """Zero the codec counters; returns the counts they had."""
    stats = codec_stats()
    _CODEC_COUNTS[:] = [0] * len(_CODEC_COUNTS)
    return stats


def _encode_rec(rec: Rec) -> bytes:
    contents = rec._dict
    keys = tuple(contents)
    layout = _LAYOUT.get(keys)
    if layout is None:
        layout = _layout_for(keys)
    base = rec._base
    if base is not None:
        if _DELTA_ENABLED:
            enc = _encode_rec_delta(rec, contents, layout, base)
            if enc is not None:
                return enc
        else:
            rec._base = None
            rec._touched = None
    out = bytearray()
    out.append(_T_REC)
    _write_uvarint(out, len(contents))
    offsets = [len(out)]
    for key_enc, key in layout[0]:
        out += key_enc
        value = contents[key]
        if value.__class__ is Rec:  # inlined hot path: cached nested Rec
            enc = value._enc
            out += enc if enc is not None else _encode_rec(value)
        else:
            _encode_into(out, value)
        offsets.append(len(out))
    enc = bytes(out)
    rec._enc = enc
    rec._offsets = tuple(offsets)
    _CODEC_COUNTS[2] += 1
    return enc


def _encode_rec_delta(rec: Rec, contents: dict, layout, cursor: Rec) -> Optional[bytes]:
    """Assemble ``rec``'s encoding by splicing an encoded ancestor's.

    Walks the parent chain accumulating touched keys until it reaches a
    record with a cached encoding, then copies the untouched pair byte
    ranges verbatim and re-encodes only the touched pairs.  The result
    is bit-identical to a from-scratch encode (untouched pairs reuse the
    exact canonical bytes; touched pairs go through the same
    ``_encode_into``).  Returns ``None`` — falling back to the full
    path — when the chain is broken or every key was touched.
    """
    n = len(contents)
    touched = set(rec._touched)
    while cursor._enc is None:
        nxt = cursor._base
        if nxt is None or len(touched) >= n:
            rec._base = None
            rec._touched = None
            _CODEC_COUNTS[1] += 1
            return None
        touched.update(cursor._touched)
        cursor = nxt
    if len(touched) >= n:
        rec._base = None
        rec._touched = None
        _CODEC_COUNTS[1] += 1
        return None
    base_enc = cursor._enc
    offsets = cursor._offsets
    if offsets is None:
        offsets = _scan_offsets(base_enc, n)
        cursor._offsets = offsets
    # Splice: iterate *touched* pairs only (via the layout's key -> index
    # map), copying the untouched byte ranges between them in single
    # slices.  ``offsets[i]`` is the start of pair ``i``; ``offsets[i+1]``
    # its end.  ``shifts`` records the cumulative byte drift after each
    # touched pair so the new offsets table can be patched afterwards —
    # when every re-encoded pair keeps its length (the common case:
    # a counter bump with the same varint width) the base's offsets
    # tuple is reused as-is.
    pairs, key_index = layout
    out = bytearray()
    if len(touched) == 1:
        # Single-touch fast path: one re-encoded pair between two
        # verbatim slices; the base offsets are reused when the new
        # pair keeps its length (a counter bump with the same varint
        # width — the common case).
        (key,) = touched
        i = key_index[key]
        start = offsets[i]
        end = offsets[i + 1]
        out += base_enc[:start]
        out += pairs[i][0]
        _encode_into(out, contents[key])
        shift = len(out) - end
        out += base_enc[end:]
        if shift == 0:
            new_offsets = offsets
        else:
            new_offsets = offsets[: i + 1] + tuple(
                x + shift for x in offsets[i + 1 :]
            )
    else:
        run_from = 0
        shifts = []
        for i in sorted(key_index[key] for key in touched):
            start = offsets[i]
            if run_from < start:
                out += base_enc[run_from:start]
            key_enc, key = pairs[i]
            out += key_enc
            _encode_into(out, contents[key])
            end = offsets[i + 1]
            run_from = end
            shifts.append((i, len(out) - end))
        if run_from < len(base_enc):
            out += base_enc[run_from:]
        if shifts[-1][1] == 0 and all(s == 0 for _, s in shifts):
            new_offsets = offsets
        else:
            patched = list(offsets)
            for k, (i, s) in enumerate(shifts):
                if s:
                    upto = shifts[k + 1][0] if k + 1 < len(shifts) else n
                    for j in range(i + 1, upto + 1):
                        patched[j] = offsets[j] + s
            new_offsets = tuple(patched)
    enc = bytes(out)
    rec._enc = enc
    rec._offsets = new_offsets
    rec._base = None
    rec._touched = None
    _CODEC_COUNTS[0] += 1
    return enc


def _skip_at(data: bytes, i: int) -> int:
    """Advance past the value starting at offset ``i`` (codec skip)."""
    tag = data[i]
    i += 1
    if tag == _T_STR or tag == _T_BYTES:
        length, i = _read_uvarint(data, i)
        return i + length
    if tag == _T_INT:
        while data[i] & 0x80:
            i += 1
        return i + 1
    if tag == _T_TUPLE or tag == _T_SET:
        count, i = _read_uvarint(data, i)
        for _ in range(count):
            i = _skip_at(data, i)
        return i
    if tag == _T_REC:
        count, i = _read_uvarint(data, i)
        for _ in range(2 * count):
            i = _skip_at(data, i)
        return i
    if tag == _T_NONE or tag == _T_TRUE or tag == _T_FALSE:
        return i
    if tag == _T_FLOAT:
        return i + 8
    raise ValueError(f"invalid codec tag {tag:#x} at offset {i - 1}")


def _scan_offsets(data: bytes, count: int) -> Tuple[int, ...]:
    """Pair boundaries of an encoded record: ``[pairs_start, end_0, ...]``.

    Used when a record that only has bytes (e.g. decoded from a store or
    checkpoint) becomes the base of a delta encode.
    """
    n, i = _read_uvarint(data, 1)
    if n != count:
        raise ValueError(f"encoded record has {n} pairs, expected {count}")
    offsets = [i]
    for _ in range(count):
        i = _skip_at(data, i)  # key
        i = _skip_at(data, i)  # value
        offsets.append(i)
    return tuple(offsets)


def encode(value: Any) -> bytes:
    """Serialize a frozen value to its canonical byte encoding.

    Equal values (regardless of record key insertion order or frozenset
    iteration order) produce identical bytes; different values produce
    different bytes.  The encoding is stable across processes, runs, and
    ``PYTHONHASHSEED`` values.
    """
    if value.__class__ is Rec:
        enc = value._enc
        return enc if enc is not None else _encode_rec(value)
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _read_uvarint(data: bytes, i: int) -> Tuple[int, int]:
    shift = 0
    n = 0
    while True:
        byte = data[i]
        i += 1
        n |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return n, i
        shift += 7


def _decode_at(data: bytes, i: int) -> Tuple[Any, int]:
    tag = data[i]
    start = i
    i += 1
    if tag == _T_STR:
        length, i = _read_uvarint(data, i)
        return data[i : i + length].decode("utf-8"), i + length
    if tag == _T_INT:
        n, i = _read_uvarint(data, i)
        return (n >> 1) if not n & 1 else -((n + 1) >> 1), i
    if tag == _T_REC:
        count, i = _read_uvarint(data, i)
        contents = {}
        for _ in range(count):
            key, i = _decode_at(data, i)
            value, i = _decode_at(data, i)
            contents[key] = value
        rec = Rec._make(contents)
        rec._enc = bytes(data[start:i])
        return rec, i
    if tag == _T_TUPLE:
        count, i = _read_uvarint(data, i)
        items = []
        for _ in range(count):
            item, i = _decode_at(data, i)
            items.append(item)
        return tuple(items), i
    if tag == _T_SET:
        count, i = _read_uvarint(data, i)
        items = []
        for _ in range(count):
            item, i = _decode_at(data, i)
            items.append(item)
        return frozenset(items), i
    if tag == _T_NONE:
        return None, i
    if tag == _T_TRUE:
        return True, i
    if tag == _T_FALSE:
        return False, i
    if tag == _T_FLOAT:
        return _unpack_float(data, i)[0], i + 8
    if tag == _T_BYTES:
        length, i = _read_uvarint(data, i)
        return bytes(data[i : i + length]), i + length
    raise ValueError(f"invalid codec tag {tag:#x} at offset {start}")


def decode(data: bytes) -> Any:
    """Deserialize a canonical encoding back into the frozen value.

    The inverse of :func:`encode`: ``decode(encode(x)) == x`` for every
    frozen value.  Raises :class:`ValueError` on malformed input.
    """
    value, end = _decode_at(data, 0)
    if end != len(data):
        raise ValueError(f"trailing bytes after offset {end}")
    return value


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def _pair_digests(rec: Rec) -> bytes:
    """The per-pair digest table of a record: ``8 * len(rec)`` bytes.

    Entry ``i`` is the 8-byte blake2b digest of pair ``i``'s canonical
    bytes (key encoding + value encoding, in layout order).  The table
    is what :func:`fingerprint` hashes, and it is what makes
    fingerprinting incremental: a successor copies its parent's table
    and re-digests only the touched pairs, never assembling (or
    hashing) the full state encoding.

    The table is identical whichever way it is produced — patched from
    a parent, sliced out of a cached encoding via the pair offsets, or
    computed from a from-scratch encode — because the underlying pair
    bytes are identical (the delta codec's bit-identical guarantee).
    """
    pf = rec._pairfps
    if pf is not None:
        return pf
    contents = rec._dict
    n = len(contents)
    keys = tuple(contents)
    layout = _LAYOUT.get(keys)
    if layout is None:
        layout = _layout_for(keys)
    base = rec._base
    if base is not None and _DELTA_ENABLED and rec._enc is None:
        # Walk the functional-update chain to the nearest ancestor with
        # a digest table, accumulating touched keys along the way.
        touched = set(rec._touched)
        cursor = base
        while cursor._pairfps is None:
            nxt = cursor._base
            if nxt is None or len(touched) >= n:
                cursor = None
                break
            touched.update(cursor._touched)
            cursor = nxt
        if cursor is not None and len(touched) < n:
            pairs, key_index = layout
            table = bytearray(cursor._pairfps)
            buf = bytearray()
            for key in touched:
                i = key_index[key]
                del buf[:]
                buf += pairs[i][0]
                _encode_into(buf, contents[key])
                j = i * 8
                table[j : j + 8] = blake2b(bytes(buf), digest_size=8).digest()
            pf = bytes(table)
            rec._pairfps = pf
            # Collapse the chain to one hop so a later delta *encode*
            # can still splice (the ancestor has the bytes), without
            # retaining the whole ancestry.
            if cursor._enc is not None:
                rec._base = cursor
                rec._touched = tuple(touched)
            else:
                rec._base = None
                rec._touched = None
            _CODEC_COUNTS[3] += 1
            return pf
    # Full path: digest the pair byte ranges of the canonical encoding.
    enc = rec._enc
    if enc is None:
        enc = _encode_rec(rec)
    offsets = rec._offsets
    if offsets is None:
        offsets = _scan_offsets(enc, n)
        rec._offsets = offsets
    pf = b"".join(
        blake2b(enc[offsets[i] : offsets[i + 1]], digest_size=8).digest()
        for i in range(n)
    )
    rec._pairfps = pf
    _CODEC_COUNTS[4] += 1
    return pf


def fingerprint(state: Any) -> int:
    """Canonical 64-bit fingerprint of a frozen state.

    A blake2b digest, so — unlike ``hash`` — it is identical across
    processes, runs, and ``PYTHONHASHSEED`` values, which is what lets
    parallel workers and cross-run state stores agree on state
    identity.  Cached on :class:`Rec`.

    For records the digest is two-level: blake2b over the per-pair
    digest table (:func:`_pair_digests`) rather than over the flat
    encoding.  Equal records produce equal tables (the table derives
    from the canonical encoding) and hence equal fingerprints, however
    the record was built; a successor that touched ``k`` of ``n``
    fields fingerprints in ``O(k)`` instead of ``O(n)``.  Non-record
    values hash their canonical encoding directly.
    """
    if isinstance(state, Rec):
        fp = state._fp
        if fp is None:
            fp = int.from_bytes(
                blake2b(_pair_digests(state), digest_size=8).digest(), "big"
            )
            state._fp = fp
        return fp
    return int.from_bytes(blake2b(encode(state), digest_size=8).digest(), "big")


def strong_fingerprint(state: Any) -> bytes:
    """128-bit collision-resistant fingerprint, stable across runs.

    A wider digest of the same canonical encoding as :func:`fingerprint`,
    for callers that want effectively-zero collision probability (e.g.
    cross-run comparisons in tests) at the cost of bytes objects instead
    of machine ints.
    """
    return blake2b(encode(state), digest_size=16).digest()


_EMPTY_KEYSET: FrozenSet[Any] = frozenset()


def changed_keys(child: Any, parent: Any, _limit: int = 1024) -> Optional[FrozenSet[Any]]:
    """Top-level keys on which ``child`` may differ from ``parent``.

    Derived from the functional-update chain recorded by ``Rec.set`` /
    ``Rec.update``: the result is a superset of the keys whose values
    actually differ (a key rebound to an equal value is still reported),
    and every key *not* in the result is guaranteed unchanged.  Returns
    ``None`` when the chain does not connect ``child`` to ``parent`` —
    the chain is consumed by encoding, so call this *before*
    ``fingerprint``/``encode`` on the child.
    """
    if child is parent:
        return _EMPTY_KEYSET
    if child.__class__ is not Rec or parent.__class__ is not Rec:
        return None
    touched = child._touched
    if touched is None:
        return None
    base = child._base
    if base is parent:
        return frozenset(touched)
    acc = set(touched)
    for _ in range(_limit):
        touched = base._touched
        if touched is None:
            return None
        acc.update(touched)
        base = base._base
        if base is parent:
            return frozenset(acc)
    return None


def detach(rec: Any) -> Any:
    """Drop a record's delta-tracking link to its parent.

    Long random walks keep only the latest state alive; without this the
    parent chain recorded for delta encoding would retain every state on
    the walk.  Encoding a record detaches it automatically — this is for
    states that are kept without being encoded.
    """
    if isinstance(rec, Rec):
        rec._base = None
        rec._touched = None
    return rec


def substitute(value: Any, mapping: Mapping) -> Any:
    """Recursively replace atoms of ``value`` according to ``mapping``.

    Used by symmetry reduction to permute node identifiers (or workload
    values) throughout a state.  Atoms not present in ``mapping`` are left
    unchanged; container structure is preserved.
    """
    if isinstance(value, Rec):
        return Rec(
            {
                substitute(k, mapping): substitute(v, mapping)
                for k, v in value.items()
            }
        )
    if isinstance(value, tuple):
        return tuple(substitute(v, mapping) for v in value)
    if isinstance(value, frozenset):
        return frozenset(substitute(v, mapping) for v in value)
    try:
        return mapping.get(value, value)
    except TypeError:  # unhashable — cannot be a key
        return value
