"""Immutable state values, the canonical state codec, and fingerprinting.

Specification states are immutable so that the stateful BFS explorer can
hash, deduplicate and safely share them.  The building block is :class:`Rec`,
an immutable mapping with functional update, playing the role of a TLA+
function/record (``EXCEPT`` becomes :meth:`Rec.set` / :meth:`Rec.apply`).

All values stored in a state must be *frozen*: ints, strings, booleans,
``None``, tuples, frozensets, or nested :class:`Rec` instances.
:func:`freeze` converts ordinary dicts/lists/sets into frozen form, and
:func:`thaw` converts back for serialization and debugging.

State identity is defined by the **canonical codec**: :func:`encode` maps
every frozen value to a unique byte string (equal values encode equally,
different values differently — records are serialized in a canonical key
order and frozensets in sorted-encoding order), and :func:`decode` maps it
back (``decode(encode(x)) == x``).  :func:`fingerprint` is a 64-bit
blake2b digest of that encoding: unlike Python's ``hash`` it does not
depend on ``PYTHONHASHSEED``, so fingerprints agree across processes and
runs — the property the sharded parallel explorer
(:mod:`repro.core.parallel`) and any future disk-backed or distributed
state store rely on.  Fingerprints and encodings are cached on
:class:`Rec`, so functional updates that share substructure encode mostly
from cache.
"""

from __future__ import annotations

import struct
from collections.abc import Mapping
from hashlib import blake2b
from typing import Any, Callable, Iterator, List, Tuple

__all__ = [
    "CODEC_VERSION",
    "Rec",
    "freeze",
    "thaw",
    "encode",
    "decode",
    "fingerprint",
    "strong_fingerprint",
    "substitute",
]

#: Version of the canonical codec *and* the fingerprint construction.
#: Any change to the byte layout produced by :func:`encode`, to the key
#: ordering of records, or to the digest behind :func:`fingerprint`
#: must bump this number: durable artifacts (run directories,
#: checkpoints, saved traces — :mod:`repro.persist`) record it and
#: refuse to load data written under a different version, because
#: fingerprints and stored codec bytes from one version are
#: meaningless under another.
CODEC_VERSION = 1

_FROZEN_SCALARS = (int, float, str, bytes, bool, type(None))


class Rec(Mapping):
    """An immutable record: a hashable mapping with functional update.

    Keys are sorted internally so two records with the same contents have
    the same canonical representation and hash regardless of insertion
    order.
    """

    __slots__ = ("_dict", "_hash", "_enc", "_fp")

    def __init__(self, mapping: Any = (), **kwargs: Any):
        if isinstance(mapping, Rec):
            base = dict(mapping._dict)
        else:
            base = dict(mapping)
        base.update(kwargs)
        for key, value in base.items():
            _check_frozen(value, key)
        self._dict = base
        self._hash = None
        self._enc = None
        self._fp = None

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._dict[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __contains__(self, key: Any) -> bool:
        return key in self._dict

    # -- identity ----------------------------------------------------------

    def __hash__(self) -> int:
        # Order-independent and cached; nested Recs cache their own
        # hashes, so functional updates that share substructure hash
        # mostly from cache.  (Per-process only — cross-process identity
        # goes through fingerprint().)
        if self._hash is None:
            self._hash = hash(frozenset(self._dict.items()))
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Rec):
            return self._dict == other._dict
        if isinstance(other, Mapping):
            return self._dict == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items_sorted())
        return f"Rec({{{inner}}})"

    def __reduce__(self):
        # Pickle only the contents; caches are rebuilt lazily on the
        # other side (where they are recomputed identically anyway).
        return (_rec_from_dict, (self._dict,))

    # -- functional update ---------------------------------------------------

    @classmethod
    def _make(cls, contents: dict) -> "Rec":
        """Internal: wrap an already-validated dict without copying."""
        rec = object.__new__(cls)
        rec._dict = contents
        rec._hash = None
        rec._enc = None
        rec._fp = None
        return rec

    def set(self, key: Any, value: Any) -> "Rec":
        """Return a new record with ``key`` bound to ``value``."""
        _check_frozen(value, key)
        new = dict(self._dict)
        new[key] = value
        return Rec._make(new)

    def update(self, mapping: Any = (), **kwargs: Any) -> "Rec":
        """Return a new record with several keys rebound."""
        new = dict(self._dict)
        for source in (dict(mapping), kwargs):
            for key, value in source.items():
                _check_frozen(value, key)
                new[key] = value
        return Rec._make(new)

    def apply(self, key: Any, fn: Callable[[Any], Any]) -> "Rec":
        """Return a new record with ``key`` rebound to ``fn(old_value)``.

        The TLA+ idiom ``[f EXCEPT ![k] = g(@)]``.
        """
        return self.set(key, fn(self._dict[key]))

    def remove(self, key: Any) -> "Rec":
        """Return a new record without ``key``."""
        new = dict(self._dict)
        del new[key]
        return Rec._make(new)

    def items_sorted(self) -> Tuple[Tuple[Any, Any], ...]:
        """Items in a canonical (type-name, repr) key order."""
        return tuple(sorted(self._dict.items(), key=_key_sort))


def _rec_from_dict(contents: dict) -> Rec:
    return Rec._make(contents)


def _key_sort(item: Tuple[Any, Any]) -> Tuple[str, str]:
    key = item[0]
    return (type(key).__name__, repr(key))


def _check_frozen(value: Any, key: Any) -> None:
    if isinstance(value, _FROZEN_SCALARS) or isinstance(value, (tuple, frozenset, Rec)):
        return
    raise TypeError(
        f"state value for key {key!r} is not frozen: {type(value).__name__};"
        " use freeze() or a Rec/tuple/frozenset"
    )


def freeze(value: Any) -> Any:
    """Recursively convert a plain Python value into frozen form.

    dict -> Rec, list -> tuple, set -> frozenset; scalars pass through.
    """
    if isinstance(value, Rec):
        return Rec({k: freeze(v) for k, v in value.items()})
    if isinstance(value, Mapping):
        return Rec({freeze(k): freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze(v) for v in value)
    if isinstance(value, _FROZEN_SCALARS):
        return value
    raise TypeError(f"cannot freeze value of type {type(value).__name__}")


def thaw(value: Any) -> Any:
    """Convert a frozen value back into plain JSON-friendly Python.

    Rec -> dict, tuple -> list, frozenset -> sorted list.
    """
    if isinstance(value, Rec):
        return {_thaw_key(k): thaw(v) for k, v in value.items_sorted()}
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    if isinstance(value, frozenset):
        return sorted((thaw(v) for v in value), key=repr)
    return value


def _thaw_key(key: Any) -> Any:
    if isinstance(key, tuple):
        return "|".join(_thaw_key_part(part) for part in key)
    return key


def _thaw_key_part(part: Any) -> str:
    """Render one tuple-key component collision-free.

    Separator and escape characters inside a component are escaped, and
    nested tuples are parenthesized, so distinct tuple keys always render
    to distinct strings — ``("a", "b|c")`` becomes ``a|b\\|c`` while
    ``("a|b", "c")`` becomes ``a\\|b|c``.  Typical keys (node ids, pairs
    of node ids) render exactly as before.
    """
    if isinstance(part, tuple):
        return "(" + "|".join(_thaw_key_part(p) for p in part) + ")"
    return (
        str(part)
        .replace("\\", "\\\\")
        .replace("|", "\\|")
        .replace("(", "\\(")
        .replace(")", "\\)")
    )


# ---------------------------------------------------------------------------
# the canonical codec
# ---------------------------------------------------------------------------
#
# One byte tag per value, followed by a self-delimiting payload:
#
#   N                      None
#   T / F                  True / False
#   i <uvarint>            int (zigzag-encoded, arbitrary precision)
#   f <8 bytes>            float (IEEE-754 big-endian)
#   s <uvarint> <utf-8>    str
#   b <uvarint> <raw>      bytes
#   t <uvarint> <items>    tuple, in order
#   S <uvarint> <items>    frozenset, items sorted by their encodings
#   R <uvarint> <pairs>    Rec, (key enc + value enc) pairs sorted bytewise
#
# The code is uniquely decodable from the front, hence prefix-free, so
# sorting concatenated encodings gives a canonical container order that
# is identical in every process.  Rec caches its encoding, so encoding a
# functionally-updated state only re-serializes the changed subtree.

_T_NONE = 0x4E  # 'N'
_T_TRUE = 0x54  # 'T'
_T_FALSE = 0x46  # 'F'
_T_INT = 0x69  # 'i'
_T_FLOAT = 0x66  # 'f'
_T_STR = 0x73  # 's'
_T_BYTES = 0x62  # 'b'
_T_TUPLE = 0x74  # 't'
_T_SET = 0x53  # 'S'
_T_REC = 0x52  # 'R'

_pack_float = struct.Struct(">d").pack
_unpack_float = struct.Struct(">d").unpack_from


def _write_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _encode_into(out: bytearray, value: Any) -> None:
    cls = value.__class__
    if cls is Rec:
        enc = value._enc
        out += enc if enc is not None else _encode_rec(value)
    elif cls is str:
        data = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(data))
        out += data
    elif cls is int:
        out.append(_T_INT)
        _write_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)
    elif cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif cls is tuple:
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif cls is frozenset:
        out.append(_T_SET)
        _write_uvarint(out, len(value))
        for part in sorted(encode(item) for item in value):
            out += part
    elif value is None:
        out.append(_T_NONE)
    elif cls is float:
        out.append(_T_FLOAT)
        out += _pack_float(value)
    elif cls is bytes:
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out += value
    elif isinstance(value, Rec):  # Rec subclass
        enc = value._enc
        out += enc if enc is not None else _encode_rec(value)
    elif isinstance(value, _FROZEN_SCALARS) or isinstance(value, (tuple, frozenset)):
        # subclass of a frozen type (e.g. IntEnum): encode as the base type
        _encode_into(out, _as_base(value))
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


def _as_base(value: Any) -> Any:
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    if isinstance(value, bytes):
        return bytes(value)
    if isinstance(value, tuple):
        return tuple(value)
    return frozenset(value)


#: canonical pair layouts, interned per key set — record shapes (state
#: variables, per-node maps, message records) recur across millions of
#: states, so the sort runs once per shape, not once per encode.  Keyed
#: by the keys in dict insertion order; different insertion orders of
#: one key set cost an extra entry but produce the same canonical layout.
_LAYOUT: dict = {}


def _encode_key(key: Any) -> bytes:
    out = bytearray()
    _encode_into(out, key)
    return bytes(out)


def _layout_for(keys: Tuple[Any, ...]) -> List[Tuple[bytes, Any]]:
    # Keys are unique and the code is prefix-free, so sorting by the key
    # encoding alone fixes a canonical pair order.
    layout = sorted((_encode_key(key), key) for key in keys)
    _LAYOUT[keys] = layout
    return layout


def _encode_rec(rec: Rec) -> bytes:
    contents = rec._dict
    keys = tuple(contents)
    layout = _LAYOUT.get(keys)
    if layout is None:
        layout = _layout_for(keys)
    out = bytearray()
    out.append(_T_REC)
    _write_uvarint(out, len(contents))
    for key_enc, key in layout:
        out += key_enc
        value = contents[key]
        if value.__class__ is Rec:  # inlined hot path: cached nested Rec
            enc = value._enc
            out += enc if enc is not None else _encode_rec(value)
        else:
            _encode_into(out, value)
    enc = bytes(out)
    rec._enc = enc
    return enc


def encode(value: Any) -> bytes:
    """Serialize a frozen value to its canonical byte encoding.

    Equal values (regardless of record key insertion order or frozenset
    iteration order) produce identical bytes; different values produce
    different bytes.  The encoding is stable across processes, runs, and
    ``PYTHONHASHSEED`` values.
    """
    if value.__class__ is Rec:
        enc = value._enc
        return enc if enc is not None else _encode_rec(value)
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _read_uvarint(data: bytes, i: int) -> Tuple[int, int]:
    shift = 0
    n = 0
    while True:
        byte = data[i]
        i += 1
        n |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return n, i
        shift += 7


def _decode_at(data: bytes, i: int) -> Tuple[Any, int]:
    tag = data[i]
    start = i
    i += 1
    if tag == _T_STR:
        length, i = _read_uvarint(data, i)
        return data[i : i + length].decode("utf-8"), i + length
    if tag == _T_INT:
        n, i = _read_uvarint(data, i)
        return (n >> 1) if not n & 1 else -((n + 1) >> 1), i
    if tag == _T_REC:
        count, i = _read_uvarint(data, i)
        contents = {}
        for _ in range(count):
            key, i = _decode_at(data, i)
            value, i = _decode_at(data, i)
            contents[key] = value
        rec = Rec._make(contents)
        rec._enc = bytes(data[start:i])
        return rec, i
    if tag == _T_TUPLE:
        count, i = _read_uvarint(data, i)
        items = []
        for _ in range(count):
            item, i = _decode_at(data, i)
            items.append(item)
        return tuple(items), i
    if tag == _T_SET:
        count, i = _read_uvarint(data, i)
        items = []
        for _ in range(count):
            item, i = _decode_at(data, i)
            items.append(item)
        return frozenset(items), i
    if tag == _T_NONE:
        return None, i
    if tag == _T_TRUE:
        return True, i
    if tag == _T_FALSE:
        return False, i
    if tag == _T_FLOAT:
        return _unpack_float(data, i)[0], i + 8
    if tag == _T_BYTES:
        length, i = _read_uvarint(data, i)
        return bytes(data[i : i + length]), i + length
    raise ValueError(f"invalid codec tag {tag:#x} at offset {start}")


def decode(data: bytes) -> Any:
    """Deserialize a canonical encoding back into the frozen value.

    The inverse of :func:`encode`: ``decode(encode(x)) == x`` for every
    frozen value.  Raises :class:`ValueError` on malformed input.
    """
    value, end = _decode_at(data, 0)
    if end != len(data):
        raise ValueError(f"trailing bytes after offset {end}")
    return value


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def fingerprint(state: Any) -> int:
    """Canonical 64-bit fingerprint of a frozen state.

    A blake2b digest of the canonical encoding, so — unlike ``hash`` —
    it is identical across processes, runs, and ``PYTHONHASHSEED``
    values, which is what lets parallel workers and cross-run state
    stores agree on state identity.  Cached on :class:`Rec`.
    """
    if isinstance(state, Rec):
        fp = state._fp
        if fp is None:
            fp = int.from_bytes(
                blake2b(encode(state), digest_size=8).digest(), "big"
            )
            state._fp = fp
        return fp
    return int.from_bytes(blake2b(encode(state), digest_size=8).digest(), "big")


def strong_fingerprint(state: Any) -> bytes:
    """128-bit collision-resistant fingerprint, stable across runs.

    A wider digest of the same canonical encoding as :func:`fingerprint`,
    for callers that want effectively-zero collision probability (e.g.
    cross-run comparisons in tests) at the cost of bytes objects instead
    of machine ints.
    """
    return blake2b(encode(state), digest_size=16).digest()


def substitute(value: Any, mapping: Mapping) -> Any:
    """Recursively replace atoms of ``value`` according to ``mapping``.

    Used by symmetry reduction to permute node identifiers (or workload
    values) throughout a state.  Atoms not present in ``mapping`` are left
    unchanged; container structure is preserved.
    """
    if isinstance(value, Rec):
        return Rec(
            {
                substitute(k, mapping): substitute(v, mapping)
                for k, v in value.items()
            }
        )
    if isinstance(value, tuple):
        return tuple(substitute(v, mapping) for v in value)
    if isinstance(value, frozenset):
        return frozenset(substitute(v, mapping) for v in value)
    try:
        return mapping.get(value, value)
    except TypeError:  # unhashable — cannot be a key
        return value
