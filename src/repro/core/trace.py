"""Traces: sequences of events through the specification state space.

A trace records the initial state and every transition taken.  Traces are
the currency of the whole SandTable workflow: random walks produce them for
conformance checking, BFS produces them as counterexamples, and the
deterministic replayer consumes them to drive the implementation (§3.2,
§3.4, §4.1).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .state import Rec, thaw

__all__ = ["TraceStep", "Trace"]


@dataclasses.dataclass(frozen=True)
class TraceStep:
    """One event in a trace: the transition taken and the state it produced."""

    action: str
    args: Tuple[Any, ...]
    state: Rec
    branch: str = ""

    @property
    def label(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.action}({rendered})"


class Trace:
    """An initial state followed by zero or more steps."""

    def __init__(self, initial: Rec, steps: Sequence[TraceStep] = ()):
        self.initial = initial
        self.steps: List[TraceStep] = list(steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self.steps[index]

    @property
    def depth(self) -> int:
        return len(self.steps)

    @property
    def final_state(self) -> Rec:
        return self.steps[-1].state if self.steps else self.initial

    def states(self) -> Iterator[Rec]:
        yield self.initial
        for step in self.steps:
            yield step.state

    def extend(self, step: TraceStep) -> "Trace":
        return Trace(self.initial, self.steps + [step])

    def labels(self) -> List[str]:
        return [step.label for step in self.steps]

    def action_names(self) -> List[str]:
        return [step.action for step in self.steps]

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "initial": thaw(self.initial),
            "steps": [
                {
                    "action": step.action,
                    "args": [_jsonable(a) for a in step.args],
                    "branch": step.branch,
                    "state": thaw(step.state),
                }
                for step in self.steps
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def summary(self) -> str:
        lines = [f"trace of depth {self.depth}:"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index:3d}. {step.label}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace(depth={self.depth})"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (Rec, tuple, frozenset)):
        return thaw(value)
    return value
