"""Traces: sequences of events through the specification state space.

A trace records the initial state and every transition taken.  Traces are
the currency of the whole SandTable workflow: random walks produce them for
conformance checking, BFS produces them as counterexamples, and the
deterministic replayer consumes them to drive the implementation (§3.2,
§3.4, §4.1).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .state import Rec, decode, encode, freeze, thaw

__all__ = ["TraceStep", "Trace", "PendingTrace", "to_jsonable", "from_jsonable"]


@dataclasses.dataclass(frozen=True)
class TraceStep:
    """One event in a trace: the transition taken and the state it produced."""

    action: str
    args: Tuple[Any, ...]
    state: Rec
    branch: str = ""

    @property
    def label(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.action}({rendered})"


class Trace:
    """An initial state followed by zero or more steps."""

    #: real traces are never pending; see :class:`PendingTrace`
    pending = False

    def __init__(self, initial: Rec, steps: Sequence[TraceStep] = ()):
        self.initial = initial
        self.steps: List[TraceStep] = list(steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self.steps[index]

    @property
    def depth(self) -> int:
        return len(self.steps)

    @property
    def final_state(self) -> Rec:
        return self.steps[-1].state if self.steps else self.initial

    def states(self) -> Iterator[Rec]:
        yield self.initial
        for step in self.steps:
            yield step.state

    def extend(self, step: TraceStep) -> "Trace":
        return Trace(self.initial, self.steps + [step])

    def labels(self) -> List[str]:
        return [step.label for step in self.steps]

    def action_names(self) -> List[str]:
        return [step.action for step in self.steps]

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.initial == other.initial and self.steps == other.steps

    def __hash__(self) -> int:
        return hash((self.initial, tuple(self.steps)))

    # -- serialization -------------------------------------------------------
    #
    # Traces are the durable interchange artifact between the checker and
    # the implementation replayer, so serialization must be *lossless*:
    # ``Trace.from_json(t.to_json())`` reconstructs a trace equal to
    # ``t``.  Each state is carried twice — once as a human-readable
    # ``thaw`` rendering (``initial``/``state``) and once as the hex of
    # its canonical codec bytes (``initial_codec``/``state_codec``),
    # which is what ``from_dict`` rehydrates from.  Step arguments go
    # through the tagged :func:`to_jsonable` encoding, which falls back
    # to codec bytes for frozen values JSON cannot carry faithfully.

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "initial": thaw(self.initial),
            "initial_codec": encode(self.initial).hex(),
            "steps": [
                {
                    "action": step.action,
                    "args": [to_jsonable(a) for a in step.args],
                    "branch": step.branch,
                    "state": thaw(step.state),
                    "state_codec": encode(step.state).hex(),
                }
                for step in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output, losslessly.

        States are decoded from their canonical codec bytes when present;
        artifacts without codec fields (written before lossless
        serialization) fall back to re-freezing the thawed rendering,
        which is best-effort (frozensets come back as tuples and
        non-string record keys as their string renderings).
        """
        if "initial_codec" in data:
            initial = decode(bytes.fromhex(data["initial_codec"]))
        else:
            initial = freeze(data["initial"])
        steps = []
        for raw in data.get("steps", ()):
            if "state_codec" in raw:
                state = decode(bytes.fromhex(raw["state_codec"]))
            else:
                state = freeze(raw["state"])
            steps.append(
                TraceStep(
                    raw["action"],
                    tuple(from_jsonable(a) for a in raw.get("args", ())),
                    state,
                    raw.get("branch", ""),
                )
            )
        return cls(initial, steps)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        lines = [f"trace of depth {self.depth}:"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index:3d}. {step.label}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace(depth={self.depth})"


class PendingTrace(Trace):
    """A trace known only by depth, from a traceless (fingerprint-only) run.

    Fingerprint-only stores keep no parent edges, so when a violation
    fingerprint is hit the engine knows the minimal depth but not the
    event sequence.  A :class:`PendingTrace` carries that depth until
    bounded re-search (a full-store re-exploration capped at this depth)
    replaces it with the exact counterexample.  ``pending`` marks it so
    downstream code never mistakes it for an empty real trace, and
    serialization is refused outright.
    """

    pending = True

    def __init__(self, depth: int):
        super().__init__(Rec())
        self._depth = int(depth)

    @property
    def depth(self) -> int:
        return self._depth

    def extend(self, step: TraceStep) -> "Trace":
        raise RuntimeError("pending trace from a traceless run cannot be extended")

    def to_dict(self) -> dict:
        raise RuntimeError(
            "pending trace from a traceless (--fast) run cannot be serialized;"
            " run bounded re-search to reconstruct the counterexample first"
        )

    def summary(self) -> str:
        return (
            f"trace of depth {self._depth} (pending: fingerprint-only run,"
            " steps not reconstructed)"
        )

    def __repr__(self) -> str:
        return f"PendingTrace(depth={self._depth})"


# ---------------------------------------------------------------------------
# tagged lossless JSON encoding of frozen values
# ---------------------------------------------------------------------------
#
# ``thaw`` is for reading, not round-tripping: it collapses tuples and
# frozensets into lists and stringifies record keys.  The tagged form
# below keeps scalars as bare JSON (so typical arguments — node names,
# terms, indexes — read exactly as before) and wraps containers in a
# single-key ``{"$kind": ...}`` object that ``from_jsonable`` inverts
# exactly.  Frozen values JSON cannot carry faithfully (bytes, NaN and
# infinite floats) are carried as canonical codec bytes, and values that
# are not frozen at all degrade explicitly to a ``$str`` rendering.


def to_jsonable(value: Any) -> Any:
    """Encode a value into a JSON-compatible, losslessly invertible form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value == value and value not in (float("inf"), float("-inf")):
            return value
        return {"$codec": encode(value).hex()}
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if isinstance(value, tuple):
        return {"$tuple": [to_jsonable(v) for v in value]}
    if isinstance(value, frozenset):
        # canonical-encoding order: stable across runs and hash seeds
        return {"$set": [to_jsonable(v) for v in sorted(value, key=encode)]}
    if isinstance(value, Rec):
        return {
            "$rec": [[to_jsonable(k), to_jsonable(v)] for k, v in value.items_sorted()]
        }
    return {"$str": str(value)}


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable` (``$str`` markers decode to their string)."""
    if isinstance(value, dict):
        if "$tuple" in value:
            return tuple(from_jsonable(v) for v in value["$tuple"])
        if "$set" in value:
            return frozenset(from_jsonable(v) for v in value["$set"])
        if "$rec" in value:
            return Rec(
                {from_jsonable(k): from_jsonable(v) for k, v in value["$rec"]}
            )
        if "$bytes" in value:
            return bytes.fromhex(value["$bytes"])
        if "$codec" in value:
            return decode(bytes.fromhex(value["$codec"]))
        if "$str" in value:
            return value["$str"]
        return Rec({k: from_jsonable(v) for k, v in value.items()})
    if isinstance(value, list):
        return tuple(from_jsonable(v) for v in value)
    return value
