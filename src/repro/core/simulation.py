"""Random-walk exploration (TLC simulation mode).

Random walks serve three roles in the SandTable workflow:

* conformance checking (§3.2) replays random-walk traces against the
  implementation;
* constraint ranking (Algorithm 1) scores configuration/constraint pairs
  by the branch coverage, event diversity and depth of random walks;
* the specification-level side of the speedup experiment (Table 4) measures
  the wall-clock cost per random-walk trace.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections import Counter
from typing import List, Optional, Set, Tuple

from .spec import Spec, Transition
from .trace import Trace, TraceStep
from .violation import Violation

__all__ = ["WalkResult", "SimulationResult", "random_walk", "simulate"]


@dataclasses.dataclass
class WalkResult:
    """Metrics from a single random walk."""

    trace: Trace
    branches: Set[Tuple[str, str]]
    event_counts: Counter
    terminated: str = "deadlock"  # deadlock | max_depth | constraint | violation
    violation: Optional[Violation] = None
    elapsed: float = 0.0

    @property
    def depth(self) -> int:
        return self.trace.depth

    @property
    def branch_coverage(self) -> int:
        return len(self.branches)

    @property
    def event_diversity(self) -> int:
        return len(self.event_counts)


@dataclasses.dataclass
class SimulationResult:
    """Aggregate metrics from a batch of random walks."""

    walks: List[WalkResult]
    elapsed: float

    @property
    def n_walks(self) -> int:
        return len(self.walks)

    @property
    def branches(self) -> Set[Tuple[str, str]]:
        covered: Set[Tuple[str, str]] = set()
        for walk in self.walks:
            covered |= walk.branches
        return covered

    @property
    def branch_coverage(self) -> int:
        return len(self.branches)

    @property
    def event_diversity(self) -> int:
        kinds: Set[str] = set()
        for walk in self.walks:
            kinds |= set(walk.event_counts)
        return len(kinds)

    @property
    def mean_depth(self) -> float:
        if not self.walks:
            return 0.0
        return sum(w.depth for w in self.walks) / len(self.walks)

    @property
    def max_depth(self) -> int:
        return max((w.depth for w in self.walks), default=0)

    @property
    def mean_walk_time(self) -> float:
        if not self.walks:
            return 0.0
        return sum(w.elapsed for w in self.walks) / len(self.walks)

    @property
    def first_violation(self) -> Optional[Violation]:
        for walk in self.walks:
            if walk.violation is not None:
                return walk.violation
        return None


def random_walk(
    spec: Spec,
    rng: random.Random,
    max_depth: int = 100,
    check_invariants: bool = True,
) -> WalkResult:
    """One random walk from a random initial state.

    At each step a uniformly random enabled transition is taken.  The walk
    stops on deadlock (no enabled transition), when the state constraint
    fails, at ``max_depth``, or at the first invariant violation.
    """
    started = time.monotonic()
    inits = list(spec.init_states())
    state = inits[rng.randrange(len(inits))]
    trace = Trace(state)
    branches: Set[Tuple[str, str]] = set()
    events: Counter = Counter()
    terminated = "deadlock"
    violation: Optional[Violation] = None

    if check_invariants:
        bad = spec.check_state(state)
        if bad is not None:
            violation = Violation(bad, trace, kind="state")
            terminated = "violation"

    while violation is None and trace.depth < max_depth:
        if not spec.state_constraint(state):
            terminated = "constraint"
            break
        choices: List[Transition] = list(spec.successors(state))
        if not choices:
            terminated = "deadlock"
            break
        transition = choices[rng.randrange(len(choices))]
        step = TraceStep(
            transition.action, transition.args, transition.target, transition.branch
        )
        branches.add((transition.action, transition.branch))
        events[_event_kind(spec, transition.action)] += 1
        if check_invariants:
            bad = spec.check_transition(state, transition)
            if bad is not None:
                trace = trace.extend(step)
                violation = Violation(bad, trace, kind="transition")
                terminated = "violation"
                break
        trace = trace.extend(step)
        state = transition.target
        if check_invariants:
            bad = spec.check_state(state)
            if bad is not None:
                violation = Violation(bad, trace, kind="state")
                terminated = "violation"
                break
    else:
        if violation is None:
            terminated = "max_depth"

    return WalkResult(
        trace=trace,
        branches=branches,
        event_counts=events,
        terminated=terminated,
        violation=violation,
        elapsed=time.monotonic() - started,
    )


def simulate(
    spec: Spec,
    n_walks: int = 100,
    max_depth: int = 100,
    seed: int = 0,
    check_invariants: bool = True,
    time_budget: Optional[float] = None,
    stop_on_violation: bool = False,
) -> SimulationResult:
    """Run a batch of random walks and aggregate their metrics."""
    rng = random.Random(seed)
    started = time.monotonic()
    walks: List[WalkResult] = []
    for _ in range(n_walks):
        walk = random_walk(spec, rng, max_depth=max_depth, check_invariants=check_invariants)
        walks.append(walk)
        if stop_on_violation and walk.violation is not None:
            break
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
    return SimulationResult(walks, time.monotonic() - started)


def _event_kind(spec: Spec, action_name: str) -> str:
    for action in spec.actions():
        if action.name == action_name:
            return action.kind
    return "internal"
