"""Random-walk exploration (TLC simulation mode).

Random walks serve three roles in the SandTable workflow:

* conformance checking (§3.2) replays random-walk traces against the
  implementation;
* constraint ranking (Algorithm 1) scores configuration/constraint pairs
  by the branch coverage, event diversity and depth of random walks;
* the specification-level side of the speedup experiment (Table 4) measures
  the wall-clock cost per random-walk trace.

Each walk is one run of the shared exploration kernel
(:mod:`repro.core.engine`) under a
:class:`~repro.core.engine.RandomWalkFrontier` strategy: a single-slot
frontier taking one uniformly random enabled transition per step, with
no state-store deduplication.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import TIME_BOUNDS
from .compile import maybe_compile
from .engine import (
    ExplorationEngine,
    NullStateStore,
    RandomWalkFrontier,
    SearchStats,
    StepChecker,
    StopReason,
    action_kinds,
)
from .spec import Spec
from .state import Rec
from .trace import Trace
from .violation import Violation

__all__ = ["WalkResult", "SimulationResult", "random_walk", "simulate"]


@dataclasses.dataclass
class WalkResult:
    """Metrics from a single random walk."""

    trace: Trace
    branches: Set[Tuple[str, str]]
    event_counts: Counter
    terminated: str = StopReason.DEADLOCK  # deadlock | max_depth | constraint | violation
    violation: Optional[Violation] = None
    elapsed: float = 0.0
    stats: Optional[SearchStats] = None

    @property
    def stop_reason(self) -> StopReason:
        """The unified termination reason (alias of ``terminated``)."""
        return StopReason(self.terminated)

    @property
    def depth(self) -> int:
        return self.trace.depth

    @property
    def branch_coverage(self) -> int:
        return len(self.branches)

    @property
    def event_diversity(self) -> int:
        return len(self.event_counts)


@dataclasses.dataclass
class SimulationResult:
    """Aggregate metrics from a batch of random walks."""

    walks: List[WalkResult]
    elapsed: float
    stop_reason: StopReason = StopReason.COMPLETE

    @property
    def n_walks(self) -> int:
        return len(self.walks)

    @property
    def branches(self) -> Set[Tuple[str, str]]:
        covered: Set[Tuple[str, str]] = set()
        for walk in self.walks:
            covered |= walk.branches
        return covered

    @property
    def branch_coverage(self) -> int:
        return len(self.branches)

    @property
    def event_diversity(self) -> int:
        kinds: Set[str] = set()
        for walk in self.walks:
            kinds |= set(walk.event_counts)
        return len(kinds)

    @property
    def mean_depth(self) -> float:
        if not self.walks:
            return 0.0
        return sum(w.depth for w in self.walks) / len(self.walks)

    @property
    def max_depth(self) -> int:
        return max((w.depth for w in self.walks), default=0)

    @property
    def mean_walk_time(self) -> float:
        if not self.walks:
            return 0.0
        return sum(w.elapsed for w in self.walks) / len(self.walks)

    @property
    def first_violation(self) -> Optional[Violation]:
        for walk in self.walks:
            if walk.violation is not None:
                return walk.violation
        return None

    @property
    def stop_reasons(self) -> Counter:
        """How many walks ended for each :class:`StopReason`."""
        return Counter(str(walk.terminated) for walk in self.walks)

    @property
    def stats(self) -> SearchStats:
        """Unified batch stats comparable with the other exploration modes."""
        return SearchStats(
            distinct_states=sum(w.depth + 1 for w in self.walks),
            transitions=sum(
                w.stats.transitions if w.stats is not None else w.depth
                for w in self.walks
            ),
            max_depth=self.max_depth,
            elapsed=self.elapsed,
            walks=self.n_walks,
        )


def random_walk(
    spec: Spec,
    rng: random.Random,
    max_depth: int = 100,
    check_invariants: bool = True,
    init_states: Optional[Sequence[Rec]] = None,
    event_kinds: Optional[Dict[str, str]] = None,
    metrics: Optional[Any] = None,
    compiled: bool = True,
) -> WalkResult:
    """One random walk from a random initial state.

    At each step a uniformly random enabled transition is taken.  The walk
    stops on deadlock (no enabled transition), when the state constraint
    fails, at ``max_depth``, or at the first invariant violation.

    Batch callers can hoist the per-walk setup by passing ``init_states``
    (the materialized ``spec.init_states()`` list) and ``event_kinds``
    (the :func:`~repro.core.engine.action_kinds` map); both are computed
    on the fly when omitted.  With ``metrics`` the engine's per-action
    fire counts accumulate across walks and each walk's wall-clock time
    lands in the ``simulate.walk_seconds`` histogram.
    """
    spec = maybe_compile(spec, compiled)  # no-op for already-compiled specs
    strategy = RandomWalkFrontier(rng, init_states=init_states, event_kinds=event_kinds)
    engine = ExplorationEngine(
        spec,
        strategy,
        store=NullStateStore(),
        checker=StepChecker(spec, check_invariants=check_invariants),
        max_depth=max_depth,
        stop_on_violation=True,
        metrics=metrics,
    )
    result = engine.run()
    if metrics is not None:
        metrics.counter("simulate.walks").inc()
        metrics.histogram("simulate.walk_seconds", TIME_BOUNDS).observe(
            result.stats.elapsed
        )
    violation = result.violation
    trace = violation.trace if violation is not None else strategy.trace
    return WalkResult(
        trace=trace,
        branches=strategy.branches,
        event_counts=strategy.event_counts,
        terminated=result.stop_reason,
        violation=violation,
        elapsed=result.stats.elapsed,
        stats=result.stats,
    )


def simulate(
    spec: Spec,
    n_walks: int = 100,
    max_depth: int = 100,
    seed: int = 0,
    check_invariants: bool = True,
    time_budget: Optional[float] = None,
    stop_on_violation: bool = False,
    metrics: Optional[Any] = None,
    compiled: bool = True,
) -> SimulationResult:
    """Run a batch of random walks and aggregate their metrics."""
    rng = random.Random(seed)
    started = time.monotonic()
    # Per-batch hoists: the compiled spec, the init-state list and the
    # action-name -> kind map are walk-invariant, so compute them once,
    # not once per walk.
    spec = maybe_compile(spec, compiled)
    inits = list(spec.init_states())
    kinds = action_kinds(spec)
    walks: List[WalkResult] = []
    stop_reason = StopReason.COMPLETE
    for _ in range(n_walks):
        walk = random_walk(
            spec,
            rng,
            max_depth=max_depth,
            check_invariants=check_invariants,
            init_states=inits,
            event_kinds=kinds,
            metrics=metrics,
        )
        walks.append(walk)
        if stop_on_violation and walk.violation is not None:
            stop_reason = StopReason.VIOLATION
            break
        if time_budget is not None and time.monotonic() - started > time_budget:
            stop_reason = StopReason.TIME_BUDGET
            break
    return SimulationResult(walks, time.monotonic() - started, stop_reason)


def _event_kind(spec: Spec, action_name: str) -> str:
    """Event kind of one action (kept for compatibility; batch callers
    should precompute :func:`~repro.core.engine.action_kinds` instead)."""
    return action_kinds(spec).get(action_name, "internal")
