"""The trace-validation verdict and its durable rendering.

A validation run produces one :class:`ValidationReport`: either the log
**conforms** (some spec behavior explains every event) or it **diverges**
at a 0-based event index — the first event no candidate spec state could
match.  For divergences the report carries the evidence a user needs to
debug the gap:

* the **last consistent frontier** — a sample of the candidate spec
  states that explained the log prefix up to the failing event;
* the **nearest-miss transitions** — enabled transitions from those
  candidates that almost matched, classified by what disagreed (action
  name, argument prefix, or an observed variable with the expected and
  actual values);
* whether the frontier **hit its breadth cap** (in which case a
  "diverges" verdict is only as good as the cap — rerun with a larger
  ``--max-frontier`` to be sure).

Reports serialize to JSON (``to_dict``/``from_dict``) and persist into a
run directory as ``artifacts/validation.json`` next to the manifest, so
a divergence survives the process that found it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..core.state import thaw
from ..core.trace import from_jsonable, to_jsonable

__all__ = ["NearMiss", "ValidationReport", "write_report_artifact"]


@dataclasses.dataclass
class NearMiss:
    """One enabled-but-rejected transition at the divergence point."""

    action: str
    args: tuple
    reason: str  # "action" | "args" | "obs" | "missing-var"
    variable: Optional[str] = None
    expected: Any = None
    actual: Any = None

    def describe(self) -> str:
        label = f"{self.action}{list(self.args)!r}"
        if self.reason == "obs":
            return (
                f"{label}: observed {self.variable}="
                f"{_render(self.expected)} but the spec would have"
                f" {_render(self.actual)}"
            )
        if self.reason == "missing-var":
            return f"{label}: spec state has no variable {self.variable!r}"
        if self.reason == "args":
            return f"{label}: argument prefix disagrees with the event"
        return f"{label}: action name disagrees with the event"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "args": [to_jsonable(a) for a in self.args],
            "reason": self.reason,
            "variable": self.variable,
            "expected": to_jsonable(self.expected),
            "actual": to_jsonable(self.actual),
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "NearMiss":
        return cls(
            action=obj["action"],
            args=tuple(from_jsonable(a) for a in obj.get("args", ())),
            reason=obj["reason"],
            variable=obj.get("variable"),
            expected=from_jsonable(obj.get("expected")),
            actual=from_jsonable(obj.get("actual")),
        )


def _render(value: Any) -> str:
    try:
        return repr(thaw(value))
    except TypeError:
        return repr(value)


@dataclasses.dataclass
class ValidationReport:
    """The outcome of validating one event log against one spec."""

    conforms: bool
    events_total: int
    events_matched: int
    divergence_index: Optional[int] = None
    divergence_event: Optional[str] = None
    last_frontier: List[Any] = dataclasses.field(default_factory=list)
    near_misses: List[NearMiss] = dataclasses.field(default_factory=list)
    frontier_limited: bool = False
    stutter_depth: int = 0
    max_frontier: int = 0
    spec_name: str = ""
    stats: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def verdict(self) -> str:
        if self.conforms:
            return "conforms"
        return "diverged (frontier-limited)" if self.frontier_limited else "diverged"

    def describe(self) -> str:
        lines = [
            f"validate-trace: {self.verdict} —"
            f" {self.events_matched}/{self.events_total} events matched"
            + (f" against spec {self.spec_name}" if self.spec_name else "")
        ]
        if not self.conforms:
            lines.append(
                f"  first unexplained event: #{self.divergence_index}"
                + (f" ({self.divergence_event})" if self.divergence_event else "")
            )
            if self.frontier_limited:
                lines.append(
                    f"  frontier hit its cap ({self.max_frontier});"
                    " a consistent behavior may have been pruned —"
                    " retry with a larger --max-frontier"
                )
            if self.last_frontier:
                lines.append(
                    f"  last consistent frontier:"
                    f" {len(self.last_frontier)} candidate state(s) shown"
                )
            for miss in self.near_misses[:8]:
                lines.append(f"  near miss: {miss.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "conforms": self.conforms,
            "verdict": self.verdict,
            "events_total": self.events_total,
            "events_matched": self.events_matched,
            "divergence_index": self.divergence_index,
            "divergence_event": self.divergence_event,
            "last_frontier": [to_jsonable(state) for state in self.last_frontier],
            "near_misses": [miss.to_dict() for miss in self.near_misses],
            "frontier_limited": self.frontier_limited,
            "stutter_depth": self.stutter_depth,
            "max_frontier": self.max_frontier,
            "spec_name": self.spec_name,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "ValidationReport":
        return cls(
            conforms=obj["conforms"],
            events_total=obj["events_total"],
            events_matched=obj["events_matched"],
            divergence_index=obj.get("divergence_index"),
            divergence_event=obj.get("divergence_event"),
            last_frontier=[
                from_jsonable(state) for state in obj.get("last_frontier", ())
            ],
            near_misses=[
                NearMiss.from_dict(miss) for miss in obj.get("near_misses", ())
            ],
            frontier_limited=obj.get("frontier_limited", False),
            stutter_depth=obj.get("stutter_depth", 0),
            max_frontier=obj.get("max_frontier", 0),
            spec_name=obj.get("spec_name", ""),
            stats=dict(obj.get("stats", {})),
        )


def write_report_artifact(run: Any, report: ValidationReport) -> Any:
    """Persist a report into a run directory; returns the artifact path.

    The run's manifest ``status`` is set to the verdict, so ``conforms``
    / ``diverged`` is readable without parsing the artifact.
    """
    from ..persist.rundir import atomic_write_json

    path = run.artifact_path("validation.json")
    atomic_write_json(path, report.to_dict())
    run.update_manifest(status=report.verdict)
    return path
