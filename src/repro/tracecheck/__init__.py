"""Trace validation: check real execution logs against the spec.

The inverse of conformance checking (ROADMAP item 4, after "Validating
Traces of Distributed Programs Against TLA+ Specifications",
arXiv 2404.16075): instead of replaying spec traces on the
implementation, ingest *implementation* event logs — with unobserved
variables and coarse event granularity — and search for a spec behavior
consistent with them.

* :mod:`.logfmt` — the versioned JSONL event-log schema, parsing with
  schema/ordering validation, and the runtime emitters that make every
  :class:`~repro.runtime.engine.ExecutionEngine` run dump a validatable
  log.
* :mod:`.matcher` — the frontier-of-candidate-states matcher, run as a
  frontier strategy on the shared exploration engine.
* :mod:`.report` — the conforms/diverges verdict with near-miss
  evidence, persistable into a run directory.
"""

from .logfmt import (
    FORMAT_VERSION,
    LogEvent,
    LogHeader,
    RuntimeLogEmitter,
    TraceLog,
    TraceLogError,
    observe,
    parse_lines,
    project,
    read_log,
    render_lines,
    system_emitter,
    write_log,
)
from .matcher import DEFAULT_MAX_FRONTIER, TraceMatchFrontier, validate_log
from .report import NearMiss, ValidationReport, write_report_artifact

__all__ = [
    "DEFAULT_MAX_FRONTIER",
    "FORMAT_VERSION",
    "LogEvent",
    "LogHeader",
    "NearMiss",
    "RuntimeLogEmitter",
    "TraceLog",
    "TraceLogError",
    "TraceMatchFrontier",
    "ValidationReport",
    "observe",
    "parse_lines",
    "project",
    "read_log",
    "render_lines",
    "system_emitter",
    "validate_log",
    "write_log",
    "write_report_artifact",
]
