"""The versioned JSONL event-log schema and its runtime emitters.

Trace validation (after "Validating Traces of Distributed Programs
Against TLA+ Specifications", arXiv 2404.16075) consumes *implementation*
event logs, so the log format is the contract between the two levels:

* line 1 is a **header** — schema version, spec/system name, node ids,
  the observed-variable subset, free-form metadata;
* every following line is one **event** — a global index ``i``, the node
  it is attributed to (empty for cluster-scoped events like partitions),
  a per-node monotonic sequence number ``seq``, the event ``kind``
  (message/timeout/client/failure/internal), an optional spec action
  ``name``, an argument *prefix* constraining the matching transition,
  and ``obs`` — the observed projection of that node's state *after* the
  event.

Events deliberately under-specify the spec transition: the matcher
(:mod:`repro.tracecheck.matcher`) resolves the remaining nondeterminism.
Unobserved variables are simply absent from ``obs``.

Lines are canonical JSON (sorted keys, no whitespace) over the lossless
tagged value encoding of :func:`repro.core.trace.to_jsonable`, so
``emit -> parse -> emit`` is byte-stable and independent of
``PYTHONHASHSEED``.

:class:`RuntimeLogEmitter` hooks into
:class:`repro.runtime.engine.ExecutionEngine`: after every successful
command it appends the corresponding event, attributing it to the
affected node, stamping the node's monotonic sequence number from its
:class:`~repro.runtime.interceptor.Interceptor` (sequence numbers
survive crash/restart), and snapshotting the node's observed variables
via :meth:`repro.systems.base.SystemNode.observed_state`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.state import Rec, freeze
from ..core.trace import from_jsonable, to_jsonable

__all__ = [
    "FORMAT_VERSION",
    "LogEvent",
    "LogHeader",
    "RuntimeLogEmitter",
    "TraceLog",
    "TraceLogError",
    "observe",
    "parse_lines",
    "project",
    "read_log",
    "render_lines",
    "system_emitter",
    "write_log",
]

#: Current schema version; :func:`parse_lines` rejects anything else.
FORMAT_VERSION = 1


class TraceLogError(Exception):
    """A log violates the schema (version, ordering, or field shape)."""


@dataclasses.dataclass
class LogEvent:
    """One implementation event, as much of it as was observed.

    ``args`` is a *prefix* of the matching spec transition's arguments
    (empty means "any arguments"); ``name`` is the spec action name, or
    ``None`` when only the coarse ``kind`` is known.  ``obs`` maps
    observed spec variable names to frozen values — for per-node record
    variables the value is the ``node``'s entry, for global variables
    the whole value.  ``seq`` is the per-node monotonic sequence number;
    ``None`` means "assign at serialization time".
    """

    node: str
    kind: str
    name: Optional[str] = None
    args: Tuple[Any, ...] = ()
    obs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seq: Optional[int] = None

    @property
    def label(self) -> str:
        what = self.name or self.kind
        where = f"@{self.node}" if self.node else ""
        return f"{what}{where}{list(self.args)!r}" if self.args else f"{what}{where}"


@dataclasses.dataclass
class LogHeader:
    """The log's first line: schema + run identity."""

    spec: str
    nodes: Tuple[str, ...] = ()
    observed: Tuple[str, ...] = ()
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    version: int = FORMAT_VERSION


@dataclasses.dataclass
class TraceLog:
    """A parsed (or about-to-be-written) event log."""

    header: LogHeader
    events: List[LogEvent]

    def lines(self) -> List[str]:
        return render_lines(self.header, self.events)


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def render_lines(header: LogHeader, events: Sequence[LogEvent]) -> List[str]:
    """Serialize to canonical JSONL lines (no trailing newlines).

    Global indices are assigned here; per-node sequence numbers are
    taken from the events when present (and checked monotonic) or
    assigned from per-node counters when absent.
    """
    lines = [
        _canonical(
            {
                "k": "header",
                "v": header.version,
                "spec": header.spec,
                "nodes": list(header.nodes),
                "observed": list(header.observed),
                "meta": header.meta,
            }
        )
    ]
    counters: Dict[str, int] = {}
    for index, event in enumerate(events):
        last = counters.get(event.node, 0)
        seq = event.seq if event.seq is not None else last + 1
        if seq <= last:
            raise TraceLogError(
                f"event #{index}: sequence {seq} for node {event.node!r}"
                f" is not greater than the previous {last}"
            )
        counters[event.node] = seq
        lines.append(
            _canonical(
                {
                    "k": "event",
                    "i": index,
                    "node": event.node,
                    "seq": seq,
                    "kind": event.kind,
                    "name": event.name,
                    "args": [to_jsonable(a) for a in event.args],
                    "obs": {
                        var: to_jsonable(value)
                        for var, value in event.obs.items()
                    },
                }
            )
        )
    return lines


def parse_lines(lines: Iterable[str]) -> TraceLog:
    """Parse and validate JSONL lines into a :class:`TraceLog`."""
    header: Optional[LogHeader] = None
    events: List[LogEvent] = []
    counters: Dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            raise TraceLogError(f"line {lineno}: not JSON: {exc}") from exc
        if not isinstance(obj, dict) or "k" not in obj:
            raise TraceLogError(f"line {lineno}: missing record kind 'k'")
        if obj["k"] == "header":
            if header is not None:
                raise TraceLogError(f"line {lineno}: duplicate header")
            if events:
                raise TraceLogError(f"line {lineno}: header after events")
            version = obj.get("v")
            if version != FORMAT_VERSION:
                raise TraceLogError(
                    f"unsupported log format version {version!r}"
                    f" (this reader speaks version {FORMAT_VERSION})"
                )
            header = LogHeader(
                spec=str(obj.get("spec", "")),
                nodes=tuple(obj.get("nodes", ())),
                observed=tuple(obj.get("observed", ())),
                meta=dict(obj.get("meta", {})),
                version=version,
            )
            continue
        if obj["k"] != "event":
            raise TraceLogError(
                f"line {lineno}: unknown record kind {obj['k']!r}"
            )
        if header is None:
            raise TraceLogError(f"line {lineno}: event before header")
        index = obj.get("i")
        if index != len(events):
            raise TraceLogError(
                f"line {lineno}: event index {index!r}, expected {len(events)}"
            )
        node = str(obj.get("node", ""))
        seq = obj.get("seq")
        if not isinstance(seq, int) or seq <= counters.get(node, 0):
            raise TraceLogError(
                f"line {lineno}: sequence {seq!r} for node {node!r} is not"
                f" monotonically increasing (last {counters.get(node, 0)})"
            )
        counters[node] = seq
        name = obj.get("name")
        events.append(
            LogEvent(
                node=node,
                kind=str(obj.get("kind", "internal")),
                name=None if name is None else str(name),
                args=tuple(from_jsonable(a) for a in obj.get("args", ())),
                obs={
                    str(var): from_jsonable(value)
                    for var, value in obj.get("obs", {}).items()
                },
                seq=seq,
            )
        )
    if header is None:
        raise TraceLogError("log has no header line")
    return TraceLog(header, events)


def write_log(path: Any, header: LogHeader, events: Sequence[LogEvent]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in render_lines(header, events):
            fh.write(line + "\n")


def read_log(path: Any) -> TraceLog:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_lines(fh)


# ---------------------------------------------------------------------------
# observation helpers
# ---------------------------------------------------------------------------


def project(state: Rec, var: str, node: str) -> Any:
    """The observed value of ``var`` for ``node`` in a spec state.

    Per-node record variables (``state[var]`` is a record containing
    ``node``) project to the node's entry; everything else is the whole
    value.  Raises :class:`KeyError` when the spec has no such variable.
    """
    value = state[var]
    if node and isinstance(value, Rec) and node in value:
        return value[node]
    return value


def observe(state: Rec, node: str, observed: Iterable[str]) -> Dict[str, Any]:
    """The ``obs`` dict for an event at ``node`` given a full spec state."""
    out: Dict[str, Any] = {}
    for var in observed:
        if var in state:
            out[var] = project(state, var, node)
    return out


# ---------------------------------------------------------------------------
# runtime emission
# ---------------------------------------------------------------------------

#: timer name -> spec action for timeout commands
_TIMER_ACTIONS = {"election": "ElectionTimeout", "heartbeat": "HeartbeatTimeout"}


def event_for_command(command: Any) -> Optional[Tuple[str, Optional[str], Tuple[Any, ...], str]]:
    """Map an engine :class:`~repro.runtime.commands.Command` to event shape.

    Returns ``(kind, name, args, node)`` — the inverse of
    :class:`repro.conformance.converter.TraceConverter` — or ``None``
    for commands with no spec-visible effect (``get_state``,
    ``advance_clock``).  Argument tuples are deliberately *prefixes*:
    e.g. a client command emits ``(node,)`` and leaves the request value
    to the matcher, because the implementation-side op does not name the
    spec's workload value directly.
    """
    kind = command.kind
    if kind == "deliver":
        return ("message", "ReceiveMessage", (command.src, command.dst), command.dst)
    if kind == "timeout":
        return (
            "timeout",
            _TIMER_ACTIONS.get(command.timer),
            (command.node,),
            command.node,
        )
    if kind == "client":
        op = command.op
        name = (
            "ClientRead"
            if isinstance(op, dict) and op.get("op") == "get"
            else "ClientRequest"
        )
        return ("client", name, (command.node,), command.node)
    if kind == "crash":
        return ("failure", "NodeCrash", (command.node,), command.node)
    if kind == "restart":
        return ("failure", "NodeRestart", (command.node,), command.node)
    if kind == "partition":
        # Which side of the bipartition the spec names is its choice.
        return ("failure", "PartitionStart", (), "")
    if kind == "heal":
        return ("failure", "PartitionHeal", (), "")
    if kind == "drop":
        return ("failure", "DropMessage", (command.src, command.dst), "")
    if kind == "duplicate":
        return ("failure", "DuplicateMessage", (command.src, command.dst), "")
    if kind == "compact":
        return ("internal", "CompactLog", (command.node,), command.node)
    return None


class RuntimeLogEmitter:
    """Collects a validatable event log from a live execution engine.

    Pass one to :class:`repro.runtime.engine.ExecutionEngine` as
    ``emitter=``; it records every successfully executed spec-visible
    command.  ``observed`` names the spec variables to snapshot after
    each node-attributed event (``None`` observes whatever
    ``extract_state`` exposes).
    """

    def __init__(
        self,
        spec: str,
        nodes: Sequence[str],
        observed: Optional[Sequence[str]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.observed = None if observed is None else tuple(observed)
        self.header = LogHeader(
            spec=spec,
            nodes=tuple(nodes),
            observed=self.observed or (),
            meta=dict(meta or {}),
        )
        self.events: List[LogEvent] = []

    def on_command(self, engine: Any, command: Any, result: Any) -> None:
        mapped = event_for_command(command)
        if mapped is None:
            return
        kind, name, args, node = mapped
        obs: Dict[str, Any] = {}
        seq: Optional[int] = None
        if node:
            host = engine.hosts.get(node)
            if host is not None:
                seq = host.interceptor.next_event_seq()
                raw = host.observed_state(self.observed)
                if raw:
                    obs = {var: freeze(value) for var, value in raw.items()}
        self.events.append(
            LogEvent(node=node, kind=kind, name=name, args=args, obs=obs, seq=seq)
        )

    def log(self) -> TraceLog:
        return TraceLog(self.header, list(self.events))

    def lines(self) -> List[str]:
        return render_lines(self.header, self.events)

    def write(self, path: Any) -> None:
        write_log(path, self.header, self.events)


def system_emitter(
    system: str,
    nodes: Sequence[str],
    observed: Optional[Sequence[str]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> RuntimeLogEmitter:
    """An emitter preconfigured with the system's conformance variables.

    The observed subset defaults to the per-node spec variables the
    conformance mapping compares (:data:`repro.conformance.mapping.SYSTEM_VARS`)
    — exactly the projection conformance checking already trusts.
    """
    if observed is None:
        from ..conformance.mapping import SYSTEM_VARS

        observed = SYSTEM_VARS.get(system)
    return RuntimeLogEmitter(system, nodes, observed=observed, meta=meta)
